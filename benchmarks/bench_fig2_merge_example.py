"""Figure 2: the discretize-then-merge walkthrough (paper Section 4.4).

A single continuous attribute with a 2%/98% group mixture; SDAD-CS splits
top-down at medians, then merges contiguous similar regions bottom-up.
The bench reports the all-splits partition (merge disabled) next to the
final merged result — the two panels of Figure 2.
"""

from __future__ import annotations

from repro.analysis import pattern_table
from repro.core.config import MinerConfig
from repro.core.items import Itemset
from repro.core.sdad import sdad_cs
from repro.dataset.synthetic import figure2_example


def _run(merge: bool):
    dataset = figure2_example(n=2000)
    config = MinerConfig(interest_measure="purity_ratio", merge=merge)
    return dataset, sdad_cs(dataset, Itemset(), ["X"], config)


def test_fig2_splits_then_merge(benchmark, report):
    dataset, merged = benchmark.pedantic(
        lambda: _run(merge=True), rounds=3, iterations=1
    )
    __, unmerged = _run(merge=False)

    lines = [
        "Figure 2 reproduction: discretize (left panel) vs merge (right)",
        "",
        pattern_table(
            sorted(
                unmerged.patterns,
                key=lambda p: p.itemset.item_for("X").interval.lo,
            ),
            title="All splits before merging (Fig 2 left)",
        ),
        "",
        pattern_table(
            sorted(
                merged.patterns,
                key=lambda p: p.itemset.item_for("X").interval.lo,
            ),
            title="Final result after merging (Fig 2 right)",
        ),
    ]
    report("fig2_merge_example", "\n".join(lines))

    # merging must not increase the number of regions
    assert len(merged.patterns) <= len(unmerged.patterns)
    assert merged.patterns, "merge run must still find contrasts"
    # the minority group's band must be isolated with high purity
    best = max(merged.patterns, key=lambda p: p.support("A"))
    assert best.support("A") > 0.8


def test_fig2_walkthrough_purities(benchmark, report):
    """The PR arithmetic of Section 4.4: the left half of the split is
    pure (no 'A' instances below the median)."""
    import numpy as np

    def run():
        dataset = figure2_example(n=2000)
        x = dataset.column("X")
        median = float(np.median(x))
        return dataset, median, dataset.supports(x <= median)

    dataset, median, left = benchmark.pedantic(run, rounds=3, iterations=1)
    a = dataset.group_index("A")
    assert left[a] == 0.0
    report(
        "fig2_left_half_purity",
        f"median={median:.3f}; left-half supports "
        f"B={left[dataset.group_index('B')]:.3f}, A={left[a]:.3f} "
        "(pure space, PR=1, matching Section 4.4)",
    )
