"""Sustained-load SLO harness for the serving layer (owns BENCH_serve.json).

Where ``bench_serve_throughput.py`` asks "how fast can a closed loop of
clients drain the server?", this harness asks the production question:
*does the server hold its latency SLO under a fixed offered load, while
new runs are being published underneath it?*  Methodology:

* **Open-loop arrivals.**  Requests are scheduled on a fixed cadence
  derived from the target rate, and every latency is measured from the
  request's *scheduled* send time — not from when the client got around
  to sending it.  A closed loop hides overload (a slow server slows its
  own clients, flattering the percentiles; "coordinated omission"); an
  open loop charges queueing delay to the server where it belongs.
* **Concurrent writers.**  A writer thread keeps appending runs to the
  store mid-phase, so every SLO figure includes the cost of hot swaps
  (multi-worker mode: store-epoch polling; single mode: explicit
  ``publish_run``).
* **Batched match traffic.**  Clients POST ``{"rows": [...]}`` batches —
  the vectorized hot path — so the harness reports both request and
  row throughput.

Reported per phase: achieved rows/s vs target, p50/p99 (scheduled-send
based), jitter (p99 − p50), error rate, hot swaps absorbed.  The
``throughput`` section additionally reports closed-loop batch ceilings
and the speedup over the committed v1 single-row baseline.

Run standalone:  PYTHONPATH=src python benchmarks/bench_serve_slo.py
Standalone runs refresh the committed ``BENCH_serve.json`` (schema v2,
validated by ``bench_artifacts.validate_serve_artifact``).  The pytest
smoke lives in ``tests/test_serve_slo_smoke.py`` (``--runslow``).
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro import ContrastSetMiner, MinerConfig
from repro.serve import (
    PatternServer,
    PatternStore,
    ServeConfig,
    reuseport_available,
)
from repro.serve.index import row_from_dataset

V1_BASELINE_MATCH_RPS = 1054
"""Single-row closed-loop req/s committed before the vectorized plan."""


@dataclass
class SLOBenchConfig:
    """Everything the harness needs; the smoke test shrinks these."""

    workers: int = 2
    n_client_threads: int = 4
    batch_rows: int = 64
    target_rows_per_s: tuple = (5_000, 15_000)
    phase_duration_s: float = 4.0
    hot_swap_interval_s: float = 0.5
    closed_loop_requests: int = 300
    closed_loop_batches: tuple = (1, 64, 512)
    store_poll_interval: float = 0.05
    dataset: object = None
    """Pre-built dataset (defaults to UCI Adult when None)."""
    mine_config: MinerConfig = field(
        default_factory=lambda: MinerConfig(max_tree_depth=2)
    )


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _sample_rows(dataset, n: int = 256) -> list[dict]:
    step = max(1, dataset.n_rows // n)
    return [
        row_from_dataset(dataset, i) for i in range(0, dataset.n_rows, step)
    ]


class _SwapWriter(threading.Thread):
    """Publishes a fresh run into the store every ``interval`` seconds."""

    def __init__(self, store, result, interval: float, server=None) -> None:
        super().__init__(name="slo-swap-writer", daemon=True)
        self._store = store
        self._result = result
        self._interval = interval
        self._server = server  # set in single mode: explicit publish
        self._halt = threading.Event()  # "_stop" is Thread-internal
        self.swaps = 0

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            run_id = self._store.put(self._result, tags=("slo-swap",))
            if self._server is not None:
                self._server.publish_run(run_id)
            self.swaps += 1

    def stop(self) -> None:
        self._halt.set()
        self.join()


def _closed_loop(host, port, payloads, n_requests, n_threads):
    """Hammer keep-alive connections; return (latencies, elapsed, rows)."""
    latencies: list[list[float]] = [[] for _ in range(n_threads)]
    rows_done = [0] * n_threads
    errors: list = []
    per_thread = max(1, n_requests // n_threads)

    def client(slot: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for i in range(per_thread):
                body, n_rows = payloads[(slot + i) % len(payloads)]
                started = perf_counter()
                conn.request("POST", "/match", body=body)
                response = conn.getresponse()
                response.read()
                latencies[slot].append(perf_counter() - started)
                if response.status >= 500:
                    errors.append(response.status)
                    return
                rows_done[slot] += n_rows
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(s,)) for s in range(n_threads)
    ]
    started = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = perf_counter() - started
    assert not errors, f"server returned 5xx: {errors}"
    return [x for per in latencies for x in per], elapsed, sum(rows_done)


def _open_loop_phase(
    host,
    port,
    payloads,
    target_rows_per_s: float,
    batch_rows: int,
    duration_s: float,
    n_threads: int,
):
    """One sustained-load phase; returns the per-phase stats dict (sans
    ``hot_swaps``, which the caller owns).

    The global arrival schedule (one batch every
    ``batch_rows / target_rows_per_s`` seconds) is split round-robin
    across the client threads; each thread sleeps until a batch's
    scheduled time and never skips a late slot, so backlog shows up as
    latency rather than as silently shed load.
    """
    interval = batch_rows / target_rows_per_s
    n_total = max(n_threads, int(duration_s / interval))
    latencies: list[list[float]] = [[] for _ in range(n_threads)]
    error_counts = [0] * n_threads

    barrier = threading.Barrier(n_threads + 1)

    def client(slot: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            barrier.wait()
            epoch = perf_counter()
            for k in range(slot, n_total, n_threads):
                scheduled = epoch + k * interval
                delay = scheduled - perf_counter()
                if delay > 0:
                    time.sleep(delay)
                body, _ = payloads[k % len(payloads)]
                try:
                    conn.request("POST", "/match", body=body)
                    response = conn.getresponse()
                    response.read()
                    status = response.status
                except (http.client.HTTPException, OSError):
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=30)
                    status = 599
                # Latency from the *scheduled* send time: queueing delay
                # (ours or the server's) is charged to this request.
                latencies[slot].append(perf_counter() - scheduled)
                if status >= 500:
                    error_counts[slot] += 1
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(s,)) for s in range(n_threads)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = perf_counter()
    for t in threads:
        t.join()
    elapsed = perf_counter() - started

    flat = [x for per in latencies for x in per]
    n_requests = len(flat)
    p50 = _percentile(flat, 0.50) * 1e3
    p99 = _percentile(flat, 0.99) * 1e3
    return {
        "target_rps": round(target_rows_per_s),
        "achieved_rps": round(n_requests * batch_rows / elapsed),
        "batch_rows": batch_rows,
        "requests": n_requests,
        "p50_ms": round(p50, 3),
        "p99_ms": round(p99, 3),
        "jitter_ms": round(p99 - p50, 3),
        "error_rate": round(sum(error_counts) / max(1, n_requests), 6),
    }


def run_slo_bench(config: SLOBenchConfig | None = None):
    """Run the full harness; returns (report text, schema-v2 results)."""
    config = config or SLOBenchConfig()
    dataset = config.dataset
    if dataset is None:
        from repro.dataset import uci

        dataset = uci.adult()
    result = ContrastSetMiner(config.mine_config).mine(dataset)

    workers = config.workers if reuseport_available() else 1
    rows = _sample_rows(dataset)
    single_payloads = [
        (json.dumps({"row": row}), 1) for row in rows[:64]
    ]

    def batch_payloads(batch_rows: int) -> list:
        out = []
        for start in range(0, max(1, len(rows) - batch_rows), 17):
            chunk = (rows * ((batch_rows // len(rows)) + 2))[
                start : start + batch_rows
            ]
            out.append((json.dumps({"rows": chunk}), len(chunk)))
            if len(out) == 8:
                break
        return out

    with tempfile.TemporaryDirectory() as tmp:
        store = PatternStore(Path(tmp) / "store")
        run_id = store.put(result, tags=("slo",))
        server = PatternServer(
            store,
            ServeConfig(
                port=0,
                cache_size=0,  # measure matching, not the LRU
                workers=workers,
                store_poll_interval=config.store_poll_interval,
                max_batch_rows=max(4096, max(config.closed_loop_batches)),
            ),
        )
        if workers <= 1:
            server.publish_run(run_id)
        host, port = server.start()
        try:
            # ---- closed-loop throughput ceilings ----
            throughput: dict[str, object] = {
                "n_rows": dataset.n_rows,
                "n_patterns": len(result.patterns),
                "workers": workers,
                "mode": server.mode,
                "client_threads": config.n_client_threads,
                "baseline_v1_match_rps": V1_BASELINE_MATCH_RPS,
            }
            tp_lines = []
            for batch in config.closed_loop_batches:
                payloads = (
                    single_payloads if batch == 1 else batch_payloads(batch)
                )
                _closed_loop(  # warm-up
                    host, port, payloads, len(payloads),
                    config.n_client_threads,
                )
                lat, elapsed, n_rows_done = _closed_loop(
                    host,
                    port,
                    payloads,
                    config.closed_loop_requests,
                    config.n_client_threads,
                )
                rows_per_s = n_rows_done / elapsed
                key = "match_single" if batch == 1 else f"match_batch{batch}"
                throughput[f"{key}_rows_per_s"] = round(rows_per_s)
                throughput[f"{key}_p99_ms"] = round(
                    _percentile(lat, 0.99) * 1e3, 3
                )
                tp_lines.append(
                    f"  batch={batch:<4d} {len(lat):5d} requests  "
                    f"{rows_per_s:10.0f} rows/s  "
                    f"p99 {_percentile(lat, 0.99) * 1e3:8.3f} ms"
                )
            best_rows_per_s = max(
                v
                for k, v in throughput.items()
                if k.endswith("_rows_per_s")
            )
            throughput["speedup_vs_v1"] = round(
                best_rows_per_s / V1_BASELINE_MATCH_RPS, 1
            )

            # ---- sustained open-loop SLO phases with live hot swaps ----
            slo_phases = []
            slo_lines = []
            payloads = batch_payloads(config.batch_rows)
            for target in config.target_rows_per_s:
                writer = _SwapWriter(
                    store,
                    result,
                    config.hot_swap_interval_s,
                    server=None if workers > 1 else server,
                )
                writer.start()
                try:
                    phase = _open_loop_phase(
                        host,
                        port,
                        payloads,
                        target,
                        config.batch_rows,
                        config.phase_duration_s,
                        config.n_client_threads,
                    )
                finally:
                    writer.stop()
                phase["hot_swaps"] = writer.swaps
                slo_phases.append(phase)
                slo_lines.append(
                    f"  target {target:>8,d} rows/s → "
                    f"{phase['achieved_rps']:>8,d} achieved  "
                    f"p50 {phase['p50_ms']:8.3f} ms  "
                    f"p99 {phase['p99_ms']:8.3f} ms  "
                    f"jitter {phase['jitter_ms']:8.3f} ms  "
                    f"errors {phase['error_rate']:.2%}  "
                    f"swaps {phase['hot_swaps']}"
                )
        finally:
            server.stop()

    lines = [
        "Serving SLO under sustained load "
        f"({dataset.n_rows} rows, {len(result.patterns)} patterns, "
        f"{workers} worker(s), mode {throughput['mode']})",
        "",
        "closed-loop throughput ceilings (batched POST /match):",
        *tp_lines,
        f"  speedup vs v1 single-row baseline "
        f"({V1_BASELINE_MATCH_RPS} req/s): "
        f"{throughput['speedup_vs_v1']}x",
        "",
        "open-loop SLO phases (latency from scheduled send; "
        "writer hot-swapping runs throughout):",
        *slo_lines,
    ]
    results = {"throughput": throughput, "slo": slo_phases}
    return "\n".join(lines), results


def main() -> None:
    from bench_artifacts import write_bench_artifact

    text, results = run_slo_bench()
    print(text)
    out = Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "bench_serve_slo.txt").write_text(text + "\n")
    artifact = write_bench_artifact("serve", results, schema_version=2)
    print(f"\nwrote {out / 'bench_serve_slo.txt'}")
    print(f"wrote {artifact}")


if __name__ == "__main__":
    main()
