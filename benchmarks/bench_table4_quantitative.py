"""Table 4: mean support difference of the top-k contrasts, 10 datasets
x {SDAD-CS NP, MVD, Entropy, Cortana}, with the Wilcoxon-Mann-Whitney
``*`` marker against SDAD-CS NP.

Shape expectations (the substrate is synthetic; see EXPERIMENTS.md):

* SDAD-CS NP and Cortana lead; MVD trails on (almost) every dataset —
  the paper's headline ordering;
* datasets keep their bands: strong (Breast, Ionosphere, Shuttle,
  Spambase) well above weak (Adult, Credit Card, Transfusion);
* on most datasets Cortana's distribution is statistically close to
  SDAD-CS NP (the paper's many ``*`` entries).

Default dataset scales are laptop-friendly; pass ``--bench-scale-full``
for Table 2 sizes.
"""

from __future__ import annotations

import pytest

from repro.analysis import compare_algorithms, comparison_table
from repro.core.config import MinerConfig

DATASETS = [
    "adult",
    "spambase",
    "breast_cancer",
    "mammography",
    "transfusion",
    "shuttle",
    "credit_card",
    "census_income",
    "ionosphere",
    "covtype",
]

ALGORITHMS = ("sdad_np", "mvd", "entropy", "cortana")

# Datasets with dozens of attributes get a reduced attribute budget so the
# bench completes in laptop time; the paper's workstation ran them whole.
ATTRIBUTE_BUDGET = 12


def _config(depth: int) -> MinerConfig:
    return MinerConfig(k=100, max_tree_depth=depth)


def _restrict(dataset):
    if len(dataset.schema) <= ATTRIBUTE_BUDGET:
        return dataset
    return dataset.project(dataset.schema.names[:ATTRIBUTE_BUDGET])


@pytest.fixture(scope="module")
def comparisons(bench_dataset, bench_depth):
    out = {}
    for name in DATASETS:
        dataset = _restrict(bench_dataset(name))
        out[name] = compare_algorithms(
            dataset,
            name,
            algorithms=ALGORITHMS,
            config=_config(bench_depth(name)),
        )
    return out


def test_table4_mean_support_difference(benchmark, comparisons, report):
    # one representative measurement for pytest-benchmark: the smallest
    # dataset's full protocol
    from repro.dataset import uci

    benchmark.pedantic(
        lambda: compare_algorithms(
            uci.transfusion(), "transfusion", algorithms=ALGORITHMS,
            config=_config(2),
        ),
        rounds=1,
        iterations=1,
    )

    table = comparison_table(list(comparisons.values()), ALGORITHMS)
    report("table4_quantitative", table)

    means = {
        name: {a: row.mean_difference for a, row in comp.rows.items()}
        for name, comp in comparisons.items()
    }

    # headline ordering: SDAD-CS NP or Cortana leads on (nearly) every
    # dataset, and MVD never meaningfully beats SDAD-CS NP (the paper's
    # Table 4 has MVD trailing everywhere; we allow a small tolerance —
    # see EXPERIMENTS.md on ionosphere)
    led = sum(
        1
        for row in means.values()
        if max(row, key=row.get) in ("sdad_np", "cortana")
    )
    assert led >= len(DATASETS) - 1, means
    for name, row in means.items():
        assert row["mvd"] <= row["sdad_np"] + 0.1, (name, row)

    # signal bands: strong datasets clear their band, weak stay under
    for strong in ("breast_cancer", "ionosphere"):
        assert means[strong]["sdad_np"] > 0.5, (strong, means[strong])
    assert means["shuttle"]["sdad_np"] > 0.4, means["shuttle"]
    for weak in ("adult", "credit_card", "transfusion"):
        assert (
            means[weak]["sdad_np"]
            < means["breast_cancer"]["sdad_np"]
        ), (weak, means[weak])

    # the paper's * pattern: Cortana tracks SDAD-CS NP closely on at
    # least half the datasets (our Cortana re-implementation stacks
    # redundant strong conditions a bit more aggressively than the
    # original tool, so the band is 0.15 — see EXPERIMENTS.md)
    close = sum(
        1
        for comp in comparisons.values()
        if comp.rows["cortana"].statistically_same_as_reference
        or abs(
            comp.rows["cortana"].mean_difference
            - comp.rows["sdad_np"].mean_difference
        )
        < 0.15
    )
    assert close >= len(DATASETS) // 2
