"""Table 5: wall time and number of partitions evaluated for SDAD-CS,
MVD, and SDAD-CS NP.

Shape expectations from the paper:

* SDAD-CS (with pruning) evaluates no more partitions than SDAD-CS NP —
  usually far fewer — and is generally the fastest of the three;
* MVD's cost per partition is higher (multivariate chi-square contexts),
  so it can be slower even when evaluating fewer partitions.
"""

from __future__ import annotations

import pytest

from repro.analysis import compare_algorithms, timing_table
from repro.core.config import MinerConfig

DATASETS = [
    "adult",
    "breast_cancer",
    "mammography",
    "transfusion",
    "shuttle",
    "ionosphere",
]

ALGORITHMS = ("sdad", "mvd", "sdad_np")
ATTRIBUTE_BUDGET = 12


def _restrict(dataset):
    if len(dataset.schema) <= ATTRIBUTE_BUDGET:
        return dataset
    return dataset.project(dataset.schema.names[:ATTRIBUTE_BUDGET])


@pytest.fixture(scope="module")
def comparisons(bench_dataset, bench_depth):
    out = {}
    for name in DATASETS:
        dataset = _restrict(bench_dataset(name))
        out[name] = compare_algorithms(
            dataset,
            name,
            algorithms=ALGORITHMS,
            config=MinerConfig(k=100, max_tree_depth=bench_depth(name)),
            reference="sdad",
        )
    return out


def test_table5_time_and_partitions(benchmark, comparisons, report):
    from repro.dataset import uci
    from repro.analysis import run_algorithm

    benchmark.pedantic(
        lambda: run_algorithm(
            "sdad", uci.transfusion(), MinerConfig(k=100, max_tree_depth=2)
        ),
        rounds=1,
        iterations=1,
    )

    report(
        "table5_time",
        timing_table(list(comparisons.values()), ALGORITHMS),
    )

    fewer_partitions = 0
    for name, comp in comparisons.items():
        pruned = comp.rows["sdad"]
        unpruned = comp.rows["sdad_np"]
        assert (
            pruned.partitions_evaluated <= unpruned.partitions_evaluated
        ), name
        if pruned.partitions_evaluated < unpruned.partitions_evaluated:
            fewer_partitions += 1
    # pruning must actually bite on most datasets
    assert fewer_partitions >= len(DATASETS) - 2

    # and translate into time saved overall
    total_pruned = sum(
        c.rows["sdad"].elapsed_seconds for c in comparisons.values()
    )
    total_unpruned = sum(
        c.rows["sdad_np"].elapsed_seconds for c in comparisons.values()
    )
    assert total_pruned <= total_unpruned * 1.1
