"""Section 6 scaling: level-parallel mining on growing traces.

The paper reports 18 / 106 / 225 minutes for 100k / 500k / 1M rows x 120
features on a cluster.  The bench runs the same level-parallel strategy on
laptop-sized traces (5k / 25k / 50k rows by default; the --bench-scale-full
flag multiplies sizes by 5) and asserts the shape: wall time grows roughly
linearly (sub-quadratically) with the row count, and the parallel run
agrees with the serial miner on the top pattern.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import MinerConfig
from repro.core.miner import ContrastSetMiner
from repro.dataset.manufacturing import scaling_dataset


SIZES = (5_000, 25_000, 50_000)
N_FEATURES = 120
CONFIG = MinerConfig(k=50, max_tree_depth=1)
# depth 1 keeps the 120-feature sweep laptop-sized; the parallel speed-up
# story is in the per-level fan-out, which depth 1 already exercises.


@pytest.fixture(scope="module")
def scaling_runs(full_scale):
    sizes = tuple(s * 5 for s in SIZES) if full_scale else SIZES
    rows = []
    for n in sizes:
        dataset = scaling_dataset(n, n_features=N_FEATURES)
        start = time.perf_counter()
        result = ContrastSetMiner(CONFIG).mine(dataset, n_jobs=4)
        elapsed = time.perf_counter() - start
        rows.append((n, elapsed, result))
    return rows


def test_scaling_parallel(benchmark, scaling_runs, report):
    smallest = scaling_runs[0][0]
    benchmark.pedantic(
        lambda: ContrastSetMiner(CONFIG).mine(
            scaling_dataset(smallest, n_features=N_FEATURES),
            n_jobs=4,
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Section 6 scaling reproduction (level-parallel mining)",
        f"{'rows':>10}{'seconds':>10}{'patterns':>10}{'partitions':>12}",
    ]
    for n, elapsed, result in scaling_runs:
        lines.append(
            f"{n:>10}{elapsed:>10.1f}{len(result.patterns):>10}"
            f"{result.stats.partitions_evaluated:>12}"
        )
    report("scaling_parallel", "\n".join(lines))

    # each run must find the planted contrasts
    for n, __, result in scaling_runs:
        assert result.patterns, n

    # shape: growth is sub-quadratic in rows (the paper's 100k -> 1M is
    # 10x rows for ~12.5x time)
    n0, t0, _ = scaling_runs[0]
    n2, t2, _ = scaling_runs[-1]
    rows_ratio = n2 / n0
    time_ratio = t2 / max(t0, 1e-9)
    assert time_ratio < rows_ratio**2


def test_parallel_agrees_with_serial(benchmark, report):
    dataset = scaling_dataset(5_000, n_features=30)

    def run():
        serial = ContrastSetMiner(CONFIG).mine(dataset)
        parallel = ContrastSetMiner(CONFIG).mine(dataset, n_jobs=4)
        return serial, parallel

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    assert serial.patterns[0].itemset == parallel.patterns[0].itemset
    serial_sets = {p.itemset for p in serial.patterns}
    parallel_sets = {p.itemset for p in parallel.patterns}
    agreement = len(serial_sets & parallel_sets) / len(serial_sets)
    report(
        "scaling_parallel_agreement",
        f"serial={len(serial_sets)} patterns, "
        f"parallel={len(parallel_sets)}, agreement={agreement:.2%}",
    )
    assert agreement > 0.8
