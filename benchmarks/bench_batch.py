"""Vectorized level-batch evaluation engine: end-to-end speed and parity.

Times the depth-3 Adult mining run (bitmap backend) with the batch
driver (``batch_evaluation=True``, the default) against the scalar
escape hatch (``batch_evaluation=False``), which preserves the
per-candidate evaluation order of the pre-redesign driver.  Parity is
asserted the strong way — the two runs must produce byte-identical
pattern lists (same sha256 fingerprint) — so the speedup is measured
between provably-equivalent computations.

Two honesty notes, so the committed numbers are read correctly:

* the scalar escape hatch shares the rewritten vectorized chi-square
  kernel and the restructured SDAD-CS explore loop with the batch
  driver, so it is itself faster than the historical pre-redesign
  driver; the batch-vs-scalar ratio here *understates* the end-to-end
  gain over the commit preceding the redesign (measured out-of-band at
  1.8x on this machine for scale 0.15);
* the advantage is interpreter-bound: it is largest on small/medium
  row counts where per-candidate Python overhead dominates, and
  shrinks as O(n) counting grows to dominate both drivers equally.

Results are committed as ``BENCH_batch.json`` at the repo root (see
``bench_artifacts.py``).

Run standalone:  PYTHONPATH=src python benchmarks/bench_batch.py
Under pytest the bench runs a reduced smoke check (fewer repeats, the
small scale only); the committed artifact is refreshed only by
standalone runs.
"""

from __future__ import annotations

import hashlib
import json
from time import perf_counter

from repro import ContrastSetMiner, MinerConfig
from repro.core.serialize import patterns_to_dicts
from repro.dataset import uci

DEPTH = 3
BACKEND = "bitmap"
SCALES = (0.15, 1.0)
REPEATS = 5


def _fingerprint(patterns) -> str:
    payload = json.dumps(patterns_to_dicts(patterns), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _time_mode(dataset, batch: bool, repeats: int):
    config = MinerConfig(
        max_tree_depth=DEPTH,
        counting_backend=BACKEND,
        batch_evaluation=batch,
    )
    result = ContrastSetMiner(config).mine(dataset)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        result = ContrastSetMiner(config).mine(dataset)
        best = min(best, perf_counter() - start)
    return best, result


def run_bench(scales=SCALES, repeats=REPEATS) -> dict:
    results: dict[str, object] = {
        "dataset": "adult",
        "depth": DEPTH,
        "backend": BACKEND,
        "repeats": repeats,
    }
    for scale in scales:
        dataset = uci.adult(scale=scale)
        batch_s, batch_result = _time_mode(dataset, True, repeats)
        scalar_s, scalar_result = _time_mode(dataset, False, repeats)
        fp = _fingerprint(batch_result.patterns)
        assert fp == _fingerprint(scalar_result.patterns), (
            "batch and scalar drivers diverged at scale %s" % scale
        )
        tag = str(scale).replace(".", "_")
        results[f"scale_{tag}"] = {
            "n_rows": dataset.n_rows,
            "batch_seconds": round(batch_s, 4),
            "scalar_seconds": round(scalar_s, 4),
            "speedup_vs_scalar": round(scalar_s / batch_s, 3),
            "n_patterns": len(batch_result.patterns),
            "patterns_sha256": fp,
        }
    return results


def test_batch_driver_faster_with_identical_patterns():
    """Smoke: batch mode matches the scalar patterns and is not slower."""
    results = run_bench(scales=(0.15,), repeats=2)
    entry = results["scale_0_15"]
    # identical output is asserted inside run_bench; require the batch
    # driver to at least hold its own (generous bound: timer noise on
    # shared CI boxes)
    assert entry["batch_seconds"] <= entry["scalar_seconds"] * 1.25


def main() -> None:
    from bench_artifacts import write_bench_artifact

    results = run_bench()
    path = write_bench_artifact("batch", results)
    print(f"wrote {path}")
    for key, value in results.items():
        print(f"{key}: {value}")


if __name__ == "__main__":
    main()
