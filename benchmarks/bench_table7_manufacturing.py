"""Table 7 / Section 6: the semiconductor manufacturing case study.

Mines population-vs-failed contrasts on the synthetic packaging/test
dataset (148 attributes with the rear-lane-of-SCE failure mechanism
planted; DESIGN.md substitution #3) and asserts that the compact
meaningful set surfaces the planted equipment path and thermal windows —
the actionable readout Table 7 presents:

* CAM entity = SCE and Placement tool = JVF (the hot module's feed);
* CAM row location = Rear;
* elevated time-above-liquidus / peak-temperature windows.
"""

from __future__ import annotations

import pytest

from repro.analysis import pattern_table
from repro.core.config import MinerConfig
from repro.core.miner import ContrastSetMiner
from repro.dataset.manufacturing import manufacturing

PLANTED_CATEGORICAL = {
    ("CAM entity", "SCE"),
    ("Placement tool", "JVF"),
    ("CAM row location", "Rear"),
}
PLANTED_CONTINUOUS = {
    "CAM time above liquidus",
    "CAM Peak temperature",
    "CAM peak temp std",
    "Die temp above std",
}


def test_table7_manufacturing(benchmark, report):
    dataset = manufacturing()
    config = MinerConfig(k=40, max_tree_depth=1)

    result = benchmark.pedantic(
        lambda: ContrastSetMiner(config).mine(dataset),
        rounds=1,
        iterations=1,
    )
    meaningful = result.meaningful()

    # Table 7 ranks by support difference
    ranked = sorted(meaningful, key=lambda p: -p.support_difference)
    lines = [
        "Table 7 reproduction: contrast sets for manufacturing data",
        "",
        pattern_table(ranked, max_rows=12,
                      title="Meaningful contrasts (population vs failed)"),
        "",
        f"raw patterns: {len(result)}; meaningful: {len(meaningful)}; "
        f"partitions evaluated: {result.stats.partitions_evaluated}",
    ]
    report("table7_manufacturing", "\n".join(lines))

    # the planted equipment path must be surfaced
    categorical_found = set()
    continuous_found = set()
    for pattern in ranked[:12]:
        for item in pattern.itemset:
            from repro.core.items import CategoricalItem

            if isinstance(item, CategoricalItem):
                categorical_found.add((item.attribute, item.value))
            else:
                continuous_found.add(item.attribute)

    assert len(categorical_found & PLANTED_CATEGORICAL) >= 2
    assert len(continuous_found & PLANTED_CONTINUOUS) >= 2

    # the failing group dominates the actionable side of the report
    # (each thermal window also surfaces its Population-dominated
    # complement region, which is fine)
    failed_side = [
        p for p in ranked[:10] if p.dominant_group == "Failed"
    ]
    assert len(failed_side) >= 4

    # and the thermal windows behave like Table 7's: rare in the
    # population, several times more common among failures
    thermal = [
        p
        for p in ranked
        if set(p.itemset.attributes) & PLANTED_CONTINUOUS
        and p.dominant_group == "Failed"
    ]
    assert thermal
    best = max(thermal, key=lambda p: p.support_difference)
    assert best.support("Failed") > 1.5 * best.support("Population")
