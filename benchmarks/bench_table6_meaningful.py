"""Table 6: number of meaningful vs meaningless contrasts in the
unfiltered top-100 per dataset.

The paper's point: without the redundancy / productivity / independent-
productivity filters, the overwhelming majority of the top-100 patterns
are not meaningful (e.g. Adult 3/97, Credit Card 1/99, Spambase 12/88).
The bench runs SDAD-CS NP, classifies its top-100, and asserts the
meaningless fraction dominates on every dataset.
"""

from __future__ import annotations

import pytest

from repro.analysis import census
from repro.core.config import MinerConfig

DATASETS = [
    "adult",
    "spambase",
    "breast_cancer",
    "mammography",
    "transfusion",
    "shuttle",
    "credit_card",
    "census_income",
    "ionosphere",
    "covtype",
]

ATTRIBUTE_BUDGET = 12


def _restrict(dataset):
    if len(dataset.schema) <= ATTRIBUTE_BUDGET:
        return dataset
    return dataset.project(dataset.schema.names[:ATTRIBUTE_BUDGET])


@pytest.fixture(scope="module")
def censuses(bench_dataset, bench_depth):
    out = {}
    for name in DATASETS:
        dataset = _restrict(bench_dataset(name))
        out[name] = census(
            dataset,
            name,
            algorithm="sdad_np",
            config=MinerConfig(k=100, max_tree_depth=bench_depth(name)),
            top=100,
        )
    return out


def test_table6_meaningful_counts(benchmark, censuses, report):
    from repro.dataset import uci

    benchmark.pedantic(
        lambda: census(
            uci.transfusion(),
            "transfusion",
            config=MinerConfig(k=100, max_tree_depth=2),
            top=50,
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Table 6 reproduction: meaningful vs meaningless contrasts in the",
        "unfiltered top-100 (SDAD-CS NP)",
        "",
        f"{'Dataset':<16}{'Meaningful':>12}{'Meaningless':>13}"
        f"{'Redundant':>11}{'Unproductive':>14}{'NotIndepProd':>14}",
    ]
    for name, result in censuses.items():
        lines.append(
            f"{name:<16}{result.n_meaningful:>12}{result.n_meaningless:>13}"
            f"{result.n_redundant:>11}{result.n_unproductive:>14}"
            f"{result.n_not_independently_productive:>14}"
        )
    report("table6_meaningful", "\n".join(lines))

    # the paper's headline: meaningless patterns dominate everywhere
    dominated = 0
    for name, result in censuses.items():
        assert result.n_patterns > 0, name
        if result.n_meaningless > result.n_meaningful:
            dominated += 1
    assert dominated >= len(DATASETS) - 1

    # and on the bigger multi-attribute datasets the meaningless share is
    # overwhelming (paper: >= 85% on 8 of 10 datasets)
    heavy = [
        r for r in censuses.values() if r.n_patterns >= 50
    ]
    assert heavy
    overwhelming = sum(
        1 for r in heavy if r.n_meaningless / r.n_patterns >= 0.7
    )
    assert overwhelming >= max(1, len(heavy) // 2)
