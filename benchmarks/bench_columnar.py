"""Out-of-core scale proof: pack and mine 10M rows without ever holding
the dataset in memory.

The chunked layer's contract (DESIGN.md section 11) is that the
dataset's residency is bounded by the view's column LRU plus the group
codes — not by row count times column count.  This bench proves it
with numbers, on a 10-column telemetry-shaped dataset (8 continuous
metrics, one categorical, planted contrasts):

* stream-generates 10M rows chunk by chunk — the full dataset never
  exists in memory at any point of the pack;
* mines the store at depth 2 in a fresh subprocess and records its
  peak RSS;
* materializes the same store with ``to_dataset()`` and mines it
  in-memory in another fresh subprocess, as the baseline;
* requires the two runs to produce byte-identical patterns (the
  parity contract at full scale) and the chunked peak to be at most a
  quarter of both the dense pipeline's peak and the bytes that merely
  materializing the dataset would pin (the Cover-native search state,
  DESIGN.md section 13);
* runs a 100M-row tier — pack plus chunked mine only — proving the
  pipeline completes in bounded memory an order of magnitude past
  the comparison scale.

Results are committed as ``BENCH_columnar.json`` at the repo root (see
``bench_artifacts.py``).

Run standalone:  PYTHONPATH=src python benchmarks/bench_columnar.py
Under pytest the bench runs at reduced scale (2M rows) as a smoke
check; the committed artifact is refreshed only by standalone runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import resource
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from repro import Attribute, ChunkedDataset, Dataset, Schema

N_ROWS = 10_000_000
N_ROWS_100M = 100_000_000
CHUNK_SIZE = 262_144
SEED = 20190326
DEPTH = 2

N_METRICS = 8  # continuous columns: metric_0 .. metric_7

SCHEMA = Schema.of(
    [Attribute.continuous(f"metric_{i}") for i in range(N_METRICS)]
    + [
        Attribute.categorical(
            "region", ["us-east", "us-west", "eu", "apac"]
        )
    ]
)
GROUP_LABELS = ["ok", "degraded"]


def _chunk(rng: np.random.Generator, n: int) -> Dataset:
    """One chunk of the synthetic stream.  Contrasts are planted on
    ``metric_0`` (shifted up for the degraded group) and ``region``
    (code 2 over-represented there); the other metrics are noise."""
    group = rng.integers(0, 2, n)
    columns: dict[str, np.ndarray] = {
        "metric_0": rng.gamma(2.0, 1.0, n)
        + np.where(group == 1, 1.5, 0.0)
    }
    for i in range(1, N_METRICS):
        columns[f"metric_{i}"] = rng.uniform(0.0, 100.0, n)
    columns["region"] = np.where(
        group == 1,
        rng.choice(4, n, p=[0.1, 0.2, 0.6, 0.1]),
        rng.choice(4, n, p=[0.3, 0.3, 0.1, 0.3]),
    )
    return Dataset(SCHEMA, columns, group, GROUP_LABELS)


def _dense_equivalent_bytes(n_rows: int) -> int:
    """Memory an in-memory Dataset of the same rows pins: float64
    continuous columns, int64 categorical codes, int64 group codes."""
    return n_rows * 8 * (len(SCHEMA.names) + 1)


def _pack(store_path: Path, n_rows: int) -> tuple[ChunkedDataset, float]:
    rng = np.random.default_rng(SEED)
    store = ChunkedDataset.create(store_path, SCHEMA, GROUP_LABELS)
    started = perf_counter()
    remaining = n_rows
    while remaining:
        n = min(CHUNK_SIZE, remaining)
        store.append(_chunk(rng, n), chunk_size=CHUNK_SIZE)
        remaining -= n
    return store, perf_counter() - started


def _mine_phase(store_path: str, mode: str, n_jobs: int) -> None:
    """Subprocess body: mine and report peak RSS + a parity digest."""
    from repro import ContrastSetMiner, MinerConfig
    from repro.core.serialize import patterns_to_dicts

    store = ChunkedDataset(store_path)
    data = store.to_dataset() if mode == "dense" else store
    started = perf_counter()
    result = ContrastSetMiner(MinerConfig(max_tree_depth=DEPTH)).mine(
        data, n_jobs=n_jobs
    )
    elapsed = perf_counter() - started
    rendered = json.dumps(patterns_to_dicts(result.patterns),
                          sort_keys=True)
    usage = resource.getrusage(resource.RUSAGE_SELF)
    children = resource.getrusage(resource.RUSAGE_CHILDREN)
    print(
        json.dumps(
            {
                "seconds": round(elapsed, 3),
                "peak_rss_mb": round(
                    max(usage.ru_maxrss, children.ru_maxrss) / 1024, 1
                ),
                "n_patterns": len(result.patterns),
                "patterns_sha256": hashlib.sha256(
                    rendered.encode()
                ).hexdigest(),
            }
        )
    )


def _run_phase(store_path: Path, mode: str, n_jobs: int = 1) -> dict:
    """Run one mining phase in a fresh interpreter so its peak RSS is
    attributable to that pipeline alone."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--phase",
            mode,
            "--store",
            str(store_path),
            "--n-jobs",
            str(n_jobs),
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"{mode} phase failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _dir_bytes(path: Path) -> int:
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


def run_bench(n_rows: int = N_ROWS) -> tuple[str, dict]:
    tmp = Path(tempfile.mkdtemp(prefix="bench_columnar_"))
    try:
        store_path = tmp / "store"
        store, pack_s = _pack(store_path, n_rows)
        disk_bytes = _dir_bytes(store_path)
        pack_peak_mb = (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        )

        chunked = _run_phase(store_path, "chunked")
        parallel = _run_phase(store_path, "chunked", n_jobs=2)
        dense = _run_phase(store_path, "dense")

        assert chunked["patterns_sha256"] == dense["patterns_sha256"], (
            "out-of-core mining diverged from in-memory at scale"
        )
        assert parallel["patterns_sha256"] == dense["patterns_sha256"]
        assert chunked["n_patterns"] > 0, "planted contrasts must surface"

        dense_bytes_mb = _dense_equivalent_bytes(n_rows) / 1e6
        over_dataset = chunked["peak_rss_mb"] / dense_bytes_mb
        over_pipeline = chunked["peak_rss_mb"] / dense["peak_rss_mb"]

        stats = {
            "n_rows": n_rows,
            "n_columns": len(SCHEMA.names),
            "n_chunks": store.n_chunks,
            "chunk_size": CHUNK_SIZE,
            "depth": DEPTH,
            "pack_seconds": round(pack_s, 3),
            "pack_rows_per_s": round(n_rows / pack_s),
            "pack_peak_rss_mb": round(pack_peak_mb, 1),
            "store_disk_mb": round(disk_bytes / 1e6, 1),
            "n_patterns": chunked["n_patterns"],
            "patterns_sha256": chunked["patterns_sha256"],
            "chunked_mine_seconds": chunked["seconds"],
            "chunked_parallel2_seconds": parallel["seconds"],
            "chunked_peak_rss_mb": chunked["peak_rss_mb"],
            "dense_mine_seconds": dense["seconds"],
            "dense_peak_rss_mb": dense["peak_rss_mb"],
            "dense_dataset_mb": round(dense_bytes_mb, 1),
            "chunked_peak_over_dense_dataset": round(over_dataset, 3),
            "chunked_peak_over_dense_pipeline": round(over_pipeline, 3),
        }
        lines = [
            f"Out-of-core columnar mining, {n_rows:,} rows x "
            f"{len(SCHEMA.names)} columns "
            f"({store.n_chunks} chunks of {CHUNK_SIZE:,})",
            "",
            f"pack     {pack_s:8.2f} s  "
            f"({stats['pack_rows_per_s']:,} rows/s, "
            f"{stats['store_disk_mb']} MB on disk, "
            f"peak RSS {stats['pack_peak_rss_mb']} MB)",
            f"chunked  {chunked['seconds']:8.2f} s serial, "
            f"{parallel['seconds']:.2f} s n_jobs=2  "
            f"(depth {DEPTH}, {chunked['n_patterns']} patterns, "
            f"peak RSS {chunked['peak_rss_mb']} MB)",
            f"dense    {dense['seconds']:8.2f} s serial  "
            f"(same patterns, peak RSS {dense['peak_rss_mb']} MB; "
            f"dataset alone pins {stats['dense_dataset_mb']} MB)",
            "",
            f"chunked peak = {over_dataset:.2f}x the dense dataset "
            f"bytes, {over_pipeline:.2f}x the dense pipeline peak "
            "(patterns byte-identical)",
        ]
        return "\n".join(lines), stats
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_bench_100m(n_rows: int = N_ROWS_100M) -> dict:
    """100M-row tier: pack + chunked mine only (no dense comparison —
    the point is that the run completes in bounded memory, and at this
    scale materializing the 7+ GB table as a baseline proves nothing
    new).  Returns the stats block committed under ``tier_100m``."""
    tmp = Path(tempfile.mkdtemp(prefix="bench_columnar_100m_"))
    try:
        store_path = tmp / "store"
        store, pack_s = _pack(store_path, n_rows)
        disk_bytes = _dir_bytes(store_path)

        chunked = _run_phase(store_path, "chunked")
        assert chunked["n_patterns"] > 0, "planted contrasts must surface"

        dense_bytes_mb = _dense_equivalent_bytes(n_rows) / 1e6
        return {
            "n_rows": n_rows,
            "n_chunks": store.n_chunks,
            "pack_seconds": round(pack_s, 3),
            "pack_rows_per_s": round(n_rows / pack_s),
            "store_disk_mb": round(disk_bytes / 1e6, 1),
            "n_patterns": chunked["n_patterns"],
            "patterns_sha256": chunked["patterns_sha256"],
            "chunked_mine_seconds": chunked["seconds"],
            "chunked_peak_rss_mb": chunked["peak_rss_mb"],
            "dense_dataset_mb": round(dense_bytes_mb, 1),
            "chunked_peak_over_dense_dataset": round(
                chunked["peak_rss_mb"] / dense_bytes_mb, 3
            ),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def test_columnar_scale(report):
    # reduced scale for the bench suite; the full 10M artifact comes
    # from standalone runs
    text, stats = run_bench(n_rows=2_000_000)
    report("bench_columnar", text)
    # at 2M rows the interpreter's fixed ~100MB footprint dominates the
    # chunked peak, so the ratio is looser than the 10M-scale 0.25 bound
    assert stats["chunked_peak_over_dense_pipeline"] < 0.75, stats


def main() -> None:
    from bench_artifacts import write_bench_artifact

    text, stats = run_bench()
    print(text)
    # at 10M rows the interpreter + numpy fixed footprint (~130 MB) is a
    # large share of the chunked peak, so the dataset-bytes ratio is
    # looser than the pipeline one; the 100M tier below tightens it
    assert stats["chunked_peak_over_dense_dataset"] < 0.35, (
        "scale proof failed: peak RSS not well below the dataset's "
        "in-memory footprint",
        stats,
    )
    assert stats["chunked_peak_over_dense_pipeline"] < 0.25, (
        "scale proof failed: chunk-native search state should keep "
        "peak RSS at a quarter of the dense pipeline's or less",
        stats,
    )

    tier_100m = run_bench_100m()
    stats["tier_100m"] = tier_100m
    text += (
        "\n\n"
        f"100M-row tier ({tier_100m['n_chunks']} chunks, "
        f"{tier_100m['store_disk_mb']} MB on disk):\n"
        f"pack     {tier_100m['pack_seconds']:8.2f} s  "
        f"({tier_100m['pack_rows_per_s']:,} rows/s)\n"
        f"chunked  {tier_100m['chunked_mine_seconds']:8.2f} s serial  "
        f"(depth {DEPTH}, {tier_100m['n_patterns']} patterns, "
        f"peak RSS {tier_100m['chunked_peak_rss_mb']} MB = "
        f"{tier_100m['chunked_peak_over_dense_dataset']:.3f}x the "
        f"{tier_100m['dense_dataset_mb']} MB dense table)"
    )
    print(text.split("100M-row tier")[-1])
    assert tier_100m["chunked_peak_over_dense_dataset"] < 0.25, (
        "100M-row run must stay well below the dense table footprint",
        tier_100m,
    )

    out = Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "bench_columnar.txt").write_text(text + "\n")
    artifact = write_bench_artifact("columnar", stats)
    print(f"\nwrote {out / 'bench_columnar.txt'}")
    print(f"wrote {artifact}")


if __name__ == "__main__":
    if "--phase" in sys.argv:
        import argparse

        parser = argparse.ArgumentParser()
        parser.add_argument("--phase", choices=["chunked", "dense"])
        parser.add_argument("--store", required=True)
        parser.add_argument("--n-jobs", type=int, default=1)
        args = parser.parse_args()
        _mine_phase(args.store, args.phase, args.n_jobs)
    else:
        main()
