"""Committed machine-readable benchmark artifacts.

Human-readable bench reports live in ``benchmarks/out/*.txt`` (see
``conftest.report``) and are regenerated locally.  Headline numbers that
the docs and CI refer to are additionally *committed* at the repo root
as ``BENCH_<name>.json`` so that a clone carries its own baseline:

* one JSON file per bench, written through :func:`write_bench_artifact`;
* a fixed envelope (``bench``, ``schema_version``, ``environment``,
  ``results``) with sorted keys and a trailing newline, so regenerating
  on the same machine produces a clean diff;
* ``results`` is flat-ish JSON: numbers, strings, and shallow dicts —
  anything a dashboard or a CI threshold check can consume without
  importing the package.

Benches call ``write_bench_artifact("columnar", {...})`` from their
``main()`` so artifacts refresh only on explicit standalone runs, never
as a pytest side effect.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 1


def _environment() -> dict[str, object]:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def write_bench_artifact(name: str, results: dict) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path."""
    if not name.isidentifier():
        raise ValueError(f"artifact name must be identifier-like: {name!r}")
    path = REPO_ROOT / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "schema_version": SCHEMA_VERSION,
        "environment": _environment(),
        "results": results,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def read_bench_artifact(name: str) -> dict:
    """Load a committed artifact (raises FileNotFoundError if absent)."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    return json.loads(path.read_text())
