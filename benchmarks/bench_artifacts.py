"""Committed machine-readable benchmark artifacts.

Human-readable bench reports live in ``benchmarks/out/*.txt`` (see
``conftest.report``) and are regenerated locally.  Headline numbers that
the docs and CI refer to are additionally *committed* at the repo root
as ``BENCH_<name>.json`` so that a clone carries its own baseline:

* one JSON file per bench, written through :func:`write_bench_artifact`;
* a fixed envelope (``bench``, ``schema_version``, ``environment``,
  ``results``) with sorted keys and a trailing newline, so regenerating
  on the same machine produces a clean diff;
* ``results`` is flat-ish JSON: numbers, strings, and shallow dicts —
  anything a dashboard or a CI threshold check can consume without
  importing the package.

Benches call ``write_bench_artifact("columnar", {...})`` from their
``main()`` so artifacts refresh only on explicit standalone runs, never
as a pytest side effect.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 1

SERVE_V2_REQUIRED_PHASES = ("throughput", "slo")
"""Top-level result sections a schema-v2 serve artifact must carry."""

SERVE_V2_SLO_FIELDS = (
    "target_rps",
    "achieved_rps",
    "p50_ms",
    "p99_ms",
    "jitter_ms",
    "error_rate",
    "requests",
    "hot_swaps",
)
"""Per-SLO-phase fields (open-loop load: latency measured from the
*scheduled* send time, so queueing delay is charged to the server)."""


def _environment() -> dict[str, object]:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def write_bench_artifact(
    name: str, results: dict, schema_version: int = SCHEMA_VERSION
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path."""
    if not name.isidentifier():
        raise ValueError(f"artifact name must be identifier-like: {name!r}")
    path = REPO_ROOT / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "schema_version": schema_version,
        "environment": _environment(),
        "results": results,
    }
    if name == "serve" and schema_version >= 2:
        validate_serve_artifact(document)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def read_bench_artifact(name: str) -> dict:
    """Load a committed artifact (raises FileNotFoundError if absent)."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    return json.loads(path.read_text())


def validate_serve_artifact(document: dict) -> None:
    """Schema-v2 check for ``BENCH_serve.json`` (raises ``ValueError``).

    v2 replaces the flat v1 ``{match_rps, ...}`` shape with two result
    sections: ``throughput`` (closed-loop rows/s and req/s ceilings) and
    ``slo`` (a list of sustained open-loop phases, each reporting the
    :data:`SERVE_V2_SLO_FIELDS`).  The SLO smoke test and CI job both
    validate through this single function so the committed artifact and
    freshly generated ones cannot drift apart silently.
    """
    if document.get("bench") != "serve":
        raise ValueError("not a serve artifact")
    if int(document.get("schema_version", 0)) < 2:
        raise ValueError(
            f"serve artifact schema_version "
            f"{document.get('schema_version')!r} < 2"
        )
    results = document.get("results")
    if not isinstance(results, dict):
        raise ValueError("results must be a dict")
    for phase in SERVE_V2_REQUIRED_PHASES:
        if phase not in results:
            raise ValueError(f"results missing {phase!r} section")
    throughput = results["throughput"]
    if not isinstance(throughput, dict) or not throughput:
        raise ValueError("throughput section must be a non-empty dict")
    slo = results["slo"]
    if not isinstance(slo, list) or not slo:
        raise ValueError("slo section must be a non-empty list of phases")
    for i, entry in enumerate(slo):
        if not isinstance(entry, dict):
            raise ValueError(f"slo[{i}] must be a dict")
        missing = [f for f in SERVE_V2_SLO_FIELDS if f not in entry]
        if missing:
            raise ValueError(f"slo[{i}] missing fields: {missing}")
        if not 0.0 <= float(entry["error_rate"]) <= 1.0:
            raise ValueError(f"slo[{i}] error_rate out of [0, 1]")
