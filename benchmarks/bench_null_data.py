"""False-discovery control on null data.

A core claim of the paper's statistical machinery (Bonferroni ladder,
chi-square gates, CLT redundancy) is that it keeps spurious patterns out.
This bench mines datasets with **no real group structure** (the group
label is independent of every attribute) and counts what each algorithm
reports:

* SDAD-CS should report (near) zero contrasts across the replicates;
* the raw Cortana baseline — which has no significance gate, only a
  WRAcc floor — reports subgroups anyway;
* patterns that do slip through SDAD-CS die on holdout validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.analysis import run_algorithm, validate_patterns
from repro.dataset.sampling import train_holdout_split

N_REPLICATES = 8
N_ROWS = 800


def _null_dataset(seed: int) -> Dataset:
    rng = np.random.default_rng(seed)
    schema = Schema.of(
        [
            Attribute.continuous("a"),
            Attribute.continuous("b"),
            Attribute.categorical("c", ["u", "v", "w"]),
        ]
    )
    return Dataset(
        schema,
        {
            "a": rng.uniform(0, 1, N_ROWS),
            "b": rng.normal(0, 1, N_ROWS),
            "c": rng.integers(0, 3, N_ROWS),
        },
        rng.integers(0, 2, N_ROWS),
        ["G0", "G1"],
    )


def test_null_data_false_discoveries(benchmark, report):
    config = MinerConfig(k=50, max_tree_depth=2)

    def run():
        sdad_counts = []
        cortana_counts = []
        for seed in range(N_REPLICATES):
            dataset = _null_dataset(seed)
            sdad_counts.append(
                len(ContrastSetMiner(config).mine(dataset).patterns)
            )
            cortana_counts.append(
                len(run_algorithm("cortana", dataset, config).patterns)
            )
        return sdad_counts, cortana_counts

    sdad_counts, cortana_counts = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    report(
        "null_data",
        "False discoveries on null data "
        f"({N_REPLICATES} replicates, {N_ROWS} rows, no real structure)\n"
        f"  SDAD-CS contrasts per replicate:  {sdad_counts}\n"
        f"  Cortana subgroups per replicate: {cortana_counts}",
    )

    # SDAD-CS: at most an occasional chance pattern
    assert sum(sdad_counts) <= N_REPLICATES  # <= 1 per replicate on avg
    # Cortana reports far more (no significance control)
    assert sum(cortana_counts) > 4 * max(1, sum(sdad_counts))


def test_null_survivors_die_on_holdout(benchmark, report):
    """Whatever slips through on null training data fails holdout."""
    config = MinerConfig(k=50, max_tree_depth=2)

    def run():
        survived = 0
        slipped = 0
        for seed in range(N_REPLICATES):
            dataset = _null_dataset(1000 + seed)
            train, holdout = train_holdout_split(dataset, 0.4, seed=seed)
            patterns = ContrastSetMiner(config).mine(train).patterns
            slipped += len(patterns)
            if patterns:
                validation = validate_patterns(patterns, holdout)
                survived += validation.n_survived
        return slipped, survived

    slipped, survived = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "null_holdout",
        f"Null-data holdout: {slipped} chance patterns mined on train "
        f"splits, {survived} survived holdout validation",
    )
    assert survived <= max(1, slipped // 2)
