"""Ablation: the contribution of each pruning strategy (Section 4.3).

Runs SDAD-CS on Adult with each pruning rule switched off individually
and reports partitions evaluated, patterns kept, and the meaningless
fraction of the output — quantifying what each rule buys:

* optimistic estimates cut the partitions evaluated;
* CLT redundancy and pure-space pruning cut the redundant patterns;
* disabling everything (NP) maximises both costs.
"""

from __future__ import annotations

import pytest

from repro.core.config import MinerConfig
from repro.core.meaningful import classify_patterns
from repro.core.miner import ContrastSetMiner
from repro.dataset import uci

VARIANTS = {
    "full": {},
    "no-optimistic": {"prune_optimistic": False},
    "no-redundant": {"prune_redundant": False},
    "no-pure-space": {"prune_pure_space": False},
    "no-merge": {"merge": False},
}


@pytest.fixture(scope="module")
def ablation_runs():
    dataset = uci.adult().project(
        ["age", "hours-per-week", "capital-gain", "occupation", "sex"]
    )
    base = MinerConfig(k=60, max_tree_depth=2)
    out = {}
    for name, overrides in VARIANTS.items():
        config = base.with_(**overrides)
        result = ContrastSetMiner(config).mine(dataset)
        census = classify_patterns(result.patterns, dataset)
        out[name] = (result, census)
    np_result = ContrastSetMiner(base.no_pruning()).mine(dataset)
    out["np"] = (
        np_result,
        classify_patterns(np_result.patterns, dataset),
    )
    return out


def test_ablation_pruning(benchmark, ablation_runs, report):
    dataset = uci.adult().project(["age", "hours-per-week"])
    benchmark.pedantic(
        lambda: ContrastSetMiner(
            MinerConfig(k=30, max_tree_depth=2)
        ).mine(dataset),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Pruning ablation on Adult (age, hours, capital-gain, occupation,"
        " sex)",
        f"{'variant':<16}{'partitions':>12}{'pruned':>9}{'patterns':>10}"
        f"{'meaningless':>13}",
    ]
    for name, (result, census) in ablation_runs.items():
        lines.append(
            f"{name:<16}{result.stats.partitions_evaluated:>12}"
            f"{result.stats.spaces_pruned:>9}{len(result.patterns):>10}"
            f"{census.n_meaningless:>13}"
        )
    report("ablation_pruning", "\n".join(lines))

    full, _ = ablation_runs["full"]
    np_run, np_census = ablation_runs["np"]
    # NP evaluates at least as many partitions and keeps more patterns
    assert (
        np_run.stats.partitions_evaluated
        >= full.stats.partitions_evaluated
    )
    assert len(np_run.patterns) >= len(full.patterns)

    # disabling the optimistic estimate cannot reduce work
    no_oe, _ = ablation_runs["no-optimistic"]
    assert (
        no_oe.stats.partitions_evaluated
        >= full.stats.partitions_evaluated
    )

    # the full configuration's output is the cleanest
    __, full_census = ablation_runs["full"]
    assert full_census.n_meaningless <= np_census.n_meaningless
