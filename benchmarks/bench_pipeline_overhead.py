"""Pipeline dispatch overhead vs the hand-inlined rule sequence.

ISSUE 3 replaced the inlined prune-rule sequences (search engine,
SDAD-CS, parallel workers, STUCCO) with one ``PruningPipeline``.  The
pipeline adds per-candidate machinery — an ``EvaluationContext``, rule
dispatch, hit counters, ``perf_counter`` timing — that the old code did
not pay.  This bench bounds that cost: the added per-candidate overhead,
scaled by the number of candidates a real depth-3 Adult run evaluates,
must stay under 5% of that run's end-to-end wall time.
"""

from __future__ import annotations

import time

from repro.core.config import MinerConfig
from repro.core.contrast import ContrastPattern
from repro.core.items import CategoricalItem, Itemset
from repro.core.miner import ContrastSetMiner
from repro.core.optimistic import chi_square_estimate
from repro.core.pipeline import (
    EvaluationContext,
    PruningPipeline,
    chi2_critical,
)
from repro.core.pruning import (
    expected_count_prunes,
    minimum_deviation_prunes,
    redundant_against_subset,
)
from repro.dataset.uci import adult

MICRO_ROUNDS = 2000


def _make_pattern(counts, attrs):
    itemset = Itemset([CategoricalItem(a, "x") for a in attrs])
    return ContrastPattern(
        itemset=itemset,
        counts=tuple(counts),
        group_sizes=(1000, 1000),
        group_labels=("g0", "g1"),
        level=len(attrs),
    )


def _workload():
    """Representative candidates: survivors run every rule; the pruned
    ones exit at different depths, like a real level's mix."""
    survivor = _make_pattern((700, 80), ("a", "b"))
    subset = _make_pattern((720, 150), ("a",))
    return [
        (survivor, (subset,)),          # survives all six rules
        (_make_pattern((40, 45), ("c", "d")), ()),   # min deviation
        (_make_pattern((9, 3), ("e", "f")), ()),     # expected count
        (_make_pattern((700, 90), ("a", "g")),
         (_make_pattern((710, 95), ("a",)),)),       # redundant
    ]


def _time_pipeline(workload, config) -> float:
    pipeline = PruningPipeline(config)
    start = time.perf_counter()
    for _ in range(MICRO_ROUNDS):
        for pattern, subsets in workload:
            ctx = EvaluationContext(
                key=pattern.itemset,
                config=config,
                alpha=config.alpha,
                level=pattern.level,
                itemset=pattern.itemset,
                pattern=pattern,
                subset_patterns=subsets,
            )
            pipeline.evaluate(ctx)
    return time.perf_counter() - start


def _time_inlined(workload, config) -> float:
    """The PR-2-style sequence: same rule maths, no pipeline machinery."""
    start = time.perf_counter()
    for _ in range(MICRO_ROUNDS):
        for pattern, subsets in workload:
            counts = pattern.counts
            sizes = pattern.group_sizes
            if not any(counts):
                continue
            if minimum_deviation_prunes(counts, sizes, config.delta):
                continue
            if expected_count_prunes(
                counts, sizes, config.min_expected_count
            ):
                continue
            critical = chi2_critical(config.alpha, len(counts) - 1)
            if chi_square_estimate(counts, sizes) < critical:
                continue
            if any(
                redundant_against_subset(pattern, s, config.alpha)
                for s in subsets
            ):
                continue
    return time.perf_counter() - start


def test_pipeline_overhead_under_five_percent(report):
    config = MinerConfig(max_tree_depth=3)
    workload = _workload()

    # warm caches (chi2_critical lru, numpy) before timing either path
    _time_pipeline(workload, config)
    _time_inlined(workload, config)

    pipeline_s = min(_time_pipeline(workload, config) for _ in range(3))
    inlined_s = min(_time_inlined(workload, config) for _ in range(3))
    n_micro = MICRO_ROUNDS * len(workload)
    per_candidate = max(0.0, pipeline_s - inlined_s) / n_micro

    # end-to-end depth-3 Adult run: how many candidates actually flow
    # through the pipeline, and how long does the whole mine take?
    dataset = adult(scale=0.5)
    start = time.perf_counter()
    result = ContrastSetMiner(config).mine(dataset)
    end_to_end_s = time.perf_counter() - start
    stats = result.stats
    n_candidates = (
        stats.prune_rule_checks.get("empty", 0) + stats.prune_table_checks
    )

    overhead_s = per_candidate * n_candidates
    fraction = overhead_s / end_to_end_s
    report(
        "pipeline_overhead",
        f"Pipeline dispatch overhead (Adult scale=0.5, depth 3):\n"
        f"  micro: {n_micro} candidates  "
        f"pipeline {pipeline_s * 1e3:7.1f} ms  "
        f"inlined {inlined_s * 1e3:7.1f} ms  "
        f"-> {per_candidate * 1e6:.2f} us/candidate\n"
        f"  end-to-end: {end_to_end_s * 1e3:7.1f} ms, "
        f"{n_candidates} pipeline evaluations\n"
        f"  projected overhead: {overhead_s * 1e3:.1f} ms "
        f"({fraction:.2%} of end-to-end)",
    )

    assert result.patterns  # the run did real work
    assert fraction < 0.05, (
        f"pipeline overhead {fraction:.2%} exceeds the 5% budget"
    )
