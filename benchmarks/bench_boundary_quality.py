"""Boundary-recovery quality on the simulated datasets (Figure 3,
quantified).

The simulated datasets have known true boundaries; this bench scores each
algorithm on (a) recovering them and (b) not inventing spurious ones —
the numeric version of the paper's "MVD misses this splitting point" /
"Cortana finds a bin ... which seems meaningless" commentary.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_algorithm
from repro.analysis.boundaries import boundary_report
from repro.core.config import MinerConfig
from repro.dataset import synthetic

CONFIG = MinerConfig(k=30, interest_measure="surprising")
TOLERANCE = 0.05


@pytest.fixture(scope="module")
def workloads():
    return {
        # dataset, attribute, planted boundaries on that attribute
        "simulated1": (
            synthetic.simulated_dataset_1(),
            "Attribute 1",
            [0.5],
        ),
        "simulated3": (
            synthetic.simulated_dataset_3(),
            "Attribute 1",
            [0.5],
        ),
        "simulated4": (
            synthetic.simulated_dataset_4(),
            "Attribute 1",
            [0.25, 0.75],
        ),
    }


def test_boundary_quality(benchmark, workloads, report):
    algorithms = ("sdad", "mvd", "entropy", "cortana")

    def run():
        out = {}
        for name, (dataset, attribute, truth) in workloads.items():
            values = dataset.column(attribute)
            value_range = (float(values.min()), float(values.max()))
            for algo in algorithms:
                result = run_algorithm(algo, dataset, CONFIG)
                out[(name, algo)] = boundary_report(
                    result.patterns,
                    attribute,
                    truth,
                    TOLERANCE,
                    value_range,
                )
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Boundary recovery on simulated data (tolerance {TOLERANCE})",
        "",
    ]
    for (name, algo), rep in reports.items():
        lines.append(f"{name:<12} {algo:<9} {rep.formatted(TOLERANCE)}")
    report("boundary_quality", "\n".join(lines))

    # SDAD-CS recovers every planted boundary within tolerance...
    for name in workloads:
        rep = reports[(name, "sdad")]
        assert rep.recovered_all, (name, rep)
        assert rep.worst_error <= TOLERANCE, (name, rep)

    # ...with few spurious cuts on the single-boundary datasets
    assert reports[("simulated1", "sdad")].n_spurious == 0
    assert reports[("simulated3", "sdad")].n_spurious == 0

    # the paper's MVD observation on Simulated Dataset 1: correlation
    # chasing produces extra structure (spurious cuts) there
    assert reports[("simulated1", "mvd")].n_spurious >= 1
