"""Shared fixtures and reporting helpers for the benchmark suite.

Each bench regenerates one table or figure of the paper.  Results are
printed and also written to ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md
can reference stable artifacts.

Dataset scales: the paper ran full UCI sizes on a workstation; the benches
default to reduced row counts for the very large datasets (Shuttle, Census
Income, Covtype, Credit Card) to keep the suite laptop-friendly — group
ratios are preserved (DESIGN.md substitution #1).  Pass
``--bench-scale-full`` to pytest to use Table 2 sizes everywhere.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale-full",
        action="store_true",
        default=False,
        help="run the Table 4/5/6 benches at full Table 2 dataset sizes",
    )


@pytest.fixture(scope="session")
def full_scale(request) -> bool:
    return request.config.getoption("--bench-scale-full")


@pytest.fixture(scope="session")
def report():
    """Callable writing a named report to stdout and benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        print(f"\n{text}\n", file=sys.stderr)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _write


# Per-dataset bench settings: (scale when not --bench-scale-full, tree depth)
BENCH_DATASETS: dict[str, tuple[float, int]] = {
    "adult": (1.0, 2),
    "spambase": (0.25, 2),
    "breast_cancer": (1.0, 2),
    "mammography": (1.0, 2),
    "transfusion": (1.0, 2),
    "shuttle": (0.05, 2),
    "credit_card": (0.05, 2),
    "census_income": (0.02, 2),
    "ionosphere": (1.0, 2),
    "covtype": (0.01, 2),
}


@pytest.fixture(scope="session")
def bench_dataset(full_scale):
    """Loader for a UCI stand-in at bench scale."""
    from repro.dataset import uci

    cache: dict[str, object] = {}

    def _load(name: str):
        if name not in cache:
            scale, _ = BENCH_DATASETS[name]
            cache[name] = uci.load(
                name, scale=1.0 if full_scale else scale
            )
        return cache[name]

    return _load


@pytest.fixture(scope="session")
def bench_depth():
    def _depth(name: str) -> int:
        return BENCH_DATASETS[name][1]

    return _depth
