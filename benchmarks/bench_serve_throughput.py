"""Serving throughput: /match and /patterns latency + req/s on Adult.

Measures the online layer end to end — real HTTP over loopback against a
:class:`~repro.serve.PatternServer` (ThreadingHTTPServer, keep-alive
connections), the way a monitoring dashboard would hit it:

* ``POST /match`` point lookups for a rotating set of Adult records
  (these are answered from the in-memory index, no cache involved);
* ``GET /runs/<id>/patterns`` declarative queries with a warm LRU cache
  (every request after the first per shape is a cache hit).

Reported per workload: requests/second and p50/p99 latency.  The store →
server path is exercised for real (the run is persisted and re-loaded,
not handed over in memory).

Run standalone:  PYTHONPATH=src python benchmarks/bench_serve_throughput.py
The committed ``BENCH_serve.json`` (schema v2) is owned by
``bench_serve_slo.py``, which folds this bench's closed-loop numbers
into its ``throughput`` section.  Under pytest the bench runs as a
smoke check with CI-floor assertions only.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
from pathlib import Path
from time import perf_counter

from repro import ContrastSetMiner, MinerConfig
from repro.dataset import uci
from repro.serve import PatternServer, PatternStore, ServeConfig
from repro.serve.index import row_from_dataset

N_CLIENT_THREADS = 4
MATCH_REQUESTS = 4000
QUERY_REQUESTS = 4000
QUERY_SHAPES = [
    "",
    "limit=5",
    "min_diff=0.1&limit=10",
    "sort=purity_ratio&limit=5",
    "min_pr=0.3&sort=support_difference",
]


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _hammer(host, port, requests, n_requests):
    """Issue ``n_requests`` over keep-alive connections; return latencies."""
    latencies: list[list[float]] = [[] for _ in range(N_CLIENT_THREADS)]
    per_thread = n_requests // N_CLIENT_THREADS
    errors: list = []

    def client(slot: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for i in range(per_thread):
                method, path, body = requests[(slot + i) % len(requests)]
                started = perf_counter()
                conn.request(method, path, body=body)
                response = conn.getresponse()
                response.read()
                latencies[slot].append(perf_counter() - started)
                if response.status >= 500:
                    errors.append(response.status)
                    return
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(N_CLIENT_THREADS)
    ]
    started = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - started
    assert not errors, f"server returned 5xx: {errors}"
    flat = [x for per in latencies for x in per]
    return flat, elapsed


def _workload_line(name, latencies, elapsed):
    n = len(latencies)
    return (
        f"{name:<10} {n:6d} requests  {n / elapsed:9.0f} req/s  "
        f"p50 {_percentile(latencies, 0.50) * 1e3:7.3f} ms  "
        f"p99 {_percentile(latencies, 0.99) * 1e3:7.3f} ms"
    )


def run_bench() -> tuple[str, dict[str, float]]:
    dataset = uci.adult()
    result = ContrastSetMiner(MinerConfig(max_tree_depth=2)).mine(dataset)

    with tempfile.TemporaryDirectory() as tmp:
        store = PatternStore(Path(tmp) / "store")
        run_id = store.put(result, tags=("bench",))
        server = PatternServer(store, ServeConfig(port=0, cache_size=256))
        server.publish_run(run_id)
        host, port = server.start()
        try:
            match_requests = [
                (
                    "POST",
                    "/match",
                    json.dumps({"row": row_from_dataset(dataset, i)}),
                )
                for i in range(0, dataset.n_rows, max(1, dataset.n_rows // 64))
            ]
            query_requests = [
                ("GET", f"/runs/{run_id}/patterns?{shape}".rstrip("?"), None)
                for shape in QUERY_SHAPES
            ]
            # warm-up: touch every distinct request once (fills the LRU)
            _hammer(host, port, match_requests, len(match_requests))
            _hammer(host, port, query_requests, len(query_requests))

            match_lat, match_s = _hammer(
                host, port, match_requests, MATCH_REQUESTS
            )
            query_lat, query_s = _hammer(
                host, port, query_requests, QUERY_REQUESTS
            )

            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/metrics")
            metrics = json.loads(conn.getresponse().read())
            conn.close()
        finally:
            server.stop()

    lines = [
        "Serving throughput on Adult "
        f"({dataset.n_rows} rows, {len(result.patterns)} patterns, "
        f"run {run_id})",
        f"{N_CLIENT_THREADS} keep-alive client threads, loopback HTTP",
        "",
        _workload_line("match", match_lat, match_s),
        _workload_line("query", query_lat, query_s),
        "",
        f"query cache: {metrics['query_cache']['hits']} hits / "
        f"{metrics['query_cache']['misses']} misses",
        f"server-side mean: match "
        f"{metrics['endpoints']['match']['mean_ms']:.3f} ms, patterns "
        f"{metrics['endpoints']['patterns']['mean_ms']:.3f} ms",
    ]
    stats = {
        "n_rows": dataset.n_rows,
        "n_patterns": len(result.patterns),
        "client_threads": N_CLIENT_THREADS,
        "match_rps": round(len(match_lat) / match_s),
        "match_p50_ms": round(_percentile(match_lat, 0.50) * 1e3, 3),
        "match_p99_ms": round(_percentile(match_lat, 0.99) * 1e3, 3),
        "query_rps": round(len(query_lat) / query_s),
        "query_p50_ms": round(_percentile(query_lat, 0.50) * 1e3, 3),
        "query_p99_ms": round(_percentile(query_lat, 0.99) * 1e3, 3),
        "query_cache_hits": metrics["query_cache"]["hits"],
        "query_cache_misses": metrics["query_cache"]["misses"],
    }
    return "\n".join(lines), stats


def test_serve_throughput(report):
    text, stats = run_bench()
    report("bench_serve_throughput", text)
    # CI floor far below the committed-artifact figure (>= 1k req/s on a
    # warm workstation): shared runners are slow, but an order-of-magnitude
    # collapse still fails the job.
    assert stats["match_rps"] >= 300, stats
    assert stats["query_rps"] >= 300, stats


def main() -> None:
    text, stats = run_bench()
    print(text)
    out = Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "bench_serve_throughput.txt").write_text(text + "\n")
    print(f"\nwrote {out / 'bench_serve_throughput.txt'}")
    print("(BENCH_serve.json is refreshed by bench_serve_slo.py)")


if __name__ == "__main__":
    main()
