"""Ablation: pattern-set diversity — quantifying the paper's redundancy
critique.

The paper argues qualitatively that Cortana's top-k lists are packed with
redundant variants while SDAD-CS "finds fewer and more meaningful
itemsets".  This bench measures it: mean pairwise Jaccard overlap of the
covered row sets, attribute diversity, and total row coverage of each
algorithm's top-10 on Adult and Simulated Dataset 3.
"""

from __future__ import annotations

import pytest

from repro.analysis import diversity_report, run_algorithm
from repro.core.config import MinerConfig
from repro.dataset import synthetic, uci

ALGORITHMS = ("sdad", "sdad_np", "cortana", "entropy")


@pytest.fixture(scope="module")
def workloads():
    return {
        "adult(age,hours)": uci.adult().project(
            ["age", "hours-per-week"]
        ),
        "simulated3": synthetic.simulated_dataset_3(),
    }


def test_ablation_diversity(benchmark, workloads, report):
    config = MinerConfig(k=50, max_tree_depth=2)
    results = benchmark.pedantic(
        lambda: {
            (ds_name, algo): diversity_report(
                run_algorithm(algo, dataset, config).top(10), dataset
            )
            for ds_name, dataset in workloads.items()
            for algo in ALGORITHMS
        },
        rounds=1,
        iterations=1,
    )

    lines = [
        "Diversity of each algorithm's top-10 patterns",
        f"{'dataset':<20}{'algorithm':<12}{'jaccard':>9}"
        f"{'attr-div':>10}{'coverage':>10}{'n':>4}",
    ]
    for (ds_name, algo), rep in results.items():
        lines.append(
            f"{ds_name:<20}{algo:<12}{rep.mean_jaccard:>9.2f}"
            f"{rep.attribute_diversity:>10.2f}{rep.coverage:>10.2f}"
            f"{rep.n_patterns:>4}"
        )
    report("ablation_diversity", "\n".join(lines))

    # the paper's claim, quantified: the pruned SDAD-CS output overlaps
    # no more than Cortana's on both workloads
    for ds_name in workloads:
        sdad = results[(ds_name, "sdad")]
        cortana = results[(ds_name, "cortana")]
        assert sdad.mean_jaccard <= cortana.mean_jaccard + 0.05, ds_name
