"""Table 3: the top Cortana patterns on Adult and their meaningfulness.

The paper runs Cortana at depth 2 on the full Adult attribute set, lists
the top-5 contrasts — all anchored on ``occupation = Prof-specialty`` —
and shows that most are *not meaningful*: their supports match the
expected supports under independence (itemsets 1, 4, 5), or they are
functionally redundant (itemset 2, the fnlwgt near-full-range bin).  Only
one of the top five survives SDAD-CS's filters.

The bench reproduces the protocol: run the Cortana baseline, print the
top-5 with the paper's expected-support analysis, classify them with the
meaningfulness filters, and assert that at most a couple survive.
"""

from __future__ import annotations

from repro.analysis import pattern_table, run_algorithm
from repro.core.config import MinerConfig
from repro.core.contrast import evaluate_itemset
from repro.core.meaningful import classify_patterns
from repro.dataset import uci


def _expected_supports(pattern, dataset):
    """Expected per-group supports if the pattern's items occurred
    independently (the 'Expected Supports' block of Table 3)."""
    expected = [1.0] * dataset.n_groups
    for item in pattern.itemset:
        from repro.core.items import Itemset

        single = evaluate_itemset(Itemset([item]), dataset)
        expected = [e * s for e, s in zip(expected, single.supports)]
    return expected


def test_table3_cortana_top_patterns(benchmark, report):
    dataset = uci.adult()

    result = benchmark.pedantic(
        lambda: run_algorithm(
            "cortana", dataset, MinerConfig(k=100, max_tree_depth=2)
        ),
        rounds=1,
        iterations=1,
    )
    top5 = result.top(5)
    census = classify_patterns(top5, dataset)

    lines = [
        "Table 3 reproduction: top Cortana patterns on Adult",
        "",
        pattern_table(top5, title="Top 5 contrasts found by Cortana"),
        "",
        "Expected supports under independence:",
    ]
    for i, pattern in enumerate(top5, 1):
        expected = _expected_supports(pattern, dataset)
        observed = ", ".join(f"{s:.2f}" for s in pattern.supports)
        exp_text = ", ".join(f"{e:.2f}" for e in expected)
        flags = []
        if census.redundant[i - 1]:
            flags.append("redundant")
        if census.unproductive[i - 1]:
            flags.append("unproductive")
        if census.not_independently_productive[i - 1]:
            flags.append("not independently productive")
        verdict = "MEANINGFUL" if census.meaningful[i - 1] else (
            "meaningless: " + ", ".join(flags)
        )
        lines.append(
            f"  {i}. observed=({observed}) expected=({exp_text}) "
            f"-> {verdict}"
        )
    report("table3_top_patterns", "\n".join(lines))

    assert len(top5) == 5
    # the paper: of the top 5, only one would be displayed by SDAD-CS
    assert census.n_meaningful <= 2
    # multi-item patterns among the top must include at least one whose
    # observed supports sit on the independence product (the Table 3
    # phenomenon: conjunction adds nothing)
    multis = [p for p in top5 if len(p.itemset) >= 2]
    if multis:
        near_expected = 0
        for pattern in multis:
            expected = _expected_supports(pattern, dataset)
            if all(
                abs(o - e) < 0.05
                for o, e in zip(pattern.supports, expected)
            ):
                near_expected += 1
        assert near_expected >= 1
