"""Streaming extension: drift-detection latency and throughput.

The paper's closing motivation is timely feedback ("blocking any
additional processing on that specific equipment ... in a timely
manner").  This bench measures, for the sliding-window streaming miner:

* **latency** — how many batches after a planted regime change the new
  contrast is reported as emerged;
* **throughput** — rows/second through update+refresh.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Attribute, MinerConfig, Schema
from repro.streaming import StreamingContrastMiner

SCHEMA = Schema.of(
    [
        Attribute.continuous("temp"),
        Attribute.categorical("lane", ["L1", "L2", "L3"]),
    ]
)
GROUPS = ("pass", "fail")
BATCH = 1000


def _batch(rng, drifted):
    lane = rng.integers(0, 3, BATCH)
    temp = rng.normal(250.0, 3.0, BATCH)
    fail = rng.uniform(0, 1, BATCH) < 0.05
    if drifted:
        hot = (lane == 2) & (rng.uniform(0, 1, BATCH) < 0.8)
        temp = np.where(hot, rng.normal(258.0, 1.5, BATCH), temp)
        fail = fail | (hot & (rng.uniform(0, 1, BATCH) < 0.6))
    return {"temp": temp, "lane": lane}, fail.astype(np.int64)


def _run_stream(seed=123, drift_at=5, n_batches=10):
    rng = np.random.default_rng(seed)
    miner = StreamingContrastMiner(
        SCHEMA,
        GROUPS,
        config=MinerConfig(k=10, max_tree_depth=1),
        window_size=3000,
        refresh_every=BATCH,
        min_rows=BATCH,
    )
    first_emerged = None
    rows = 0
    start = time.perf_counter()
    for batch_no in range(1, n_batches + 1):
        update = miner.update(*_batch(rng, batch_no >= drift_at))
        rows += BATCH
        if (
            first_emerged is None
            and batch_no >= drift_at
            and update.emerged
        ):
            first_emerged = batch_no
    elapsed = time.perf_counter() - start
    return first_emerged, rows / elapsed, miner


def test_streaming_drift_latency(benchmark, report):
    first_emerged, throughput, miner = benchmark.pedantic(
        _run_stream, rounds=1, iterations=1
    )
    drift_at = 5
    latency = None if first_emerged is None else first_emerged - drift_at

    report(
        "streaming_drift",
        "Streaming drift detection (window 3000, refresh each 1000 rows)\n"
        f"  drift injected at batch {drift_at}\n"
        f"  contrast emerged at batch {first_emerged} "
        f"(latency {latency} batches)\n"
        f"  throughput: {throughput:,.0f} rows/s\n"
        f"  final contrasts: {len(miner.current_patterns)}",
    )

    assert first_emerged is not None
    assert latency <= 2  # timely feedback: within two batches
    assert throughput > 1_000
    # the final window names the planted path
    text = " ".join(str(p.itemset) for p in miner.current_patterns)
    assert "lane = L3" in text or "temp" in text
