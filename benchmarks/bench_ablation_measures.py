"""Ablation: interest measures and split statistics (Section 4.2 +
DESIGN.md design-decision list).

* **Interest measures** — mining Adult's (age, hours) with support
  difference, PR, and the Surprising Measure: PR favours purer but
  smaller bins, support difference favours bigger blunter bins, and the
  Surprising Measure sits between (the paper's argument for Eq. 13).
* **Merge alpha** — a stricter merge test keeps more, finer regions.
"""

from __future__ import annotations

import pytest

from repro.core.config import MinerConfig
from repro.core.items import Itemset
from repro.core.miner import ContrastSetMiner
from repro.core.sdad import sdad_cs
from repro.dataset import uci

FOCUS = ["age", "hours-per-week"]


@pytest.fixture(scope="module")
def adult():
    return uci.adult()


@pytest.fixture(scope="module")
def measure_runs(adult):
    out = {}
    for measure in ("support_difference", "purity_ratio", "surprising"):
        config = MinerConfig(
            k=40, interest_measure=measure, max_tree_depth=2
        )
        result = ContrastSetMiner(config).mine(adult, attributes=FOCUS)
        out[measure] = result
    return out


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def test_ablation_interest_measures(benchmark, measure_runs, report):
    benchmark.pedantic(
        lambda: ContrastSetMiner(
            MinerConfig(k=20, interest_measure="surprising",
                        max_tree_depth=1)
        ).mine(uci.adult(), attributes=["age"]),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Interest-measure ablation on Adult (age, hours-per-week)",
        f"{'measure':<22}{'patterns':>9}{'mean diff':>11}{'mean PR':>9}"
        f"{'mean cover':>12}",
    ]
    stats = {}
    for measure, result in measure_runs.items():
        top = result.top(10)
        stats[measure] = {
            "diff": _mean(p.support_difference for p in top),
            "pr": _mean(p.purity_ratio for p in top),
            "cover": _mean(p.total_count for p in top),
        }
        lines.append(
            f"{measure:<22}{len(result.patterns):>9}"
            f"{stats[measure]['diff']:>11.2f}"
            f"{stats[measure]['pr']:>9.2f}"
            f"{stats[measure]['cover']:>12.0f}"
        )
    report("ablation_measures", "\n".join(lines))

    # PR-optimised mining yields purer top patterns...
    assert stats["purity_ratio"]["pr"] >= stats["support_difference"]["pr"]
    # ...while difference-optimised mining yields bigger coverage
    assert (
        stats["support_difference"]["cover"]
        >= stats["purity_ratio"]["cover"]
    )
    # the Surprising Measure keeps purity above plain difference
    assert stats["surprising"]["pr"] >= stats["support_difference"]["pr"]


def test_ablation_split_statistic(benchmark, adult, report):
    """Median vs mean split (Section 4.1: "we use median").

    The mean is pulled by skew (Adult's age is right-skewed), shifting
    boundaries away from the balanced split; both must still locate the
    planted contrasts.
    """

    def run(statistic):
        config = MinerConfig(
            k=40, split_statistic=statistic, max_tree_depth=1
        )
        return ContrastSetMiner(config).mine(adult, attributes=FOCUS)

    median_run = benchmark.pedantic(
        lambda: run("median"), rounds=1, iterations=1
    )
    mean_run = run("mean")

    def summary(result):
        top = result.top(6)
        return (
            f"{len(result.patterns)} patterns, best diff "
            f"{max(p.support_difference for p in top):.2f}"
        )

    report(
        "ablation_split_statistic",
        "Split-statistic ablation on Adult (age, hours-per-week):\n"
        f"  median: {summary(median_run)}\n"
        f"  mean:   {summary(mean_run)}",
    )
    assert median_run.patterns and mean_run.patterns
    best_median = max(
        p.support_difference for p in median_run.patterns
    )
    best_mean = max(p.support_difference for p in mean_run.patterns)
    # both locate strong contrasts; neither collapses
    assert best_median > 0.3 and best_mean > 0.3


def test_ablation_merge_alpha(benchmark, adult, report):
    def run(alpha):
        config = MinerConfig(k=40, merge_alpha=alpha, max_tree_depth=1)
        return sdad_cs(adult, Itemset(), ["age"], config)

    strict = benchmark.pedantic(
        lambda: run(0.5), rounds=1, iterations=1
    )
    loose = run(0.001)

    report(
        "ablation_merge_alpha",
        "Merge-alpha ablation on Adult age:\n"
        f"  merge_alpha=0.5   -> {len(strict.patterns)} regions\n"
        f"  merge_alpha=0.001 -> {len(loose.patterns)} regions\n"
        "(a stricter similarity requirement — higher alpha — blocks "
        "merges and keeps finer regions)",
    )
    # higher merge_alpha = easier to call two spaces 'different' =>
    # fewer merges => at least as many regions
    assert len(strict.patterns) >= len(loose.patterns)
