"""Ablation: bitmap-index counting vs boolean-mask counting.

Related work [29] (SciCSM) argues bitmap indices speed up contrast-set
counting.  This bench quantifies the trade-off on our substrate: per-
itemset group counting via packed bitmaps vs the boolean-mask path, over
the categorical attributes of the manufacturing dataset.
"""

from __future__ import annotations

import time

import pytest

from repro.core.items import CategoricalItem, Itemset
from repro.dataset.bitmap import BitmapIndex
from repro.dataset.manufacturing import manufacturing


@pytest.fixture(scope="module")
def workload():
    dataset = manufacturing(n_population=4000, n_failed=600)
    attributes = dataset.schema.categorical_names[:20]
    index = BitmapIndex(dataset, attributes)
    itemsets = []
    for i, a in enumerate(attributes):
        for b in attributes[i + 1:][:3]:
            attr_a = dataset.attribute(a)
            attr_b = dataset.attribute(b)
            itemsets.append(
                Itemset(
                    [
                        CategoricalItem(a, attr_a.categories[0]),
                        CategoricalItem(b, attr_b.categories[0]),
                    ]
                )
            )
    return dataset, index, itemsets


def _mask_counts(dataset, itemsets):
    return [
        dataset.group_counts(itemset.cover(dataset))
        for itemset in itemsets
    ]


def _bitmap_counts(index, itemsets):
    return [index.group_counts(itemset) for itemset in itemsets]


def test_bitmap_counting_correct_and_timed(benchmark, workload, report):
    dataset, index, itemsets = workload

    bitmap_results = benchmark.pedantic(
        lambda: _bitmap_counts(index, itemsets), rounds=3, iterations=1
    )

    start = time.perf_counter()
    mask_results = _mask_counts(dataset, itemsets)
    mask_time = time.perf_counter() - start
    start = time.perf_counter()
    _bitmap_counts(index, itemsets)
    bitmap_time = time.perf_counter() - start

    for bitmap_row, mask_row in zip(bitmap_results, mask_results):
        assert list(bitmap_row) == list(mask_row)

    raw_bytes = sum(
        dataset.column(a).nbytes
        for a in dataset.schema.categorical_names[:20]
    )
    report(
        "ablation_bitmap",
        "Bitmap vs mask counting "
        f"({len(itemsets)} itemsets, {dataset.n_rows} rows):\n"
        f"  mask path:   {mask_time * 1e3:8.1f} ms\n"
        f"  bitmap path: {bitmap_time * 1e3:8.1f} ms\n"
        f"  index size:  {index.memory_bytes()} bytes vs "
        f"{raw_bytes} bytes of raw code columns",
    )

    # the index must be far smaller than the raw columns (bit vs int64)
    assert index.memory_bytes() < raw_bytes


def test_end_to_end_backend_speedup(benchmark, report):
    """Whole-miner ablation: MinerConfig(counting_backend=...) on Adult.

    Mines the categorical attributes of the Adult stand-in with the mask
    and bitmap backends and checks the bitmap path is (a) byte-identical
    and (b) at least ~2x faster on this categorical-heavy workload (the
    ISSUE 2 acceptance target; the LRU context cache does the heavy
    lifting at depth 3).
    """
    from repro.core.config import MinerConfig
    from repro.core.miner import ContrastSetMiner
    from repro.dataset.uci import adult

    dataset = adult(scale=5.0)
    categorical = [
        n for n in dataset.schema.names
        if dataset.attribute(n).is_categorical
    ]

    def run(backend):
        config = MinerConfig(max_tree_depth=3, counting_backend=backend)
        return ContrastSetMiner(config).mine(
            dataset, attributes=categorical
        )

    bitmap_result = benchmark.pedantic(
        lambda: run("bitmap"), rounds=3, iterations=1
    )

    start = time.perf_counter()
    mask_result = run("mask")
    mask_time = time.perf_counter() - start
    start = time.perf_counter()
    bitmap_result = run("bitmap")
    bitmap_time = time.perf_counter() - start

    assert [(p.itemset, p.counts) for p in mask_result.patterns] == [
        (p.itemset, p.counts) for p in bitmap_result.patterns
    ]

    stats = bitmap_result.stats
    speedup = mask_time / bitmap_time
    report(
        "ablation_bitmap_end_to_end",
        "End-to-end mining, Adult categorical attributes "
        f"({dataset.n_rows} rows, depth 3):\n"
        f"  mask backend:   {mask_time * 1e3:8.1f} ms\n"
        f"  bitmap backend: {bitmap_time * 1e3:8.1f} ms "
        f"({speedup:.2f}x)\n"
        f"  bitmap counters: {stats.count_calls} count calls, "
        f"cache {stats.cache_hits} hits / {stats.cache_misses} misses "
        f"(hit rate {stats.cache_hit_rate:.0%})",
    )

    # identical patterns, materially faster (2x target, 1.5x floor to
    # absorb machine noise)
    assert speedup > 1.5
