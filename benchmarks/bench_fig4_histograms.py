"""Figure 4: equal-frequency support/purity histograms on Adult.

Reproduces the two panels of Figure 4 — per-bin group supports and purity
ratio for ``age`` and ``hours-per-week`` between the Doctorate and
Bachelors groups — and asserts the qualitative reading the paper gives:

* ages 19-26 contain essentially no Doctorates (PR ~ 1);
* the middle age band (27-45) has similar supports (low PR);
* supports cross over with increasing age in favour of Doctorates;
* the long-hours tail (50+) is Doctorate-dominated.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import supports_histogram
from repro.baselines.discretizers import Binning, equal_frequency_cuts
from repro.dataset import uci


def _histogram(dataset, attribute, n_bins=10):
    values = dataset.column(attribute)
    cuts = equal_frequency_cuts(values, n_bins)
    binning = Binning(
        attribute, cuts, float(values.min()), float(values.max())
    )
    ids = binning.assign(values)
    supports = {label: [] for label in dataset.group_labels}
    purity = []
    for b in range(binning.n_bins):
        per_group = dataset.supports(ids == b)
        for label, supp in zip(dataset.group_labels, per_group):
            supports[label].append(float(supp))
        hi, lo = max(per_group), min(per_group)
        purity.append(1.0 - (lo / hi) if hi > 0 else 0.0)
    return binning, supports, purity


def test_fig4_age_and_hours(benchmark, report):
    dataset = uci.adult()

    def run():
        return (
            _histogram(dataset, "age"),
            _histogram(dataset, "hours-per-week"),
        )

    (age_bin, age_supp, age_pr), (hr_bin, hr_supp, hr_pr) = (
        benchmark.pedantic(run, rounds=3, iterations=1)
    )

    text = "\n\n".join(
        [
            supports_histogram(
                age_bin.labels(),
                age_supp,
                age_pr,
                title="Figure 4a: Age supports and purity ratio",
            ),
            supports_histogram(
                hr_bin.labels(),
                hr_supp,
                hr_pr,
                title="Figure 4b: Hours-per-week supports and purity ratio",
            ),
        ]
    )
    report("fig4_histograms", text)

    doc = "Doctorate"
    bach = "Bachelors"

    # youngest bin: PR ~ 1 in favour of Bachelors
    assert age_pr[0] > 0.95
    assert age_supp[doc][0] < 0.01

    # middle bins: low purity (similar supports)
    mid = len(age_pr) // 2
    assert min(age_pr[mid - 1: mid + 1]) < 0.7

    # oldest bins: Doctorate support exceeds Bachelors
    assert age_supp[doc][-1] > age_supp[bach][-1]
    assert age_supp[doc][-2] > age_supp[bach][-2]

    # long-hours tail dominated by Doctorates
    assert hr_supp[doc][-1] > 2 * hr_supp[bach][-1]
    assert hr_pr[-1] > 0.6
