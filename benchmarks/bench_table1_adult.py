"""Table 1: contrast sets for the Adult dataset (Doctorate vs Bachelors).

Runs the five pipelines of Table 1 on the ``age`` / ``hours-per-week``
attributes — SDAD-CS optimising PR, SDAD-CS optimising support
difference, the Cortana-style baseline, Fayyad entropy binning, and MVD —
and prints each algorithm's contrasts in the table's format.

Shape assertions (not absolute numbers — the substrate is synthetic):

* SDAD-CS with PR isolates a young band with zero Doctorate support and
  an old band favouring Doctorates (rows 1-2 of Table 1);
* SDAD-CS with PR finds an {age x hours} contrast purer than the
  corresponding marginals (row 5 — the multivariate interaction);
* SDAD-CS with support difference / Cortana find wider, blunter bins.
"""

from __future__ import annotations

from repro.analysis import pattern_table, run_algorithm
from repro.core.config import MinerConfig
from repro.core.meaningful import filter_meaningful
from repro.core.miner import ContrastSetMiner
from repro.dataset import uci

FOCUS = ["age", "hours-per-week"]


def _mine_sdad(dataset, measure):
    config = MinerConfig(k=30, interest_measure=measure, max_tree_depth=2)
    result = ContrastSetMiner(config).mine(dataset, attributes=FOCUS)
    return filter_meaningful(result.patterns, dataset)


def test_table1_adult_contrasts(benchmark, report):
    dataset = uci.adult()
    focus_view = dataset.project(FOCUS)

    def run():
        return {
            "sdad_pr": _mine_sdad(dataset, "purity_ratio"),
            "sdad_diff": _mine_sdad(dataset, "support_difference"),
            "cortana": run_algorithm(
                "cortana", focus_view, MinerConfig(k=20, max_tree_depth=2)
            ).top(6),
            "entropy": run_algorithm(
                "entropy", focus_view, MinerConfig(k=20, max_tree_depth=1)
            ).top(6),
            "mvd": run_algorithm(
                "mvd", focus_view, MinerConfig(k=20, max_tree_depth=1)
            ).top(6),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = [
        pattern_table(results["sdad_pr"], title="SDAD-CS with PR"),
        pattern_table(
            results["sdad_diff"], title="SDAD-CS with Support Difference"
        ),
        pattern_table(results["cortana"], title="Cortana-style subgroups"),
        pattern_table(results["entropy"], title="Fayyad Entropy binning"),
        pattern_table(results["mvd"], title="MVD"),
    ]
    report(
        "table1_adult",
        "Table 1 reproduction: Adult (Doctorate vs Bachelors)\n\n"
        + "\n\n".join(blocks),
    )

    doc = "Doctorate"
    bach = "Bachelors"

    sdad_pr = results["sdad_pr"]
    assert sdad_pr

    # row-1 analogue: a young age band with ~no Doctorates
    young = [
        p
        for p in sdad_pr
        if p.itemset.attributes == ("age",)
        and p.itemset.item_for("age").interval.hi < 35
    ]
    assert young and min(p.support(doc) for p in young) < 0.02

    # row-2 analogue: an old band favouring Doctorates
    old = [
        p
        for p in sdad_pr
        if p.itemset.attributes == ("age",)
        and p.itemset.item_for("age").interval.lo > 40
    ]
    assert old and all(p.support(doc) > p.support(bach) for p in old)

    # hours tail favours Doctorates
    hours_tail = [
        p
        for p in sdad_pr
        if p.itemset.attributes == ("hours-per-week",)
        and p.itemset.item_for("hours-per-week").interval.lo > 42
    ]
    assert hours_tail and all(
        p.support(doc) > p.support(bach) for p in hours_tail
    )

    # the joint {age x hours} contrast (Table 1 row 5) exists in the raw
    # SDAD output and is purer than the blunter difference-based bins
    config = MinerConfig(k=40, interest_measure="purity_ratio",
                         max_tree_depth=2)
    raw = ContrastSetMiner(config).mine(dataset, attributes=FOCUS)
    joint = [p for p in raw.patterns if len(p.itemset) == 2]
    assert joint
    best_joint = max(joint, key=lambda p: p.purity_ratio)
    assert best_joint.purity_ratio > 0.6
    assert best_joint.dominant_group == doc
