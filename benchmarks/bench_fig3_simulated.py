"""Figure 3 / Sections 5.1-5.4: the four simulated-dataset litmus tests.

For each dataset the bench runs SDAD-CS, MVD, Entropy, and the
Cortana-style baseline, reports the bins each finds, and asserts the
paper's per-dataset claims:

* DS1 — SDAD-CS finds only the Attribute 1 boundary (PR = 1, pure-space
  pruning suppresses everything else); Entropy agrees; MVD splits on the
  correlation structure instead.
* DS2 — no univariate contrast; SDAD-CS and MVD find the interaction;
  Entropy finds nothing.
* DS3 — level-1 contrasts only for SDAD-CS; Cortana additionally reports
  meaningless deeper subgroups.
* DS4 — SDAD-CS isolates the two pure corner boxes; the level-1
  projections are filtered as not independently productive.
"""

from __future__ import annotations

import pytest

from repro.analysis import ascii_scatter, pattern_table, run_algorithm
from repro.core.config import MinerConfig
from repro.core.meaningful import classify_patterns
from repro.dataset import synthetic

CONFIG = MinerConfig(k=30, interest_measure="surprising")


def _mine_all(dataset):
    return {
        name: run_algorithm(name, dataset, CONFIG)
        for name in ("sdad", "mvd", "entropy", "cortana")
    }


def _report_block(results, dataset, title):
    lines = [title, "=" * len(title), ""]
    lines.append(
        ascii_scatter(
            dataset,
            "Attribute 1",
            "Attribute 2",
            patterns=results["sdad"].top(4),
        )
    )
    lines.append("")
    for result in results.values():
        lines.append(
            pattern_table(
                result.top(6),
                title=f"{result.name} ({len(result.patterns)} found)",
            )
        )
        lines.append("")
    return "\n".join(lines)


def test_fig3a_dataset1(benchmark, report):
    dataset = synthetic.simulated_dataset_1()
    results = benchmark.pedantic(
        lambda: _mine_all(dataset), rounds=1, iterations=1
    )
    report(
        "fig3a_simulated1",
        _report_block(results, dataset, "Simulated Dataset 1 (Fig 3a)"),
    )
    # SDAD-CS: only the Attribute 1 boundary, both sides pure
    sdad = results["sdad"].patterns
    assert sdad
    assert all(p.itemset.attributes == ("Attribute 1",) for p in sdad)
    assert all(p.purity_ratio == pytest.approx(1.0) for p in sdad)
    # Entropy finds the same boundary
    entropy_attrs = {
        a for p in results["entropy"].patterns for a in p.itemset.attributes
    }
    assert "Attribute 1" in entropy_attrs
    # MVD's discretization chases the correlation: more/other cuts
    from repro.baselines.mvd import mvd_binning

    binning = mvd_binning(dataset, "Attribute 1")
    assert len(binning.cuts) != 1  # not the single clean boundary


def test_fig3b_dataset2(benchmark, report):
    dataset = synthetic.simulated_dataset_2()
    results = benchmark.pedantic(
        lambda: _mine_all(dataset), rounds=1, iterations=1
    )
    report(
        "fig3b_simulated2",
        _report_block(results, dataset, "Simulated Dataset 2 (Fig 3b)"),
    )
    # SDAD-CS: only 2-attribute boxes (no univariate rule exists)
    sdad = results["sdad"].patterns
    assert sdad
    assert all(len(p.itemset) == 2 for p in sdad)
    # Entropy-based method finds no bins for this dataset (paper claim)
    assert results["entropy"].patterns == []


def test_fig3c_dataset3(benchmark, report):
    dataset = synthetic.simulated_dataset_3()
    results = benchmark.pedantic(
        lambda: _mine_all(dataset), rounds=1, iterations=1
    )
    report(
        "fig3c_simulated3",
        _report_block(results, dataset, "Simulated Dataset 3 (Fig 3c)"),
    )
    sdad = results["sdad"].patterns
    assert sdad
    assert all(len(p.itemset) == 1 for p in sdad)
    # Cortana reports deeper (meaningless) subgroups on the same data
    cortana_level2 = [
        p for p in results["cortana"].patterns if len(p.itemset) == 2
    ]
    assert cortana_level2
    census = classify_patterns(cortana_level2[:20], dataset)
    assert census.n_meaningless > 0


def test_fig3d_dataset4(benchmark, report):
    dataset = synthetic.simulated_dataset_4()
    results = benchmark.pedantic(
        lambda: _mine_all(dataset), rounds=1, iterations=1
    )
    sdad_result = run_algorithm("sdad", dataset, CONFIG)
    from repro.core.meaningful import filter_meaningful

    meaningful = filter_meaningful(sdad_result.patterns, dataset)
    lines = [
        _report_block(results, dataset, "Simulated Dataset 4 (Fig 3d)"),
        pattern_table(
            meaningful, title="SDAD-CS meaningful patterns (post filter)"
        ),
    ]
    report("fig3d_simulated4", "\n".join(lines))
    pure_boxes = [
        p
        for p in meaningful
        if len(p.itemset) == 2
        and p.purity_ratio == pytest.approx(1.0)
        and p.dominant_group == "Group 2"
    ]
    assert len(pure_boxes) == 2
    # paper: "SDAD-CS finds a total of 6 contrasts" — ours lands close
    assert 5 <= len(meaningful) <= 9
