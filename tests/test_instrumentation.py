"""Tests for MiningStats / Stopwatch and multi-group mining paths."""

import time

import numpy as np
import pytest

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.core.instrumentation import MiningStats, Stopwatch


class TestMiningStats:
    def test_defaults(self):
        stats = MiningStats()
        assert stats.partitions_evaluated == 0
        assert stats.elapsed_seconds == 0.0

    def test_merge_from(self):
        a = MiningStats(partitions_evaluated=5, spaces_pruned=2,
                        sdad_calls=1, merges_performed=3,
                        candidates_generated=7, nodes_expanded=4)
        b = MiningStats(partitions_evaluated=10, spaces_pruned=1,
                        sdad_calls=2, merges_performed=0,
                        candidates_generated=3, nodes_expanded=6)
        a.merge_from(b)
        assert a.partitions_evaluated == 15
        assert a.spaces_pruned == 3
        assert a.sdad_calls == 3
        assert a.merges_performed == 3
        assert a.candidates_generated == 10
        assert a.nodes_expanded == 10

    def test_merge_does_not_touch_elapsed(self):
        a = MiningStats(elapsed_seconds=1.0)
        a.merge_from(MiningStats(elapsed_seconds=2.0))
        assert a.elapsed_seconds == 1.0

    def test_merge_sums_per_rule_counters(self):
        """Merging two workers' stats sums rule checks/hits/timings and
        reason counts key-wise (keys present in either side survive)."""
        a = MiningStats(
            prune_rule_checks={"min_deviation": 10, "redundant": 4},
            prune_rule_hits={"min_deviation": 3},
            prune_rule_seconds={"min_deviation": 0.5},
            prune_reasons={"MIN_DEVIATION": 3},
            prune_table_checks=12,
            prune_table_hits=2,
        )
        b = MiningStats(
            prune_rule_checks={"min_deviation": 5, "expected_count": 7},
            prune_rule_hits={"min_deviation": 2, "expected_count": 1},
            prune_rule_seconds={"min_deviation": 0.25,
                                "expected_count": 0.1},
            prune_reasons={"MIN_DEVIATION": 2, "EXPECTED_COUNT": 1},
            prune_table_checks=8,
            prune_table_hits=1,
        )
        a.merge_from(b)
        assert a.prune_rule_checks == {
            "min_deviation": 15,
            "redundant": 4,
            "expected_count": 7,
        }
        assert a.prune_rule_hits == {
            "min_deviation": 5,
            "expected_count": 1,
        }
        assert a.prune_rule_seconds == pytest.approx(
            {"min_deviation": 0.75, "expected_count": 0.1}
        )
        assert a.prune_reasons == {
            "MIN_DEVIATION": 5,
            "EXPECTED_COUNT": 1,
        }
        assert a.prune_table_checks == 20
        assert a.prune_table_hits == 3
        # the source stats are untouched
        assert b.prune_rule_checks["min_deviation"] == 5


class TestStopwatch:
    def test_accumulates_time(self):
        stats = MiningStats()
        with Stopwatch(stats):
            time.sleep(0.01)
        first = stats.elapsed_seconds
        assert first >= 0.01
        with Stopwatch(stats):
            time.sleep(0.01)
        assert stats.elapsed_seconds >= first + 0.01

    def test_records_on_exception(self):
        stats = MiningStats()
        with pytest.raises(RuntimeError):
            with Stopwatch(stats):
                time.sleep(0.005)
                raise RuntimeError("boom")
        assert stats.elapsed_seconds >= 0.005


class TestThreeGroupMining:
    """The k-group paths: contingency tests, max-pairwise difference,
    dominant group selection."""

    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(31)
        n = 1500
        group = rng.integers(0, 3, n)
        # each group occupies its own x band
        x = rng.uniform(0, 1, n) / 3 + group / 3.0
        cat = rng.integers(0, 2, n)
        schema = Schema.of(
            [
                Attribute.continuous("x"),
                Attribute.categorical("c", ["u", "v"]),
            ]
        )
        return Dataset(
            schema, {"x": x, "c": cat}, group, ["low", "mid", "high"]
        )

    def test_mining_three_groups(self, dataset):
        result = ContrastSetMiner(MinerConfig(k=20)).mine(dataset)
        assert result.patterns
        best = result.patterns[0]
        assert best.support_difference > 0.8
        assert len(best.supports) == 3

    def test_dominant_group_per_band(self, dataset):
        result = ContrastSetMiner(MinerConfig(k=30)).mine(dataset)
        dominants = {p.dominant_group for p in result.patterns[:6]}
        # the bands should surface contrasts for multiple groups
        assert len(dominants) >= 2

    def test_pairwise_narrowing_matches(self, dataset):
        """Mining a selected pair behaves like a fresh 2-group dataset."""
        result = ContrastSetMiner(MinerConfig(k=10)).mine(
            dataset, groups=("low", "high")
        )
        assert result.dataset.n_groups == 2
        assert result.patterns
        assert result.patterns[0].support_difference > 0.9

    def test_chi_square_dof_for_three_groups(self, dataset):
        result = ContrastSetMiner(MinerConfig(k=10)).mine(dataset)
        best = result.patterns[0]
        assert best.chi_square.dof == 2
