"""Tests for repro.baselines.discretizers (shared binning plumbing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.discretizers import (
    Binning,
    DiscretizedView,
    equal_frequency_cuts,
)
from repro.core.items import CategoricalItem, Itemset
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


class TestBinning:
    def test_n_bins(self):
        binning = Binning("x", (1.0, 2.0), 0.0, 3.0)
        assert binning.n_bins == 3

    def test_intervals_tile_range(self):
        binning = Binning("x", (1.0, 2.0), 0.0, 3.0)
        intervals = binning.intervals()
        assert intervals[0].lo == 0.0 and intervals[0].lo_closed
        assert intervals[-1].hi == 3.0
        for a, b in zip(intervals, intervals[1:]):
            assert a.hi == b.lo

    def test_assign_respects_right_closed(self):
        binning = Binning("x", (1.0,), 0.0, 2.0)
        values = np.array([0.5, 1.0, 1.5])
        assert list(binning.assign(values)) == [0, 0, 1]

    def test_assignment_matches_interval_cover(self):
        binning = Binning("x", (0.7, 1.4), 0.0, 2.0)
        values = np.linspace(0, 2, 21)
        ids = binning.assign(values)
        intervals = binning.intervals()
        for value, bin_id in zip(values, ids):
            assert intervals[bin_id].contains(value)

    def test_unsorted_cuts_rejected(self):
        with pytest.raises(ValueError):
            Binning("x", (2.0, 1.0), 0.0, 3.0)

    def test_cut_outside_range_rejected(self):
        with pytest.raises(ValueError):
            Binning("x", (5.0,), 0.0, 3.0)

    def test_no_cuts_single_bin(self):
        binning = Binning("x", (), 0.0, 1.0)
        assert binning.n_bins == 1
        assert binning.assign(np.array([0.5])).tolist() == [0]

    def test_labels_match_intervals(self):
        binning = Binning("x", (1.0,), 0.0, 2.0)
        assert binning.labels() == ["[0, 1]", "(1, 2]"]


class TestEqualFrequencyCuts:
    def test_quartiles(self):
        values = np.arange(100, dtype=float)
        cuts = equal_frequency_cuts(values, 4)
        assert len(cuts) == 3
        binning = Binning("x", cuts, 0.0, 99.0)
        counts = np.bincount(binning.assign(values))
        assert all(20 <= c <= 30 for c in counts)

    def test_heavy_ties_collapse(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        cuts = equal_frequency_cuts(values, 4)
        assert len(cuts) <= 1

    def test_single_bin(self):
        assert equal_frequency_cuts(np.arange(10.0), 1) == ()

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            equal_frequency_cuts(np.arange(10.0), 0)

    def test_empty_values(self):
        assert equal_frequency_cuts(np.array([]), 4) == ()


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=5, max_size=200
    ),
    n_bins=st.integers(2, 10),
)
def test_assignment_is_total_and_ordered(data, n_bins):
    """Property: every value lands in exactly one bin and bin ids are
    monotone in the value."""
    values = np.asarray(data)
    cuts = equal_frequency_cuts(values, n_bins)
    binning = Binning("x", cuts, float(values.min()), float(values.max()))
    ids = binning.assign(values)
    assert ids.min() >= 0 and ids.max() <= len(cuts)
    order = np.argsort(values)
    assert (np.diff(ids[order]) >= 0).all()


class TestDiscretizedView:
    def _dataset(self):
        schema = Schema.of(
            [
                Attribute.continuous("x"),
                Attribute.categorical("c", ["a", "b"]),
            ]
        )
        return Dataset(
            schema,
            {
                "x": np.array([0.1, 0.6, 1.1, 1.9]),
                "c": np.array([0, 1, 0, 1]),
            },
            np.array([0, 0, 1, 1]),
            ["G1", "G2"],
        )

    def test_materialised_dataset_categorical(self):
        ds = self._dataset()
        view = DiscretizedView(ds, {"x": Binning("x", (1.0,), 0.1, 1.9)})
        attr = view.dataset.attribute("x")
        assert attr.is_categorical
        assert attr.cardinality == 2
        assert list(view.dataset.column("x")) == [0, 0, 1, 1]

    def test_untouched_columns_preserved(self):
        ds = self._dataset()
        view = DiscretizedView(ds, {"x": Binning("x", (1.0,), 0.1, 1.9)})
        assert view.dataset.attribute("c").is_categorical
        assert list(view.dataset.column("c")) == [0, 1, 0, 1]

    def test_reject_non_continuous(self):
        ds = self._dataset()
        with pytest.raises(ValueError):
            DiscretizedView(ds, {"c": Binning("c", (), 0, 1)})

    def test_restore_pattern_counts_match(self):
        ds = self._dataset()
        view = DiscretizedView(ds, {"x": Binning("x", (1.0,), 0.1, 1.9)})
        binned_itemset = Itemset([CategoricalItem("x", "[0.1, 1]")])
        from repro.core.contrast import evaluate_itemset

        binned = evaluate_itemset(binned_itemset, view.dataset)
        restored = view.restore_pattern(binned)
        assert restored.counts == binned.counts
        item = restored.itemset.item_for("x")
        assert item.interval.lo == pytest.approx(0.1)
        assert item.interval.hi == pytest.approx(1.0)

    def test_restore_keeps_plain_categorical_items(self):
        ds = self._dataset()
        view = DiscretizedView(ds, {"x": Binning("x", (1.0,), 0.1, 1.9)})
        from repro.core.contrast import evaluate_itemset

        binned = evaluate_itemset(
            Itemset([CategoricalItem("c", "a")]), view.dataset
        )
        restored = view.restore_pattern(binned)
        assert restored.itemset.item_for("c") == CategoricalItem("c", "a")
