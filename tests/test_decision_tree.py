"""Tests for the CART baseline and its pattern extraction."""

import numpy as np
import pytest

from repro.baselines.decision_tree import (
    DecisionTree,
    TreeConfig,
    tree_patterns,
)
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _dataset(x, groups, extra=None):
    attrs = [Attribute.continuous("x")]
    cols = {"x": np.asarray(x, dtype=float)}
    if extra is not None:
        attrs.append(Attribute.continuous("y"))
        cols["y"] = np.asarray(extra, dtype=float)
    return Dataset(
        Schema.of(attrs), cols, np.asarray(groups, dtype=np.int64),
        ["G0", "G1"],
    )


class TestFit:
    def test_separable_data_perfect_accuracy(self):
        rng = np.random.default_rng(0)
        n = 400
        groups = rng.integers(0, 2, n)
        x = np.where(groups == 0, rng.uniform(0, 0.5, n),
                     rng.uniform(0.5, 1, n))
        ds = _dataset(x, groups)
        tree = DecisionTree().fit(ds)
        assert tree.accuracy(ds) > 0.99
        assert tree.depth() >= 1

    def test_pure_node_stops(self):
        ds = _dataset([1.0, 2.0, 3.0, 4.0] * 10, [0] * 40)
        # one-group data is degenerate for Dataset (needs 2 labels), so
        # craft group codes all zero with two labels
        tree = DecisionTree().fit(ds)
        assert tree.root.is_leaf

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(1)
        n = 60
        groups = rng.integers(0, 2, n)
        x = rng.uniform(0, 1, n)
        ds = _dataset(x, groups)
        config = TreeConfig(min_samples_leaf=25, max_depth=6)
        tree = DecisionTree(config).fit(ds)

        def check(node):
            if node is None:
                return
            assert node.n_samples >= 1
            if not node.is_leaf:
                assert node.left.n_samples >= 25 or node.left.is_leaf
            check(node.left)
            check(node.right)

        check(tree.root)

    def test_categorical_split(self):
        rng = np.random.default_rng(2)
        n = 300
        groups = rng.integers(0, 2, n)
        cat = np.where(
            groups == 1,
            rng.choice(3, n, p=[0.8, 0.1, 0.1]),
            rng.choice(3, n, p=[0.1, 0.45, 0.45]),
        )
        schema = Schema.of([Attribute.categorical("c", ["a", "b", "c"])])
        ds = Dataset(schema, {"c": cat}, groups, ["G0", "G1"])
        tree = DecisionTree().fit(ds)
        assert tree.accuracy(ds) > 0.75
        assert tree.root.attribute == "c"

    def test_predict_requires_fit(self):
        ds = _dataset([1.0, 2.0], [0, 1])
        with pytest.raises(RuntimeError):
            DecisionTree().predict(ds)


class TestGreedyLimitation:
    def test_xor_defeats_shallow_greedy_tree(self):
        """The paper's Section 1 argument: greedy trees struggle on XOR
        because no single split improves purity, while SDAD-CS finds the
        joint boxes directly."""
        rng = np.random.default_rng(3)
        n = 2000
        a = rng.uniform(0, 1, n)
        b = rng.uniform(0, 1, n)
        groups = ((a < 0.5) ^ (b < 0.5)).astype(np.int64)
        ds = _dataset(a, groups, extra=b)

        depth1 = DecisionTree(TreeConfig(max_depth=1)).fit(ds)
        assert depth1.accuracy(ds) < 0.6  # no single split helps

        from repro.core.config import MinerConfig
        from repro.core.items import Itemset
        from repro.core.sdad import sdad_cs

        joint = sdad_cs(ds, Itemset(), ["x", "y"], MinerConfig(k=20))
        assert joint.patterns
        assert max(p.purity_ratio for p in joint.patterns) > 0.9


class TestTreePatterns:
    def test_paths_become_patterns(self):
        rng = np.random.default_rng(4)
        n = 500
        groups = rng.integers(0, 2, n)
        x = np.where(groups == 0, rng.uniform(0, 0.5, n),
                     rng.uniform(0.5, 1, n))
        ds = _dataset(x, groups)
        tree = DecisionTree(TreeConfig(max_depth=2)).fit(ds)
        patterns = tree_patterns(tree, ds)
        assert patterns
        # every extracted pattern must verify against the data
        for pattern in patterns:
            mask = pattern.itemset.cover(ds)
            counts = tuple(int(c) for c in ds.group_counts(mask))
            assert counts == pattern.counts

    def test_tree_yields_fewer_patterns_than_miner(self, mixed_dataset):
        """One greedy hierarchy vs all contrasts: the tree's path set is
        smaller than the mined meaningful set plus raw variants."""
        from repro import ContrastSetMiner, MinerConfig

        tree = DecisionTree(TreeConfig(max_depth=3)).fit(mixed_dataset)
        paths = tree_patterns(tree, mixed_dataset)
        mined = ContrastSetMiner(
            MinerConfig(k=100, max_tree_depth=2).no_pruning()
        ).mine(mixed_dataset)
        assert len(paths) <= len(mined.patterns)

    def test_requires_fit(self):
        ds = _dataset([1.0, 2.0], [0, 1])
        with pytest.raises(RuntimeError):
            tree_patterns(DecisionTree(), ds)
