"""Tests for repro.core.sdad (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import MinerConfig
from repro.core.items import CategoricalItem, Interval, Itemset, NumericItem
from repro.core.instrumentation import MiningStats
from repro.core.sdad import sdad_cs
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _one_attr_dataset(rng, n=800, boundary=0.5):
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0,
        rng.uniform(0, boundary, n),
        rng.uniform(boundary, 1.0, n),
    )
    schema = Schema.of([Attribute.continuous("x")])
    return Dataset(schema, {"x": x}, group, ["A", "B"])


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestSingleAttribute:
    def test_finds_planted_boundary(self, rng):
        ds = _one_attr_dataset(rng)
        result = sdad_cs(ds, Itemset(), ["x"])
        assert result.patterns
        # the split should land near the planted boundary 0.5
        boundaries = []
        for pattern in result.patterns:
            item = pattern.itemset.item_for("x")
            boundaries.extend([item.interval.lo, item.interval.hi])
        assert any(abs(b - 0.5) < 0.08 for b in boundaries)

    def test_patterns_are_contrasts(self, rng):
        ds = _one_attr_dataset(rng)
        config = MinerConfig()
        result = sdad_cs(ds, Itemset(), ["x"], config)
        for pattern in result.patterns:
            assert pattern.support_difference > config.delta
            # alpha is Bonferroni-adjusted, so just check rough
            # significance
            assert pattern.chi_square.p_value < config.alpha

    def test_no_contrast_in_noise(self, rng):
        n = 600
        group = rng.integers(0, 2, n)
        x = rng.uniform(0, 1, n)  # independent of group
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(schema, {"x": x}, group, ["A", "B"])
        result = sdad_cs(ds, Itemset(), ["x"])
        assert result.patterns == []

    def test_pure_regions_reported(self, rng):
        ds = _one_attr_dataset(rng)
        result = sdad_cs(ds, Itemset(), ["x"])
        assert result.pure_itemsets  # the two sides are pure

    def test_constant_attribute_yields_nothing(self, rng):
        n = 100
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.ones(n)},
            rng.integers(0, 2, n),
            ["A", "B"],
        )
        assert sdad_cs(ds, Itemset(), ["x"]).patterns == []

    def test_empty_context_cover(self, rng):
        ds = _one_attr_dataset(rng)
        # a categorical context that covers nothing
        schema = Schema.of(
            [
                Attribute.continuous("x"),
                Attribute.categorical("c", ["only", "never"]),
            ]
        )
        ds2 = Dataset(
            schema,
            {
                "x": ds.column("x"),
                "c": np.zeros(ds.n_rows, dtype=np.int64),
            },
            ds.group_codes.copy(),
            ["A", "B"],
        )
        context = Itemset([CategoricalItem("c", "never")])
        assert sdad_cs(ds2, context, ["x"]).patterns == []


class TestValidation:
    def test_needs_continuous(self, rng):
        ds = _one_attr_dataset(rng)
        with pytest.raises(ValueError):
            sdad_cs(ds, Itemset(), [])

    def test_rejects_categorical_attribute(self, rng):
        schema = Schema.of([Attribute.categorical("c", ["a", "b"])])
        ds = Dataset(
            schema,
            {"c": rng.integers(0, 2, 50)},
            rng.integers(0, 2, 50),
            ["A", "B"],
        )
        with pytest.raises(ValueError, match="not continuous"):
            sdad_cs(ds, Itemset(), ["c"])


class TestRecursionAndMerge:
    def test_merge_recovers_wide_region(self, rng):
        """A group confined to [0.25, 0.75] forces splits at 0.5 then the
        two inner halves must merge back into one region."""
        n = 2000
        group = (rng.uniform(0, 1, n) < 0.3).astype(int)
        x = np.where(
            group == 1,
            rng.uniform(0.25, 0.75, n),
            rng.uniform(0, 1.0, n),
        )
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(schema, {"x": x}, group, ["A", "B"])
        result = sdad_cs(ds, Itemset(), ["x"])
        assert result.patterns
        widths = []
        for pattern in result.patterns:
            item = pattern.itemset.item_for("x")
            if item is not None:
                widths.append(item.interval.hi - item.interval.lo)
        # at least one region should approximate the planted 0.5-wide band
        assert any(0.3 < w < 0.7 for w in widths)

    def test_merge_disabled_keeps_fine_partitions(self, rng):
        ds = _one_attr_dataset(rng, n=1500)
        merged = sdad_cs(ds, Itemset(), ["x"], MinerConfig(merge=True))
        unmerged = sdad_cs(ds, Itemset(), ["x"], MinerConfig(merge=False))
        assert len(unmerged.patterns) >= len(merged.patterns)

    def test_full_range_items_stripped(self, rng):
        """An attribute whose interval merges back to the full range must
        not appear in the reported itemsets."""
        n = 1200
        group = rng.integers(0, 2, n)
        x = np.where(
            group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1, n)
        )
        noise = rng.uniform(0, 1, n)
        schema = Schema.of(
            [Attribute.continuous("x"), Attribute.continuous("noise")]
        )
        ds = Dataset(
            schema, {"x": x, "noise": noise}, group, ["A", "B"]
        )
        result = sdad_cs(ds, Itemset(), ["x", "noise"])
        for pattern in result.patterns:
            item = pattern.itemset.item_for("noise")
            if item is not None:
                full = Interval(
                    float(noise.min()), float(noise.max()), True, True
                )
                assert item.interval != full

    def test_multivariate_xor_found_jointly_not_marginally(self, rng):
        """XOR-style data: no univariate contrast, clear joint contrast."""
        n = 2000
        a = rng.uniform(0, 1, n)
        b = rng.uniform(0, 1, n)
        group = ((a < 0.5) ^ (b < 0.5)).astype(int)
        schema = Schema.of(
            [Attribute.continuous("a"), Attribute.continuous("b")]
        )
        ds = Dataset(schema, {"a": a, "b": b}, group, ["G0", "G1"])
        marginal_a = sdad_cs(ds, Itemset(), ["a"])
        marginal_b = sdad_cs(ds, Itemset(), ["b"])
        joint = sdad_cs(ds, Itemset(), ["a", "b"])
        assert marginal_a.patterns == []
        assert marginal_b.patterns == []
        assert len(joint.patterns) >= 2
        for pattern in joint.patterns:
            assert pattern.purity_ratio > 0.8


class TestCategoricalContext:
    def test_context_changes_bins(self, rng):
        """Adaptive binning: the boundary for x inside context c=1 differs
        from the global boundary (local multivariate interaction)."""
        n = 3000
        c = rng.integers(0, 2, n)
        group = rng.integers(0, 2, n)
        # inside c=0 the boundary is 0.3; inside c=1 it is 0.7
        boundary = np.where(c == 0, 0.3, 0.7)
        u = rng.uniform(0, 1, n)
        x = np.where(group == 0, u * boundary, boundary + u * (1 - boundary))
        schema = Schema.of(
            [
                Attribute.continuous("x"),
                Attribute.categorical("c", ["zero", "one"]),
            ]
        )
        ds = Dataset(schema, {"x": x, "c": c}, group, ["A", "B"])

        ctx0 = Itemset([CategoricalItem("c", "zero")])
        ctx1 = Itemset([CategoricalItem("c", "one")])
        res0 = sdad_cs(ds, ctx0, ["x"])
        res1 = sdad_cs(ds, ctx1, ["x"])

        def boundaries(result):
            out = []
            for p in result.patterns:
                item = p.itemset.item_for("x")
                out.extend([item.interval.lo, item.interval.hi])
            return out

        assert any(abs(b - 0.3) < 0.08 for b in boundaries(res0))
        assert any(abs(b - 0.7) < 0.08 for b in boundaries(res1))

    def test_context_items_present_in_patterns(self, rng):
        ds = _one_attr_dataset(rng)
        schema = Schema.of(
            [
                Attribute.continuous("x"),
                Attribute.categorical("c", ["u", "v"]),
            ]
        )
        ds2 = Dataset(
            schema,
            {
                "x": ds.column("x"),
                "c": rng.integers(0, 2, ds.n_rows),
            },
            ds.group_codes.copy(),
            ["A", "B"],
        )
        context = Itemset([CategoricalItem("c", "u")])
        result = sdad_cs(ds2, context, ["x"])
        for pattern in result.patterns:
            assert pattern.itemset.item_for("c") == CategoricalItem("c", "u")


class TestInstrumentation:
    def test_stats_count_partitions(self, rng):
        ds = _one_attr_dataset(rng)
        stats = MiningStats()
        sdad_cs(ds, Itemset(), ["x"], stats=stats)
        assert stats.partitions_evaluated > 0
        assert stats.sdad_calls == 1

    def test_no_pruning_evaluates_more(self, rng):
        ds = _one_attr_dataset(rng, n=1500)
        pruned_stats = MiningStats()
        np_stats = MiningStats()
        config = MinerConfig()
        sdad_cs(ds, Itemset(), ["x"], config, stats=pruned_stats)
        sdad_cs(
            ds, Itemset(), ["x"], config.no_pruning(), stats=np_stats
        )
        assert (
            np_stats.partitions_evaluated
            >= pruned_stats.partitions_evaluated
        )


class TestKnownPure:
    def test_known_pure_region_prunes_boxes(self, rng):
        ds = _one_attr_dataset(rng)
        # first run discovers the pure sides
        first = sdad_cs(ds, Itemset(), ["x"])
        assert first.pure_itemsets
        schema = Schema.of(
            [Attribute.continuous("x"), Attribute.continuous("z")]
        )
        ds2 = Dataset(
            schema,
            {
                "x": ds.column("x"),
                "z": rng.uniform(0, 1, ds.n_rows),
            },
            ds.group_codes.copy(),
            ["A", "B"],
        )
        with_pure = MiningStats()
        without_pure = MiningStats()
        sdad_cs(
            ds2,
            Itemset(),
            ["x", "z"],
            stats=with_pure,
            known_pure=first.pure_itemsets,
        )
        sdad_cs(ds2, Itemset(), ["x", "z"], stats=without_pure)
        assert (
            with_pure.partitions_evaluated
            <= without_pure.partitions_evaluated
        )
