"""Tests for repro.dataset.sampling."""

import numpy as np
import pytest

from repro.dataset.sampling import (
    population_vs_group,
    stratified_sample,
    train_holdout_split,
)
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset, DatasetError


def _dataset(n=1000, seed=0, p_fail=0.1):
    rng = np.random.default_rng(seed)
    group = (rng.uniform(0, 1, n) < p_fail).astype(np.int64)
    schema = Schema.of([Attribute.continuous("x")])
    return Dataset(
        schema, {"x": rng.uniform(0, 1, n)}, group, ["ok", "fail"]
    )


class TestStratifiedSample:
    def test_fraction_preserves_ratio(self):
        ds = _dataset(n=2000)
        sample = stratified_sample(ds, fraction=0.25, seed=1)
        original_ratio = ds.group_sizes[1] / ds.n_rows
        sampled_ratio = sample.group_sizes[1] / sample.n_rows
        assert sampled_ratio == pytest.approx(original_ratio, abs=0.03)
        assert sample.n_rows == pytest.approx(500, abs=10)

    def test_n_rows_target(self):
        ds = _dataset(n=1000)
        sample = stratified_sample(ds, n_rows=100, seed=1)
        assert sample.n_rows == pytest.approx(100, abs=5)

    def test_small_groups_never_vanish(self):
        ds = _dataset(n=500, p_fail=0.01)
        sample = stratified_sample(ds, fraction=0.05, seed=2)
        assert sample.group_sizes[1] >= 1

    def test_argument_validation(self):
        ds = _dataset(n=100)
        with pytest.raises(ValueError):
            stratified_sample(ds)
        with pytest.raises(ValueError):
            stratified_sample(ds, fraction=0.5, n_rows=10)
        with pytest.raises(ValueError):
            stratified_sample(ds, fraction=1.5)
        with pytest.raises(ValueError):
            stratified_sample(ds, n_rows=0)

    def test_deterministic_given_seed(self):
        ds = _dataset(n=500)
        a = stratified_sample(ds, fraction=0.2, seed=7)
        b = stratified_sample(ds, fraction=0.2, seed=7)
        assert np.array_equal(a.column("x"), b.column("x"))


class TestPopulationVsGroup:
    def test_builds_two_group_comparison(self):
        ds = _dataset(n=3000, p_fail=0.05)
        comparison = population_vs_group(
            ds, "fail", sample_ratio=4.0, seed=3
        )
        assert comparison.group_labels == ("Population", "Anomaly")
        n_fail = ds.group_sizes[1]
        # the anomaly side holds the full failing group
        assert comparison.group_sizes[1] == n_fail
        # the population sample is roughly ratio x anomaly (minus overlap)
        assert comparison.group_sizes[0] <= 4 * n_fail

    def test_anomaly_rows_all_present(self):
        ds = _dataset(n=800, p_fail=0.1)
        comparison = population_vs_group(ds, "fail", seed=4)
        assert comparison.group_sizes[1] == ds.group_sizes[1]

    def test_empty_group_rejected(self):
        ds = _dataset(n=100, p_fail=0.0)
        with pytest.raises(DatasetError, match="empty"):
            population_vs_group(ds, "fail")

    def test_duplicate_labels_rejected(self):
        ds = _dataset(n=100)
        with pytest.raises(DatasetError):
            population_vs_group(ds, "fail", labels=("X", "X"))


class TestTrainHoldout:
    def test_split_sizes(self):
        ds = _dataset(n=1000)
        train, holdout = train_holdout_split(ds, 0.3, seed=5)
        assert train.n_rows + holdout.n_rows == ds.n_rows
        assert holdout.n_rows == pytest.approx(300, abs=10)

    def test_stratification(self):
        ds = _dataset(n=2000, p_fail=0.2)
        train, holdout = train_holdout_split(ds, 0.25, seed=6)
        for part in (train, holdout):
            ratio = part.group_sizes[1] / part.n_rows
            assert ratio == pytest.approx(0.2, abs=0.04)

    def test_disjoint(self):
        # x values are unique with probability 1, so multisets suffice
        ds = _dataset(n=400)
        train, holdout = train_holdout_split(ds, 0.5, seed=7)
        overlap = set(map(float, train.column("x"))) & set(
            map(float, holdout.column("x"))
        )
        assert not overlap

    def test_validation(self):
        ds = _dataset(n=100)
        with pytest.raises(ValueError):
            train_holdout_split(ds, 0.0)
        with pytest.raises(ValueError):
            train_holdout_split(ds, 1.0)

    def test_holdout_validation_workflow(self):
        """Patterns mined on train re-validate on holdout when the signal
        is real."""
        rng = np.random.default_rng(8)
        n = 1200
        group = rng.integers(0, 2, n)
        x = np.where(
            group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1, n)
        )
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(schema, {"x": x}, group, ["A", "B"])
        train, holdout = train_holdout_split(ds, 0.3, seed=9)

        from repro import ContrastSetMiner, MinerConfig
        from repro.core.contrast import evaluate_itemset

        result = ContrastSetMiner(MinerConfig(k=10)).mine(train)
        assert result.patterns
        best = result.patterns[0]
        revalidated = evaluate_itemset(best.itemset, holdout)
        assert revalidated.support_difference > 0.7
