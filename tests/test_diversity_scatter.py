"""Tests for the diversity metrics and the ASCII scatter renderer."""

import numpy as np
import pytest

from repro.analysis.diversity import (
    diversity_report,
    mean_pairwise_jaccard,
)
from repro.analysis.scatter import ascii_scatter
from repro.core.contrast import evaluate_itemset
from repro.core.items import Interval, Itemset, NumericItem
from repro.dataset import synthetic


class TestJaccard:
    def test_identical_masks(self):
        mask = np.array([True, False, True])
        assert mean_pairwise_jaccard([mask, mask.copy()]) == 1.0

    def test_disjoint_masks(self):
        a = np.array([True, False, False])
        b = np.array([False, True, False])
        assert mean_pairwise_jaccard([a, b]) == 0.0

    def test_single_mask(self):
        assert mean_pairwise_jaccard([np.array([True])]) == 0.0

    def test_partial_overlap(self):
        a = np.array([True, True, False, False])
        b = np.array([False, True, True, False])
        assert mean_pairwise_jaccard([a, b]) == pytest.approx(1 / 3)


class TestDiversityReport:
    @pytest.fixture(scope="class")
    def dataset(self):
        return synthetic.simulated_dataset_3()

    def _pattern(self, dataset, lo, hi, attr="Attribute 1"):
        return evaluate_itemset(
            Itemset([NumericItem(attr, Interval(lo, hi))]), dataset
        )

    def test_redundant_set_scores_high_jaccard(self, dataset):
        near_duplicates = [
            self._pattern(dataset, 0.0, 0.5),
            self._pattern(dataset, 0.0, 0.49),
            self._pattern(dataset, 0.01, 0.5),
        ]
        report = diversity_report(near_duplicates, dataset)
        assert report.mean_jaccard > 0.9

    def test_diverse_set_scores_low_jaccard(self, dataset):
        diverse = [
            self._pattern(dataset, 0.0, 0.3),
            self._pattern(dataset, 0.35, 0.65),
            self._pattern(dataset, 0.7, 1.0),
        ]
        report = diversity_report(diverse, dataset)
        assert report.mean_jaccard < 0.1
        assert report.coverage > 0.8

    def test_attribute_diversity(self, dataset):
        mixed = [
            self._pattern(dataset, 0.0, 0.5, "Attribute 1"),
            self._pattern(dataset, 0.0, 0.5, "Attribute 2"),
        ]
        report = diversity_report(mixed, dataset)
        assert report.attribute_diversity == 1.0
        same = [
            self._pattern(dataset, 0.0, 0.5),
            self._pattern(dataset, 0.5, 1.0),
        ]
        assert diversity_report(same, dataset).attribute_diversity == 0.5

    def test_empty(self, dataset):
        report = diversity_report([], dataset)
        assert report.n_patterns == 0
        assert "0 patterns" in report.formatted()

    def test_top_truncation(self, dataset):
        patterns = [
            self._pattern(dataset, 0.0, 0.5),
            self._pattern(dataset, 0.5, 1.0),
            self._pattern(dataset, 0.2, 0.8),
        ]
        report = diversity_report(patterns, dataset, top=2)
        assert report.n_patterns == 2

    def test_sdad_more_diverse_than_cortana(self, dataset):
        """The paper's redundancy claim, quantified: SDAD-CS's meaningful
        output overlaps less than Cortana's raw top-k."""
        from repro.analysis import run_algorithm
        from repro.core.config import MinerConfig

        config = MinerConfig(k=30, max_tree_depth=2)
        sdad = run_algorithm("sdad", dataset, config)
        cortana = run_algorithm("cortana", dataset, config)
        sdad_div = diversity_report(sdad.top(10), dataset)
        cortana_div = diversity_report(cortana.top(10), dataset)
        assert sdad_div.mean_jaccard <= cortana_div.mean_jaccard


class TestAsciiScatter:
    @pytest.fixture(scope="class")
    def dataset(self):
        return synthetic.simulated_dataset_4(n=400)

    def test_renders_grid(self, dataset):
        text = ascii_scatter(dataset, "Attribute 1", "Attribute 2")
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert len(lines) == 24 + 3  # grid + borders + footer
        assert "Group 1" in lines[-1] and "Group 2" in lines[-1]

    def test_glyphs_present_for_both_groups(self, dataset):
        text = ascii_scatter(dataset, "Attribute 1", "Attribute 2")
        assert "." in text and "o" in text

    def test_pattern_box_drawn(self, dataset):
        pattern = evaluate_itemset(
            Itemset(
                [
                    NumericItem("Attribute 1", Interval(0.0, 0.25, True,
                                                        True)),
                    NumericItem("Attribute 2", Interval(0.0, 0.5, True,
                                                        True)),
                ]
            ),
            dataset,
        )
        text = ascii_scatter(
            dataset, "Attribute 1", "Attribute 2", patterns=[pattern]
        )
        assert "#" in text
        assert "pattern box" in text

    def test_empty_dataset(self):
        from repro import Attribute, Dataset, Schema

        schema = Schema.of(
            [Attribute.continuous("a"), Attribute.continuous("b")]
        )
        empty = Dataset(
            schema,
            {"a": np.array([]), "b": np.array([])},
            np.array([], dtype=np.int64),
            ["G0", "G1"],
        )
        assert "empty" in ascii_scatter(empty, "a", "b")

    def test_custom_size(self, dataset):
        text = ascii_scatter(
            dataset, "Attribute 1", "Attribute 2", width=20, height=8
        )
        lines = text.splitlines()
        assert len(lines[0]) == 22
        assert len(lines) == 8 + 3
