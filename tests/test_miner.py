"""Tests for the high-level ContrastSetMiner facade."""

import numpy as np
import pytest

from repro import ContrastSetMiner, MinerConfig
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


class TestMinerBasics:
    def test_mine_returns_result(self, mixed_dataset):
        result = ContrastSetMiner(MinerConfig(k=10)).mine(mixed_dataset)
        assert len(result) > 0
        assert result.stats.elapsed_seconds > 0

    def test_top_n(self, mixed_dataset):
        result = ContrastSetMiner(MinerConfig(k=10)).mine(mixed_dataset)
        assert len(result.top(3)) <= 3
        assert result.top() == result.patterns

    def test_interest_of(self, mixed_dataset):
        result = ContrastSetMiner(MinerConfig(k=10)).mine(mixed_dataset)
        best = result.patterns[0]
        assert result.interest_of(best) == pytest.approx(
            best.support_difference
        )

    def test_patterns_sorted_by_interest(self, mixed_dataset):
        result = ContrastSetMiner(MinerConfig(k=20)).mine(mixed_dataset)
        interests = [result.interest_of(p) for p in result.patterns]
        assert interests == sorted(interests, reverse=True)

    def test_default_config(self, mixed_dataset):
        result = ContrastSetMiner().mine(mixed_dataset)
        assert result.config.delta == 0.1
        assert result.config.alpha == 0.05

    def test_meaningful_subset_of_patterns(self, mixed_dataset):
        result = ContrastSetMiner(MinerConfig(k=20)).mine(mixed_dataset)
        meaningful = result.meaningful()
        raw = {p.itemset for p in result.patterns}
        assert all(p.itemset in raw for p in meaningful)
        assert len(meaningful) <= len(result)


class TestGroupSelection:
    def test_select_groups(self):
        rng = np.random.default_rng(4)
        n = 900
        group = rng.integers(0, 3, n)
        x = rng.uniform(0, 1, n) + (group == 2) * 2.0
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema, {"x": x}, group, ["A", "B", "C"]
        )
        miner = ContrastSetMiner(MinerConfig(k=10))
        result = miner.mine(ds, groups=("A", "C"))
        assert result.dataset.group_labels == ("A", "C")
        assert len(result) > 0

    def test_single_group_rejected(self):
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.zeros(5)},
            np.zeros(5, dtype=np.int64),
            ["only"],
        )
        with pytest.raises(ValueError, match="two groups"):
            ContrastSetMiner().mine(ds)

    def test_attribute_restriction(self, mixed_dataset):
        result = ContrastSetMiner(MinerConfig(k=10)).mine(
            mixed_dataset, attributes=["noise"]
        )
        for pattern in result.patterns:
            assert pattern.itemset.attributes == ("noise",)


class TestInterestMeasures:
    @pytest.mark.parametrize(
        "measure", ["support_difference", "purity_ratio", "surprising"]
    )
    def test_each_measure_runs(self, mixed_dataset, measure):
        config = MinerConfig(k=10, interest_measure=measure)
        result = ContrastSetMiner(config).mine(mixed_dataset)
        assert len(result) > 0

    def test_unknown_measure_fails_fast(self, mixed_dataset):
        config = MinerConfig(k=10, interest_measure="bogus")
        with pytest.raises(KeyError):
            ContrastSetMiner(config).mine(mixed_dataset)


class TestConfigValidation:
    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            MinerConfig(alpha=0)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            MinerConfig(delta=1.0)

    def test_bad_depths(self):
        with pytest.raises(ValueError):
            MinerConfig(max_tree_depth=0)
        with pytest.raises(ValueError):
            MinerConfig(max_split_depth=0)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            MinerConfig(k=0)

    def test_no_pruning_flags(self):
        config = MinerConfig().no_pruning()
        assert not config.prune_optimistic
        assert not config.prune_redundant
        assert not config.prune_pure_space
        # STUCCO-basics stay on: they only drop impossible contrasts
        assert config.prune_min_deviation

    def test_with_helper(self):
        config = MinerConfig().with_(delta=0.05, k=7)
        assert config.delta == 0.05 and config.k == 7


class TestDeterminism:
    def test_same_input_same_output(self, mixed_dataset):
        a = ContrastSetMiner(MinerConfig(k=15)).mine(mixed_dataset)
        b = ContrastSetMiner(MinerConfig(k=15)).mine(mixed_dataset)
        assert [p.itemset for p in a.patterns] == [
            p.itemset for p in b.patterns
        ]
