"""Smoke tests: the example scripts must run end-to-end.

Each example is executed in-process (import + ``main()``) with stdout
captured; the fast ones run in full, the heavier ones are marked slow but
still included — the suite stays in laptop time.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "Meaningful contrasts" in out
        assert "temperature" in out
        assert "machine = M3" in out

    def test_csv_workflow(self, capsys):
        out = _run_example("csv_workflow", capsys)
        assert "SLA breaches" in out
        assert "shift = night" in out

    def test_streaming_monitor(self, capsys):
        out = _run_example("streaming_monitor", capsys)
        assert "EMERGED" in out
        assert "lane = L3" in out or "oven_temp" in out

    def test_tree_vs_mining(self, capsys):
        out = _run_example("tree_vs_mining", capsys)
        assert "XOR" in out
        assert "SDAD-CS joint search: 4 contrasts" in out

    def test_serve_adult(self, capsys):
        out = _run_example("serve_adult", capsys)
        assert "serving on http://" in out
        assert "requests served, no 5xx" in out
        assert "done" in out

    def test_clinical_screening(self, capsys):
        out = _run_example("clinical_screening", capsys)
        assert "holdout validation" in out
        assert "Clinical briefing" in out

    @pytest.mark.slow
    def test_adult_analysis(self, capsys):
        out = _run_example("adult_analysis", capsys)
        assert "Figure 4 style histogram" in out
        assert "SDAD-CS with purity_ratio" in out

    @pytest.mark.slow
    def test_manufacturing_case_study(self, capsys):
        out = _run_example("manufacturing_case_study", capsys)
        assert "Table 7 style" in out
        assert "Planted failure signals surfaced" in out

    @pytest.mark.slow
    def test_simulated_survey(self, capsys):
        out = _run_example("simulated_survey", capsys)
        assert "simulated_dataset_4" in out
