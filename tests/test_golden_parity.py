"""Golden-output parity: every execution path produces byte-identical
patterns.

``tests/data/golden_patterns.json`` holds serialised pattern lists
captured from the pre-pipeline serial miner (mask backend, depth 2) on
the paper's simulated datasets 1-4 and the Adult stand-in.  The shared
PruningPipeline must reproduce them exactly — same itemsets, same
counts, same order — for every combination of counting backend and
worker count.  Any drift between paths (the old parallel categorical
branch disagreed with serial on Adult) fails here.
"""

import json
from pathlib import Path

import pytest

from repro import ContrastSetMiner, MinerConfig
from repro.core.serialize import patterns_to_dicts
from repro.dataset import synthetic, uci

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_patterns.json"

LOADERS = {
    "simulated_dataset_1": synthetic.simulated_dataset_1,
    "simulated_dataset_2": synthetic.simulated_dataset_2,
    "simulated_dataset_3": synthetic.simulated_dataset_3,
    "simulated_dataset_4": synthetic.simulated_dataset_4,
    "adult": lambda: uci.adult(scale=0.15),
}


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("backend", ["mask", "bitmap"])
@pytest.mark.parametrize("n_jobs", [1, 2])
@pytest.mark.parametrize("name", sorted(LOADERS))
def test_patterns_match_golden(golden, name, backend, n_jobs):
    dataset = LOADERS[name]()
    config = MinerConfig(max_tree_depth=2, counting_backend=backend)
    result = ContrastSetMiner(config).mine(dataset, n_jobs=n_jobs)
    assert patterns_to_dicts(result.patterns) == golden[name], (
        f"{name} drifted from golden output "
        f"(backend={backend}, n_jobs={n_jobs})"
    )
