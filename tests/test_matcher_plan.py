"""MatcherPlan: the vectorized batch matcher is bit-identical to the scan.

The compiled plan (``repro.serve.plan.MatcherPlan``) is the serving hot
path; this suite pins it three ways against randomly generated pattern
sets and rows:

* ``plan.match_batch(rows)[i]`` == ``PatternIndex.match(rows[i])`` — the
  readable reference scan;
* both equal an independent brute-force re-implementation of item
  coverage written directly against ``Interval.contains`` / label
  equality (so a shared bug in index + plan cannot hide);
* error semantics agree: a non-numeric value for a numerically
  constrained attribute raises ``MatchError`` with an identical message
  from both paths, and never depends on pattern order.

Rows deliberately include missing attributes, interval boundary values
(closed and open endpoints), bools (always a ``MatchError`` for numeric
attributes — ``True`` must not pass as ``1.0``), and category labels no
pattern mentions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.contrast import ContrastPattern
from repro.core.items import CategoricalItem, Interval, Itemset, NumericItem
from repro.serve.index import MatchError, PatternIndex
from repro.serve.plan import MatcherPlan

CAT_ATTRS = ("color", "shape")
CAT_LABELS = ("red", "green", "blue", "square")
NUM_ATTRS = ("x", "y")
BOUNDARIES = (-1.0, 0.0, 0.25, 0.5, 1.0)


def _pattern(itemset: Itemset) -> ContrastPattern:
    return ContrastPattern(
        itemset=itemset,
        counts=(80, 20),
        group_sizes=(100, 100),
        group_labels=("A", "B"),
        level=max(1, len(itemset)),
    )


@st.composite
def itemsets(draw):
    """0-4 items, at most one per attribute (the Itemset invariant)."""
    items = []
    for attr in draw(
        st.sets(st.sampled_from(CAT_ATTRS + NUM_ATTRS), max_size=4)
    ):
        if attr in CAT_ATTRS:
            items.append(
                CategoricalItem(attr, draw(st.sampled_from(CAT_LABELS)))
            )
        else:
            lo, hi = sorted(
                draw(
                    st.lists(
                        st.sampled_from(BOUNDARIES),
                        min_size=2,
                        max_size=2,
                        unique=True,
                    )
                )
            )
            items.append(
                NumericItem(
                    attr,
                    Interval(
                        lo, hi, draw(st.booleans()), draw(st.booleans())
                    ),
                )
            )
    return Itemset(items)


@st.composite
def indexes(draw):
    """A PatternIndex over 1-8 random (possibly duplicate) itemsets."""
    sets = draw(st.lists(itemsets(), min_size=1, max_size=8))
    return PatternIndex([_pattern(s) for s in sets])


def good_values():
    """Row values that are always matchable (strings and numbers)."""
    return st.one_of(
        st.sampled_from(CAT_LABELS + ("unseen-label",)),
        st.sampled_from(BOUNDARIES),  # exact endpoints: closure matters
        st.floats(-2.0, 2.0, allow_nan=False),
        st.integers(-2, 2),
    )


def rows(values=None):
    """Random rows; attributes are independently present or missing."""
    return st.dictionaries(
        st.sampled_from(CAT_ATTRS + NUM_ATTRS + ("ignored",)),
        good_values() if values is None else values,
        max_size=5,
    )


def brute_force_match(index: PatternIndex, row: dict) -> list[int]:
    """Independent coverage reimplementation; returns matching ranks."""
    matched = []
    for entry in index.entries:
        ok = True
        for item in entry.pattern.itemset:
            if item.attribute not in row:
                ok = False
                break
            value = row[item.attribute]
            if isinstance(item, CategoricalItem):
                if not (isinstance(value, str) and value == item.value):
                    ok = False
                    break
            else:
                if not item.interval.contains(float(value)):
                    ok = False
                    break
        if ok:
            matched.append(entry.rank)
    return matched


def _row_is_valid(index: PatternIndex, row: dict) -> bool:
    plan = index.plan
    return not any(
        attr in row
        and (
            isinstance(row[attr], bool)
            or not isinstance(row[attr], (int, float))
        )
        for attr in plan.numeric_attributes
    )


_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(index=indexes(), batch=st.lists(rows(), max_size=6))
def test_plan_matches_scan_and_brute_force(index, batch):
    batch = [row for row in batch if _row_is_valid(index, row)]
    results = index.match_batch(batch)
    assert len(results) == len(batch)
    for row, from_plan in zip(batch, results):
        from_scan = index.match(row)
        assert from_plan == from_scan  # same IndexedPattern objects
        assert [e.rank for e in from_plan] == brute_force_match(index, row)


@_SETTINGS
@given(
    index=indexes(),
    batch=st.lists(
        rows(
            values=st.one_of(
                good_values(),
                st.booleans(),
                st.none(),
                st.lists(st.integers(), max_size=2),
            )
        ),
        max_size=6,
    ),
)
def test_error_semantics_agree_row_by_row(index, batch):
    """Plan and scan agree on *which* rows fail and with what message."""
    single_outcomes = []
    for row in batch:
        try:
            single_outcomes.append(("ok", index.match(row)))
        except MatchError as exc:
            single_outcomes.append(("error", str(exc)))
    first_bad = next(
        (i for i, (kind, _) in enumerate(single_outcomes) if kind == "error"),
        None,
    )
    if first_bad is None:
        assert [m for _, m in single_outcomes] == index.match_batch(batch)
    else:
        with pytest.raises(MatchError) as excinfo:
            index.match_batch(batch)
        expected = f"row {first_bad}: {single_outcomes[first_bad][1]}"
        assert str(excinfo.value) == expected


@_SETTINGS
@given(index=indexes(), row=rows(), seed=st.integers(0, 2**31 - 1))
def test_match_error_is_pattern_order_independent(index, row, seed):
    """Shuffling the pattern list never changes a row's outcome."""
    patterns = [e.pattern for e in index.entries]
    rng = np.random.default_rng(seed)
    shuffled = PatternIndex(
        [patterns[i] for i in rng.permutation(len(patterns))]
    )
    outcomes = []
    for idx in (index, shuffled):
        try:
            outcomes.append(
                ("ok", sorted(str(e.pattern.itemset) for e in idx.match(row)))
            )
        except MatchError as exc:
            outcomes.append(("error", str(exc)))
    assert outcomes[0] == outcomes[1]


class TestKnownCases:
    """Hand-picked edges the random generators might under-sample."""

    def _index(self):
        return PatternIndex(
            [
                _pattern(
                    Itemset([NumericItem("x", Interval(0.0, 1.0, True, False))])
                ),
                _pattern(
                    Itemset([NumericItem("x", Interval(0.0, 1.0, False, True))])
                ),
                _pattern(Itemset([CategoricalItem("color", "red")])),
                _pattern(Itemset([])),  # empty itemset covers everything
            ]
        )

    def test_closure_at_endpoints(self):
        index = self._index()
        # x == 0.0: only the lo-closed interval; the empty itemset always
        lo = index.match({"x": 0.0})
        assert [e.rank for e in lo] == [0, 3]
        hi = index.match({"x": 1.0})
        assert [e.rank for e in hi] == [1, 3]
        assert index.match_batch([{"x": 0.0}, {"x": 1.0}]) == [lo, hi]

    def test_bool_is_rejected_not_coerced(self):
        index = self._index()
        # True would fall in [0, 1) if coerced to 1.0... and False to 0.0
        for bad in (True, False):
            with pytest.raises(MatchError):
                index.match({"x": bad})
            with pytest.raises(MatchError):
                index.match_batch([{"x": bad}])

    def test_unseen_label_and_non_string_no_match(self):
        index = self._index()
        assert [e.rank for e in index.match({"color": "chartreuse"})] == [3]
        # a number for a categorical-only attribute: no coverage, no error
        assert [e.rank for e in index.match({"color": 7})] == [3]

    def test_missing_attribute_no_match(self):
        index = self._index()
        assert [e.rank for e in index.match({})] == [3]

    def test_nan_never_matches_but_is_numeric(self):
        index = self._index()
        matched = index.match({"x": float("nan")})
        assert [e.rank for e in matched] == [3]

    def test_plan_is_cached_on_index(self):
        index = self._index()
        assert index.plan is index.plan
        assert isinstance(index.plan, MatcherPlan)
