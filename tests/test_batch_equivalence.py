"""Batch-vs-scalar equivalence suite (DESIGN.md §12).

Three layers of the vectorized evaluation engine are pinned here:

* ``group_counts_batch`` returns exactly the stacked scalar
  ``group_counts`` rows, for every registered backend (property-based);
* every vectorized kernel (chi-square, expected counts, prune
  predicates, optimistic estimates, interest measures) matches its
  scalar counterpart element for element — bit-identical where the
  kernel docstring promises it, else to 1e-12;
* a full mining run with ``batch_evaluation=True`` reproduces the
  scalar driver's patterns *and* its per-rule prune accounting, and the
  ``--explain-prunes`` report annotates how each rule's checks ran.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Attribute,
    CategoricalItem,
    ContrastPattern,
    ContrastSetMiner,
    Dataset,
    Itemset,
    MinerConfig,
    Schema,
)
from repro.core import measures
from repro.core.items import Interval, NumericItem
from repro.core.optimistic import (
    chi_square_estimate,
    chi_square_estimate_batch,
    support_difference_estimate,
    support_difference_estimate_batch,
)
from repro.core.pipeline import format_prune_report
from repro.core.pruning import (
    expected_count_prunes,
    expected_count_prunes_batch,
    is_pure_space,
    is_pure_space_batch,
    minimum_deviation_prunes,
    minimum_deviation_prunes_batch,
)
from repro.core.serialize import patterns_to_dicts
from repro.core.stats import (
    chi_square_counts,
    chi_square_counts_batch,
    min_expected_count,
    min_expected_count_batch,
)
from repro.counting import make_backend


# ----------------------------------------------------------------------
# group_counts_batch == stacked scalar group_counts, per backend
# ----------------------------------------------------------------------


@st.composite
def dataset_and_itemsets(draw):
    """A small mixed dataset plus a batch of random candidate itemsets."""
    n = draw(st.integers(20, 120))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    group = rng.integers(0, draw(st.integers(2, 3)), n)
    n_groups = int(group.max()) + 1
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.continuous("y"),
            Attribute.categorical("c", ["u", "v"]),
        ]
    )
    dataset = Dataset(
        schema,
        {
            "x": rng.uniform(0, 1, n),
            "y": rng.normal(0, 1, n),
            "c": rng.integers(0, 2, n),
        },
        group,
        [f"G{i}" for i in range(n_groups)],
    )

    def interval_item(attr):
        lo, hi = sorted(
            draw(
                st.tuples(
                    st.floats(-2, 2, allow_nan=False),
                    st.floats(-2, 2, allow_nan=False),
                )
            )
        )
        if lo == hi:
            return NumericItem(attr, Interval(lo, hi, True, True))
        return NumericItem(
            attr, Interval(lo, hi, draw(st.booleans()), draw(st.booleans()))
        )

    itemsets = []
    for _ in range(draw(st.integers(0, 8))):
        items = []
        if draw(st.booleans()):
            items.append(CategoricalItem("c", draw(st.sampled_from("uv"))))
        if draw(st.booleans()):
            items.append(interval_item("x"))
        if draw(st.booleans()):
            items.append(interval_item("y"))
        itemsets.append(Itemset(items))
    return dataset, itemsets


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=dataset_and_itemsets(), backend_name=st.sampled_from(["mask", "bitmap"]))
def test_group_counts_batch_matches_stacked_scalar(data, backend_name):
    dataset, itemsets = data
    backend = make_backend(backend_name, dataset)
    batch = backend.group_counts_batch(itemsets)
    assert batch.shape == (len(itemsets), dataset.n_groups)
    assert batch.dtype == np.int64
    for i, itemset in enumerate(itemsets):
        assert np.array_equal(batch[i], backend.group_counts(itemset))


def test_group_counts_batch_matches_scalar_chunked(tmp_path, mixed_dataset):
    from repro.counting.chunked import ChunkedBackend
    from repro.dataset.chunked import ChunkedDataset

    store = ChunkedDataset.pack(
        tmp_path / "store", mixed_dataset, chunk_size=97
    )
    backend = ChunkedBackend(store.view(), inner="mask")
    itemsets = [
        Itemset(),
        Itemset([CategoricalItem("color", "red")]),
        Itemset([NumericItem("x", Interval(0.0, 0.5))]),
        Itemset(
            [
                CategoricalItem("color", "blue"),
                NumericItem("x", Interval(0.25, 0.75, True, False)),
            ]
        ),
    ]
    batch = backend.group_counts_batch(itemsets)
    for i, itemset in enumerate(itemsets):
        assert np.array_equal(batch[i], backend.group_counts(itemset))


def test_group_counts_batch_empty_input(mixed_dataset):
    for name in ("mask", "bitmap"):
        backend = make_backend(name, mixed_dataset)
        out = backend.group_counts_batch([])
        assert out.shape == (0, mixed_dataset.n_groups)
        assert out.dtype == np.int64


# ----------------------------------------------------------------------
# vectorized kernels == per-row scalar kernels
# ----------------------------------------------------------------------


@st.composite
def counts_matrices(draw):
    """Random ``(N, G)`` count rows with valid per-group sizes.

    Includes the degenerate rows the kernels special-case: all-zero
    rows, rows covering a whole group, and zero-size groups.
    """
    g = draw(st.integers(2, 4))
    n = draw(st.integers(1, 12))
    sizes = draw(
        st.lists(st.integers(0, 40), min_size=g, max_size=g).filter(
            lambda s: sum(s) > 0
        )
    )
    rows = [
        [draw(st.integers(0, size)) for size in sizes] for _ in range(n)
    ]
    return np.asarray(rows, dtype=np.int64), tuple(sizes)


_KERNEL_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_KERNEL_SETTINGS
@given(data=counts_matrices())
def test_chi_square_batch_bit_identical(data):
    counts, sizes = data
    stat, p, dof = chi_square_counts_batch(counts, sizes)
    for i, row in enumerate(counts):
        scalar = chi_square_counts(row, sizes)
        # bit-identical, not merely close: the mining fingerprints and
        # the golden parity suite depend on it
        assert stat[i] == scalar.statistic
        assert p[i] == scalar.p_value
        assert dof[i] == scalar.dof


@_KERNEL_SETTINGS
@given(data=counts_matrices())
def test_min_expected_count_batch_bit_identical(data):
    counts, sizes = data
    batch = min_expected_count_batch(counts, sizes)
    for i, row in enumerate(counts):
        assert batch[i] == min_expected_count(row, sizes)


@_KERNEL_SETTINGS
@given(data=counts_matrices(), delta=st.floats(0.0, 0.3))
def test_prune_predicates_batch_match_scalar(data, delta):
    counts, sizes = data
    dev = minimum_deviation_prunes_batch(counts, sizes, delta)
    exp = expected_count_prunes_batch(counts, sizes, 5.0)
    pure = is_pure_space_batch(counts)
    for i, row in enumerate(counts):
        assert bool(dev[i]) == minimum_deviation_prunes(row, sizes, delta)
        assert bool(exp[i]) == expected_count_prunes(row, sizes, 5.0)
        assert bool(pure[i]) == is_pure_space(row)


@_KERNEL_SETTINGS
@given(data=counts_matrices())
def test_optimistic_estimates_batch_bit_identical(data):
    counts, sizes = data
    chi = chi_square_estimate_batch(counts, sizes)
    db_size = int(sum(sizes))
    diff = support_difference_estimate_batch(counts, sizes, db_size, 1, 2)
    for i, row in enumerate(counts):
        assert chi[i] == chi_square_estimate(row, sizes)
        assert diff[i] == support_difference_estimate(
            row, sizes, db_size, 1, 2
        )


@_KERNEL_SETTINGS
@given(data=counts_matrices())
def test_interest_measures_batch_match_scalar(data):
    counts, sizes = data
    labels = tuple(f"G{i}" for i in range(len(sizes)))
    item = Itemset([CategoricalItem("c", "u")])
    for name in ("support_difference", "purity_ratio", "surprising"):
        batch_fn = measures.get_batch(name)
        assert batch_fn is not None, f"no batch form registered for {name}"
        values = batch_fn(counts, sizes)
        scalar_fn = measures.get(name)
        for i, row in enumerate(counts):
            pattern = ContrastPattern(
                item, tuple(int(c) for c in row), sizes, labels
            )
            assert values[i] == pytest.approx(
                scalar_fn(pattern), abs=1e-12
            )


# ----------------------------------------------------------------------
# end-to-end: batch driver == scalar driver, patterns and accounting
# ----------------------------------------------------------------------

_ACCOUNTING = (
    "prune_rule_checks",
    "prune_rule_hits",
    "prune_reasons",
    "partitions_evaluated",
    "spaces_pruned",
    "count_calls",
    "cache_hits",
)


@pytest.mark.parametrize("backend_name", ["mask", "bitmap"])
def test_mining_parity_batch_vs_scalar(mixed_dataset, backend_name):
    results = {}
    for batch in (True, False):
        config = MinerConfig(
            max_tree_depth=3,
            counting_backend=backend_name,
            batch_evaluation=batch,
        )
        results[batch] = ContrastSetMiner(config).mine(mixed_dataset)
    assert patterns_to_dicts(results[True].patterns) == patterns_to_dicts(
        results[False].patterns
    )
    batch_summary = results[True].summary()
    scalar_summary = results[False].summary()
    for field in _ACCOUNTING:
        assert getattr(batch_summary, field) == getattr(
            scalar_summary, field
        ), field


def test_prune_report_mode_column(mixed_dataset):
    reports = {}
    for batch in (True, False):
        config = MinerConfig(max_tree_depth=2, batch_evaluation=batch)
        result = ContrastSetMiner(config).mine(mixed_dataset)
        reports[batch] = format_prune_report(result.stats)
    for report in reports.values():
        header = report.splitlines()[1]
        assert header.split()[-1] == "mode"
    # the batch driver routes every rule check through evaluate_batch;
    # the scalar driver routes none
    assert " batch" in reports[True] and " scalar" not in reports[True]
    assert " scalar" in reports[False] and " batch" not in reports[False]
