"""Tests for the manufacturing case-study generator (Section 6, Table 7)."""

import numpy as np
import pytest

from repro import ContrastSetMiner, MinerConfig
from repro.dataset.manufacturing import manufacturing, scaling_dataset


class TestManufacturing:
    @pytest.fixture(scope="class")
    def ds(self):
        return manufacturing()

    def test_shape(self, ds):
        assert len(ds.schema) == 148
        assert len(ds.schema.continuous_names) == 30
        assert ds.group_labels == ("Population", "Failed")

    def test_cam_entity_signal(self, ds):
        attr = ds.attribute("CAM entity")
        supports = ds.supports(
            ds.column("CAM entity") == attr.code_of("SCE")
        )
        # Table 7 row 1: 0.28 vs 0.55
        assert supports[0] == pytest.approx(0.28, abs=0.06)
        assert supports[1] > 0.45

    def test_placement_tool_tied_to_cam(self, ds):
        cam = ds.attribute("CAM entity")
        tool = ds.attribute("Placement tool")
        sce = ds.column("CAM entity") == cam.code_of("SCE")
        jvf = ds.column("Placement tool") == tool.code_of("JVF")
        # JVF feeds SCE: conditional overlap must be near-total
        assert (sce & jvf).sum() / max(1, sce.sum()) > 0.9

    def test_rear_row_signal(self, ds):
        attr = ds.attribute("CAM row location")
        supports = ds.supports(
            ds.column("CAM row location") == attr.code_of("Rear")
        )
        assert supports[1] > supports[0]

    def test_thermal_windows(self, ds):
        liq = ds.column("CAM time above liquidus")
        supports = ds.supports((liq >= 92.0) & (liq <= 92.8))
        # Table 7: 0.04 vs 0.21
        assert supports[0] < 0.08
        assert supports[1] > 0.12

    def test_noise_columns_uninformative(self, ds):
        values = ds.column("sensor_001")
        supports = ds.supports(values > np.median(values))
        assert abs(supports[0] - supports[1]) < 0.08

    def test_miner_surfaces_planted_signals(self, ds):
        """End-to-end: the miner must rank the planted equipment path at
        the top despite 140+ noise attributes."""
        config = MinerConfig(k=30, max_tree_depth=1, delta=0.1)
        result = ContrastSetMiner(config).mine(ds)
        top_attrs = {
            attr
            for p in result.top(12)
            for attr in p.itemset.attributes
        }
        planted = {
            "CAM entity",
            "Placement tool",
            "CAM row location",
            "CAM time above liquidus",
            "CAM Peak temperature",
            "Die temp above std",
            "CAM peak temp std",
        }
        assert len(top_attrs & planted) >= 4

    def test_custom_sizes(self):
        ds = manufacturing(n_population=500, n_failed=80)
        assert ds.group_sizes == (500, 80)

    def test_missing_rate(self):
        ds = manufacturing(
            n_population=400, n_failed=60, missing_rate=0.05
        )
        assert ds.has_missing
        rate = ds.missing_mask().mean()
        # ~1 - (1-0.05)^30 of rows have at least one missing sensor
        assert rate > 0.3

    def test_mining_with_sensor_dropouts(self):
        ds = manufacturing(
            n_population=800, n_failed=120, missing_rate=0.03
        )
        config = MinerConfig(k=20, max_tree_depth=1)
        result = ContrastSetMiner(config).mine(ds)
        assert result.patterns
        top_text = " ".join(
            str(p.itemset) for p in result.top(10)
        )
        assert "SCE" in top_text or "JVF" in top_text


class TestScalingDataset:
    def test_shape(self):
        ds = scaling_dataset(2000, n_features=40)
        assert ds.n_rows == 2000
        assert len(ds.schema) == 40

    def test_has_signal(self):
        ds = scaling_dataset(4000, n_features=20)
        values = ds.column("m_001")
        supports = ds.supports(values > 0.4)
        assert supports[1] > supports[0] + 0.1

    def test_determinism(self):
        a = scaling_dataset(500, n_features=10, seed=1)
        b = scaling_dataset(500, n_features=10, seed=1)
        assert np.array_equal(a.column("m_001"), b.column("m_001"))
