"""Tests for repro.dataset.schema."""

import pytest

from repro.dataset.schema import Attribute, AttributeKind, Schema, SchemaError


class TestAttributeKind:
    def test_continuous_flag(self):
        assert AttributeKind.CONTINUOUS.is_continuous
        assert not AttributeKind.CONTINUOUS.is_categorical

    def test_categorical_flag(self):
        assert AttributeKind.CATEGORICAL.is_categorical
        assert not AttributeKind.CATEGORICAL.is_continuous


class TestAttribute:
    def test_continuous_constructor(self):
        attr = Attribute.continuous("age")
        assert attr.name == "age"
        assert attr.is_continuous
        assert attr.cardinality == 0

    def test_categorical_constructor(self):
        attr = Attribute.categorical("color", ["r", "g", "b"])
        assert attr.is_categorical
        assert attr.cardinality == 3
        assert attr.categories == ("r", "g", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute.continuous("")

    def test_categorical_needs_categories(self):
        with pytest.raises(SchemaError):
            Attribute("c", AttributeKind.CATEGORICAL, ())

    def test_continuous_rejects_categories(self):
        with pytest.raises(SchemaError):
            Attribute("c", AttributeKind.CONTINUOUS, ("a",))

    def test_duplicate_categories_rejected(self):
        with pytest.raises(SchemaError):
            Attribute.categorical("c", ["a", "a"])

    def test_code_label_roundtrip(self):
        attr = Attribute.categorical("c", ["x", "y", "z"])
        for code, label in enumerate(["x", "y", "z"]):
            assert attr.code_of(label) == code
            assert attr.label_of(code) == label

    def test_code_of_unknown_label(self):
        attr = Attribute.categorical("c", ["x"])
        with pytest.raises(SchemaError):
            attr.code_of("nope")

    def test_label_of_out_of_range(self):
        attr = Attribute.categorical("c", ["x"])
        with pytest.raises(SchemaError):
            attr.label_of(5)

    def test_code_of_on_continuous_fails(self):
        with pytest.raises(SchemaError):
            Attribute.continuous("a").code_of("x")

    def test_label_of_on_continuous_fails(self):
        with pytest.raises(SchemaError):
            Attribute.continuous("a").label_of(0)

    def test_frozen(self):
        attr = Attribute.continuous("a")
        with pytest.raises(AttributeError):
            attr.name = "b"


class TestSchema:
    def _schema(self):
        return Schema.of(
            [
                Attribute.continuous("age"),
                Attribute.categorical("color", ["r", "g"]),
                Attribute.continuous("weight"),
            ]
        )

    def test_len_iter(self):
        schema = self._schema()
        assert len(schema) == 3
        assert [a.name for a in schema] == ["age", "color", "weight"]

    def test_names(self):
        assert self._schema().names == ("age", "color", "weight")

    def test_continuous_and_categorical_names(self):
        schema = self._schema()
        assert schema.continuous_names == ("age", "weight")
        assert schema.categorical_names == ("color",)

    def test_contains(self):
        schema = self._schema()
        assert "age" in schema
        assert "nope" not in schema

    def test_getitem(self):
        schema = self._schema()
        assert schema["color"].is_categorical
        with pytest.raises(KeyError):
            schema["nope"]

    def test_index_of(self):
        schema = self._schema()
        assert schema.index_of("age") == 0
        assert schema.index_of("weight") == 2
        with pytest.raises(KeyError):
            schema.index_of("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(
                [Attribute.continuous("a"), Attribute.continuous("a")]
            )

    def test_subset_preserves_order(self):
        schema = self._schema()
        sub = schema.subset(["weight", "age"])
        assert sub.names == ("age", "weight")

    def test_subset_unknown_raises(self):
        with pytest.raises(KeyError):
            self._schema().subset(["nope"])

    def test_with_attribute(self):
        schema = self._schema().with_attribute(Attribute.continuous("x"))
        assert schema.names[-1] == "x"
        assert len(schema) == 4

    def test_empty_schema(self):
        schema = Schema()
        assert len(schema) == 0
        assert schema.names == ()
