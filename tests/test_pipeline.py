"""Tests for the shared pruning pipeline (EvaluationContext + PruneRule +
PruningPipeline), the one candidate lifecycle every miner routes through."""

import numpy as np
import pytest

from repro import Attribute, Dataset, MinerConfig, Schema
from repro.core.contrast import ContrastPattern
from repro.core.instrumentation import MiningStats
from repro.core.items import CategoricalItem, Itemset
from repro.core.pipeline import (
    EvaluationContext,
    OptimisticChiSquareRule,
    PruningPipeline,
    default_rules,
    format_prune_report,
    process_categorical_candidate,
)
from repro.core.pruning import PruneReason, PruneTable


def make_pattern(counts, group_sizes=(100, 100), attrs=("a",)):
    itemset = Itemset([CategoricalItem(a, "x") for a in attrs])
    return ContrastPattern(
        itemset=itemset,
        counts=tuple(counts),
        group_sizes=tuple(group_sizes),
        group_labels=tuple(f"g{i}" for i in range(len(group_sizes))),
        level=len(attrs),
    )


def make_ctx(pattern=None, config=None, alpha=0.05, **kwargs):
    config = config or MinerConfig()
    itemset = kwargs.pop(
        "itemset", pattern.itemset if pattern is not None else Itemset()
    )
    return EvaluationContext(
        key=itemset,
        config=config,
        alpha=alpha,
        itemset=itemset,
        pattern=pattern,
        **kwargs,
    )


class TestDefaultRules:
    def test_canonical_order_cheap_rules_first(self):
        names = [rule.name for rule in default_rules()]
        assert names == [
            "empty",
            "pure_space",
            "min_deviation",
            "expected_count",
            "optimistic",
            "redundant",
        ]

    def test_config_flags_toggle_rules(self):
        """SDAD-CS NP maps to rule toggles: no_pruning() drops the
        optimistic, redundancy, and pure-space rules from the chain."""
        full = PruningPipeline(MinerConfig())
        np_mode = PruningPipeline(MinerConfig().no_pruning())
        assert [r.name for r in full.rules] == [
            "empty",
            "pure_space",
            "min_deviation",
            "expected_count",
            "optimistic",
            "redundant",
        ]
        assert [r.name for r in np_mode.rules] == [
            "empty",
            "min_deviation",
            "expected_count",
        ]

    def test_single_flag_toggle(self):
        pipeline = PruningPipeline(
            MinerConfig(prune_min_deviation=False)
        )
        assert "min_deviation" not in [r.name for r in pipeline.rules]


class TestEvaluate:
    def test_prune_records_reason_table_and_stats(self):
        pipeline = PruningPipeline(MinerConfig(delta=0.1))
        pattern = make_pattern((1, 1))  # supports 0.01 -> min deviation
        decision = pipeline.evaluate(make_ctx(pattern))
        assert decision.pruned
        assert decision.reason is PruneReason.MIN_DEVIATION
        assert (
            pipeline.prune_table.reason_for(pattern.itemset)
            is PruneReason.MIN_DEVIATION
        )
        assert pipeline.stats.spaces_pruned == 1
        assert pipeline.rule_stats["min_deviation"].hits == 1
        # rules after the hit never ran
        assert pipeline.rule_stats["expected_count"].checks == 0

    def test_empty_rule_fires_first(self):
        pipeline = PruningPipeline(MinerConfig())
        decision = pipeline.evaluate(make_ctx(make_pattern((0, 0))))
        assert decision.reason is PruneReason.EMPTY

    def test_survivor_keeps(self):
        pipeline = PruningPipeline(MinerConfig(delta=0.1))
        pattern = make_pattern((90, 10))
        decision = pipeline.evaluate(make_ctx(pattern))
        assert not decision.pruned
        assert len(pipeline.prune_table) == 0
        checks = {
            name: record.checks
            for name, record in pipeline.rule_stats.items()
        }
        assert checks["empty"] == 1
        assert checks["redundant"] == 1

    def test_redundancy_against_subset(self):
        pipeline = PruningPipeline(MinerConfig())
        pattern = make_pattern((90, 10), attrs=("a", "b"))
        subset = make_pattern((90, 10), attrs=("a",))
        ctx = make_ctx(pattern, subset_patterns=(subset,))
        decision = pipeline.evaluate(ctx)
        assert decision.reason is PruneReason.REDUNDANT

    def test_pure_space_rule_uses_known_pure(self):
        pipeline = PruningPipeline(MinerConfig())
        pure = Itemset([CategoricalItem("a", "x")])
        candidate = Itemset(
            [CategoricalItem("a", "x"), CategoricalItem("b", "y")]
        )
        ctx = make_ctx(
            make_pattern((90, 10)), itemset=candidate, known_pure=(pure,)
        )
        decision = pipeline.precheck(ctx)
        assert decision.reason is PruneReason.PURE_SPACE

    def test_optimistic_skipped_for_space_phase(self):
        """Numeric spaces are gated by Eq. 6-11 in SDAD-CS, not by the
        categorical chi-square bound."""
        pipeline = PruningPipeline(MinerConfig())
        pattern = make_pattern((30, 30))  # bound 35.3 < critical(1e-12)
        itemset_ctx = make_ctx(pattern, alpha=1e-12)
        assert (
            pipeline.evaluate(itemset_ctx).reason
            is PruneReason.OPTIMISTIC_ESTIMATE
        )
        space_ctx = make_ctx(pattern, alpha=1e-12, phase="space")
        assert pipeline.evaluate(space_ctx).reason is None

    def test_seen_counts_table_hit(self):
        pipeline = PruningPipeline(MinerConfig())
        key = Itemset([CategoricalItem("a", "x")])
        assert not pipeline.seen(key)
        pipeline.prune_table.add(key, PruneReason.EMPTY)
        assert pipeline.seen(key)
        assert pipeline.stats.spaces_pruned == 1


class TestLaziness:
    def test_pattern_factory_not_called_unless_needed(self):
        calls = []

        def factory():
            calls.append(1)
            return make_pattern((1, 1))

        pipeline = PruningPipeline(MinerConfig())
        ctx = EvaluationContext(
            key="k",
            config=MinerConfig(),
            alpha=0.05,
            phase="space",
            counts=(1, 1),
            group_sizes=(100, 100),
            total_count=2,
            itemset_factory=lambda: Itemset(),
            pattern_factory=factory,
            subset_patterns=(),
        )
        decision = pipeline.evaluate(ctx)
        # pruned by min deviation on raw counts: the pattern (and its
        # itemset stripping) was never materialised
        assert decision.reason is PruneReason.MIN_DEVIATION
        assert calls == []

    def test_pattern_factory_called_once(self):
        calls = []
        pattern = make_pattern((90, 10))

        def factory():
            calls.append(1)
            return pattern

        ctx = EvaluationContext(
            key="k",
            config=MinerConfig(),
            alpha=0.05,
            pattern_factory=factory,
        )
        assert ctx.pattern is pattern
        assert ctx.pattern is pattern
        assert calls == [1]


class TestPublish:
    def test_publish_folds_rule_stats_and_reasons(self):
        pipeline = PruningPipeline(MinerConfig())
        pipeline.evaluate(make_ctx(make_pattern((1, 1))))
        stats = pipeline.stats
        pipeline.publish()
        assert stats.prune_rule_hits["min_deviation"] == 1
        assert stats.prune_reasons == {"MIN_DEVIATION": 1}
        assert stats.prune_table_checks == 0

    def test_publish_is_delta_based(self):
        """A second publish adds nothing; work between publishes adds
        only the delta (the parallel workers' per-task semantics)."""
        pipeline = PruningPipeline(MinerConfig())
        pipeline.evaluate(make_ctx(make_pattern((1, 1), attrs=("a",))))
        first = MiningStats()
        pipeline.publish(first)
        again = MiningStats()
        pipeline.publish(again)
        assert again.prune_rule_hits.get("min_deviation", 0) == 0
        assert again.prune_reasons == {}
        pipeline.evaluate(make_ctx(make_pattern((1, 1), attrs=("b",))))
        second = MiningStats()
        pipeline.publish(second)
        assert second.prune_rule_hits["min_deviation"] == 1
        assert second.prune_reasons == {"MIN_DEVIATION": 1}

    def test_check_gate_counts_without_recording(self):
        pipeline = PruningPipeline(MinerConfig())
        gate = OptimisticChiSquareRule()
        ctx = make_ctx(make_pattern((6, 6)), alpha=1e-12)
        assert pipeline.check_gate(gate, ctx)
        assert len(pipeline.prune_table) == 0
        assert pipeline.stats.spaces_pruned == 0
        assert pipeline.rule_stats["optimistic(gate)"].hits == 1


class TestPruneTableMerge:
    def test_merge_from_unions_and_sums(self):
        a, b = PruneTable(), PruneTable()
        a.add("x", PruneReason.EMPTY)
        a.contains("x")
        b.add("y", PruneReason.REDUNDANT)
        b.contains("z")
        a.merge_from(b)
        assert len(a) == 2
        assert a.reason_for("y") is PruneReason.REDUNDANT
        assert a.checks == 2
        assert a.hits == 1


class TestProcessCategoricalCandidate:
    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(7)
        n = 400
        group = rng.integers(0, 2, n)
        # value "u" tracks group 0, "v" tracks group 1
        c = np.where(
            rng.uniform(size=n) < 0.9, group, 1 - group
        )
        d = rng.integers(0, 2, n)
        schema = Schema.of(
            [
                Attribute.categorical("c", ["u", "v"]),
                Attribute.categorical("d", ["p", "q"]),
            ]
        )
        return Dataset(
            schema, {"c": c, "d": d}, group, ["g0", "g1"]
        )

    def test_survivor_outcome(self, dataset):
        pipeline = PruningPipeline(MinerConfig())
        itemset = Itemset([CategoricalItem("c", "u")])
        outcome = process_categorical_candidate(
            itemset,
            dataset,
            pipeline,
            alpha=0.05,
            level=1,
            subset_patterns={},
            known_pure=(),
        )
        assert outcome is not None
        assert outcome.itemset == itemset
        assert outcome.is_contrast
        assert pipeline.stats.partitions_evaluated == 1

    def test_table_hit_skips_evaluation(self, dataset):
        pipeline = PruningPipeline(MinerConfig())
        itemset = Itemset([CategoricalItem("c", "u")])
        pipeline.prune_table.add(itemset, PruneReason.REDUNDANT)
        outcome = process_categorical_candidate(
            itemset,
            dataset,
            pipeline,
            alpha=0.05,
            level=1,
            subset_patterns={},
            known_pure=(),
        )
        assert outcome is None
        assert pipeline.stats.partitions_evaluated == 0
        assert pipeline.stats.spaces_pruned == 1

    def test_pure_precheck_skips_counting(self, dataset):
        pipeline = PruningPipeline(MinerConfig())
        candidate = Itemset(
            [CategoricalItem("c", "u"), CategoricalItem("d", "p")]
        )
        pure = Itemset([CategoricalItem("c", "u")])
        outcome = process_categorical_candidate(
            candidate,
            dataset,
            pipeline,
            alpha=0.05,
            level=2,
            subset_patterns={},
            known_pure=(pure,),
        )
        assert outcome is None
        # pruned before counting: no partition was evaluated
        assert pipeline.stats.partitions_evaluated == 0
        assert (
            pipeline.prune_table.reason_for(candidate)
            is PruneReason.PURE_SPACE
        )


class TestReport:
    def test_format_prune_report_lists_rules(self):
        pipeline = PruningPipeline(MinerConfig())
        pipeline.evaluate(make_ctx(make_pattern((1, 1))))
        pipeline.publish()
        report = format_prune_report(pipeline.stats)
        assert "min_deviation" in report
        assert "lookup table" in report
        assert "total pruned: 1" in report

    def test_summary_exposes_rule_counts(self):
        from repro import ContrastSetMiner
        from repro.dataset.synthetic import simulated_dataset_1

        result = ContrastSetMiner(
            MinerConfig(max_tree_depth=2)
        ).mine(simulated_dataset_1())
        summary = result.summary()
        assert summary.prune_rule_checks
        assert sum(summary.prune_rule_hits.values()) <= sum(
            summary.prune_rule_checks.values()
        )
        assert result.explain_prunes().startswith("Pruning pipeline")
