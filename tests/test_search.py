"""Tests for repro.core.search (level-wise mixed-data search)."""

import numpy as np
import pytest

from repro.core.config import MinerConfig
from repro.core.search import SearchEngine, attribute_combinations
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


class TestAttributeCombinations:
    def test_level_order(self):
        combos = list(attribute_combinations(["a", "b", "c"], 2))
        assert combos == [
            ("a",),
            ("b",),
            ("c",),
            ("a", "b"),
            ("a", "c"),
            ("b", "c"),
        ]

    def test_respects_max_size(self):
        combos = list(attribute_combinations(["a", "b", "c"], 1))
        assert all(len(c) == 1 for c in combos)

    def test_each_combination_once(self):
        combos = list(attribute_combinations(list("abcde"), 3))
        assert len(combos) == len(set(combos))
        assert len(combos) == 5 + 10 + 10


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestSearchEngine:
    def test_categorical_contrast_found(self, categorical_dataset):
        engine = SearchEngine(categorical_dataset, MinerConfig(k=20))
        topk = engine.run()
        itemsets = [str(p.itemset) for p in topk.patterns()]
        assert any("tool = T1" in s for s in itemsets)

    def test_mixed_contrast_found(self, mixed_dataset):
        engine = SearchEngine(mixed_dataset, MinerConfig(k=20))
        topk = engine.run()
        assert len(topk) > 0
        best = topk.patterns()[0]
        assert best.itemset.item_for("x") is not None
        assert best.support_difference > 0.8

    def test_attribute_subset_restriction(self, mixed_dataset):
        engine = SearchEngine(
            mixed_dataset, MinerConfig(k=20), attributes=["noise", "color"]
        )
        topk = engine.run()
        for pattern in topk.patterns():
            assert "x" not in pattern.itemset.attributes

    def test_unknown_attribute_rejected(self, mixed_dataset):
        with pytest.raises(KeyError):
            SearchEngine(mixed_dataset, attributes=["nope"])

    def test_max_tree_depth_limits_itemset_size(self, mixed_dataset):
        engine = SearchEngine(
            mixed_dataset, MinerConfig(k=50, max_tree_depth=1)
        )
        topk = engine.run()
        assert all(len(p.itemset) == 1 for p in topk.patterns())

    def test_no_pruning_finds_superset_of_pruned(self, mixed_dataset):
        config = MinerConfig(k=50)
        pruned = SearchEngine(mixed_dataset, config).run()
        unpruned = SearchEngine(mixed_dataset, config.no_pruning()).run()
        # the unpruned run evaluates at least as many partitions and
        # retains at least as many patterns
        assert len(unpruned) >= len(pruned)

    def test_stats_populated(self, mixed_dataset):
        engine = SearchEngine(mixed_dataset, MinerConfig(k=10))
        engine.run()
        assert engine.stats.partitions_evaluated > 0
        assert engine.stats.nodes_expanded > 0

    def test_topk_threshold_tightens(self, mixed_dataset):
        config = MinerConfig(k=2)
        engine = SearchEngine(mixed_dataset, config)
        topk = engine.run()
        assert topk.threshold >= config.delta

    def test_group_support_correctness(self, mixed_dataset):
        """Every reported pattern's counts must match a recount."""
        engine = SearchEngine(mixed_dataset, MinerConfig(k=30))
        topk = engine.run()
        for pattern in topk.patterns():
            mask = pattern.itemset.cover(mixed_dataset)
            counts = tuple(
                int(c) for c in mixed_dataset.group_counts(mask)
            )
            assert counts == pattern.counts
