"""End-to-end smoke of the SLO load harness (``--runslow``).

Runs ``benchmarks/bench_serve_slo.py`` at miniature scale — a small
synthetic dataset, short phases, modest rates — and checks the contract
rather than the performance: the harness completes with concurrent
hot-swap writers, its artifact validates against the serve schema v2,
errors stay at zero, and p99 stays under a deliberately generous
ceiling (this is a does-it-work gate, not a benchmark; shared CI
runners are slow).
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Attribute, Dataset, Schema

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def slo_results():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        from bench_serve_slo import SLOBenchConfig, run_slo_bench
    finally:
        sys.path.remove(str(BENCHMARKS))

    rng = np.random.default_rng(99)
    n = 1500
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1.0, n)
    )
    color = rng.integers(0, 3, n)
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("color", ["red", "green", "blue"]),
        ]
    )
    dataset = Dataset(schema, {"x": x, "color": color}, group, ["A", "B"])
    config = SLOBenchConfig(
        workers=2,
        n_client_threads=2,
        batch_rows=32,
        target_rows_per_s=(4000,),
        phase_duration_s=2.0,
        hot_swap_interval_s=0.4,
        closed_loop_requests=60,
        closed_loop_batches=(1, 64),
        dataset=dataset,
    )
    text, results = run_slo_bench(config)
    return text, results


def test_harness_completes_and_reports(slo_results):
    text, results = slo_results
    assert "open-loop SLO phases" in text
    assert results["slo"], "no SLO phases reported"


def test_artifact_validates_as_schema_v2(slo_results):
    _, results = slo_results
    sys.path.insert(0, str(BENCHMARKS))
    try:
        from bench_artifacts import validate_serve_artifact
    finally:
        sys.path.remove(str(BENCHMARKS))
    document = {
        "bench": "serve",
        "schema_version": 2,
        "results": results,
    }
    validate_serve_artifact(document)  # raises on any schema violation
    json.dumps(document)  # and it must be JSON-serializable as-is


def test_zero_errors_and_swaps_absorbed(slo_results):
    _, results = slo_results
    for phase in results["slo"]:
        assert phase["error_rate"] == 0.0, phase
        assert phase["requests"] > 0
        assert phase["hot_swaps"] >= 1, "writer never swapped mid-phase"


def test_p99_under_generous_ceiling(slo_results):
    _, results = slo_results
    for phase in results["slo"]:
        # loopback batch matching sits well under 100ms even on slow
        # shared runners; 1s means the server is drowning, not just slow
        assert phase["p99_ms"] < 1000.0, phase


def test_throughput_section_reports_speedup(slo_results):
    _, results = slo_results
    throughput = results["throughput"]
    assert throughput["baseline_v1_match_rps"] == 1054
    assert throughput["speedup_vs_v1"] > 0
    batch_keys = [
        k for k in throughput if k.startswith("match_batch")
        and k.endswith("_rows_per_s")
    ]
    assert batch_keys, throughput
