"""Tests for repro.core.partition (spaces, median splits, merging)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.items import CategoricalItem, Interval, Itemset
from repro.core.partition import (
    AttributeRange,
    Space,
    are_contiguous,
    find_combinations,
    full_space,
    merged_space,
    partition_median,
)
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _dataset(x=None, y=None, groups=None):
    x = np.asarray(x if x is not None else np.linspace(0, 1, 8))
    y = np.asarray(y if y is not None else np.linspace(10, 20, len(x)))
    groups = np.asarray(
        groups if groups is not None else [0, 1] * (len(x) // 2)
    )
    schema = Schema.of(
        [Attribute.continuous("x"), Attribute.continuous("y")]
    )
    return Dataset(schema, {"x": x, "y": y}, groups, ["A", "B"])


def _root(ds, attrs=("x", "y")):
    return full_space(ds, attrs, np.ones(ds.n_rows, dtype=bool))


class TestAttributeRange:
    def test_of_dataset(self):
        ds = _dataset()
        rng = AttributeRange.of(ds, "x")
        assert rng.lo == 0.0 and rng.hi == 1.0

    def test_normalised_width(self):
        rng = AttributeRange("x", 0.0, 10.0)
        assert rng.normalised_width(Interval(2.0, 7.0)) == pytest.approx(0.5)

    def test_normalised_width_clips(self):
        rng = AttributeRange("x", 0.0, 10.0)
        assert rng.normalised_width(
            Interval(-100.0, 100.0)
        ) == pytest.approx(1.0)

    def test_zero_width_range(self):
        rng = AttributeRange("x", 5.0, 5.0)
        assert rng.normalised_width(Interval(5.0, 5.0, True, True)) == 1.0


class TestFullSpace:
    def test_root_covers_everything(self):
        ds = _dataset()
        root = _root(ds)
        assert root.total_count == ds.n_rows
        assert root.hypervolume == pytest.approx(1.0)
        assert root.intervals["x"].lo_closed
        assert root.intervals["x"].hi_closed

    def test_context_mask_respected(self):
        ds = _dataset()
        mask = np.zeros(ds.n_rows, dtype=bool)
        mask[:3] = True
        root = full_space(ds, ("x",), mask)
        assert root.total_count == 3


class TestPartitionMedian:
    def test_split_at_median(self):
        ds = _dataset(x=np.array([1.0, 2.0, 3.0, 4.0]), groups=[0, 0, 1, 1])
        root = _root(ds, ("x",))
        left, right = partition_median(ds, root, "x")
        assert left.hi == right.lo == pytest.approx(2.5)
        assert left.lo_closed and left.hi_closed
        assert not right.lo_closed and right.hi_closed

    def test_halves_partition_rows(self):
        ds = _dataset()
        root = _root(ds, ("x",))
        left, right = partition_median(ds, root, "x")
        values = ds.column("x")
        assert (left.cover(values).sum() + right.cover(values).sum()) == len(
            values
        )

    def test_constant_attribute_unsplittable(self):
        ds = _dataset(x=np.ones(6), groups=[0, 1, 0, 1, 0, 1])
        root = _root(ds, ("x",))
        assert partition_median(ds, root, "x") is None

    def test_ties_at_max_fall_back_to_lower_boundary(self):
        # median equals the max: split at the largest distinct value
        # below it so the right half stays non-empty
        ds = _dataset(
            x=np.array([1.0, 5.0, 5.0, 5.0]), groups=[0, 1, 0, 1]
        )
        root = _root(ds, ("x",))
        left, right = partition_median(ds, root, "x")
        assert left.hi == right.lo == pytest.approx(1.0)
        col = ds.column("x")
        assert left.cover(col).sum() == 1
        assert right.cover(col).sum() == 3

    def test_zero_inflated_column_splits_at_spike(self):
        # 70% zeros: the zero spike becomes a degenerate left half
        x = np.array([0.0] * 7 + [1.0, 2.0, 3.0])
        ds = _dataset(x=x, groups=[0, 1] * 5)
        root = _root(ds, ("x",))
        left, right = partition_median(ds, root, "x")
        col = ds.column("x")
        assert left.cover(col).sum() == 7
        assert right.cover(col).sum() == 3

    def test_empty_region(self):
        ds = _dataset()
        empty = Space(
            {"x": Interval(0, 1, True, True)},
            np.zeros(ds.n_rows, dtype=bool),
            np.zeros(2, dtype=np.int64),
            {},
        )
        assert partition_median(ds, empty, "x") is None


class TestFindCombinations:
    def test_two_attrs_make_four_boxes(self):
        ds = _dataset()
        root = _root(ds)
        splits = {
            "x": partition_median(ds, root, "x"),
            "y": partition_median(ds, root, "y"),
        }
        children = find_combinations(ds, root, splits)
        assert len(children) == 4
        total = sum(c.total_count for c in children)
        assert total == root.total_count

    def test_masks_are_disjoint(self):
        ds = _dataset()
        root = _root(ds)
        splits = {
            "x": partition_median(ds, root, "x"),
            "y": partition_median(ds, root, "y"),
        }
        children = find_combinations(ds, root, splits)
        stacked = np.vstack([c.mask for c in children])
        assert (stacked.sum(axis=0) <= 1).all()

    def test_unsplit_attribute_kept(self):
        ds = _dataset()
        root = _root(ds)
        splits = {"x": partition_median(ds, root, "x")}
        children = find_combinations(ds, root, splits)
        assert len(children) == 2
        for child in children:
            assert child.intervals["y"] == root.intervals["y"]


class TestSpace:
    def test_itemset_with_context(self):
        ds = _dataset()
        root = _root(ds, ("x",))
        context = Itemset([CategoricalItem("c", "v")])
        itemset = root.itemset_with(context)
        assert set(itemset.attributes) == {"c", "x"}

    def test_key_is_hashable_and_stable(self):
        ds = _dataset()
        a = _root(ds)
        b = _root(ds)
        assert a.key() == b.key()
        assert hash(a.key()) == hash(b.key())

    def test_hypervolume_of_half(self):
        ds = _dataset(x=np.linspace(0, 1, 9), y=np.linspace(0, 1, 9),
                      groups=[0, 1] * 4 + [0])
        root = _root(ds)
        left, right = partition_median(ds, root, "x")
        children = find_combinations(ds, root, {"x": (left, right)})
        assert children[0].hypervolume == pytest.approx(0.5)


class TestMerging:
    def _siblings(self):
        ds = _dataset()
        root = _root(ds)
        splits = {"x": partition_median(ds, root, "x")}
        return ds, find_combinations(ds, root, splits)

    def test_contiguous_siblings(self):
        __, (left, right) = self._siblings()
        assert are_contiguous(left, right)

    def test_merged_space_restores_parent(self):
        ds, (left, right) = self._siblings()
        merged = merged_space(left, right)
        assert merged.total_count == ds.n_rows
        assert merged.intervals["x"].lo == left.intervals["x"].lo
        assert merged.intervals["x"].hi == right.intervals["x"].hi

    def test_merge_counts_additive(self):
        __, (left, right) = self._siblings()
        merged = merged_space(left, right)
        assert (merged.counts == left.counts + right.counts).all()

    def test_not_contiguous_when_two_axes_differ(self):
        ds = _dataset()
        root = _root(ds)
        splits = {
            "x": partition_median(ds, root, "x"),
            "y": partition_median(ds, root, "y"),
        }
        children = find_combinations(ds, root, splits)
        # children[0] = (x-left, y-left); children[3] = (x-right, y-right)
        assert not are_contiguous(children[0], children[3])
        assert are_contiguous(children[0], children[1])

    def test_merge_non_contiguous_raises(self):
        ds = _dataset()
        root = _root(ds)
        splits = {
            "x": partition_median(ds, root, "x"),
            "y": partition_median(ds, root, "y"),
        }
        children = find_combinations(ds, root, splits)
        with pytest.raises(ValueError):
            merged_space(children[0], children[3])

    def test_different_attribute_sets_not_contiguous(self):
        ds = _dataset()
        a = _root(ds, ("x",))
        b = _root(ds, ("x", "y"))
        assert not are_contiguous(a, b)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(0, 100, allow_nan=False), min_size=4, max_size=80
    ),
)
def test_median_split_partition_property(values):
    """Property: a median split always yields two non-empty halves that
    exactly partition the region's rows, and any region with at least two
    distinct values is splittable (tie fallback included)."""
    values = np.asarray(values)
    groups = np.zeros(len(values), dtype=np.int64)
    groups[::2] = 1
    schema = Schema.of([Attribute.continuous("x")])
    ds = Dataset(schema, {"x": values}, groups, ["A", "B"])
    root = full_space(ds, ("x",), np.ones(len(values), dtype=bool))
    halves = partition_median(ds, root, "x")
    if np.unique(values).size < 2:
        assert halves is None
        return
    assert halves is not None
    left, right = halves
    col = ds.column("x")
    n_left = int(left.cover(col).sum())
    n_right = int(right.cover(col).sum())
    assert n_left + n_right == len(values)
    assert n_left >= 1 and n_right >= 1
    assert left.hi == right.lo
    # without heavy ties at the top, the median keeps the right half small
    median = float(np.median(values))
    if median < values.max():
        assert n_right <= len(values) / 2 + 1


class _FakeChunkedColumn:
    """Minimal chunked-dataset duck type for the streaming selector."""

    def __init__(self, chunks):
        self._chunks = [np.asarray(c, dtype=np.float64) for c in chunks]

    def iter_chunk_columns(self, name):
        assert name == "x"
        yield from self._chunks


def _dense_median_expectation(values):
    """The gather path's split point (None when unsplittable)."""
    finite = values[~np.isnan(values)]
    if finite.size == 0:
        return None
    vmin, vmax = float(finite.min()), float(finite.max())
    if vmin == vmax:
        return None
    median = float(np.median(finite))
    if median >= vmax:
        median = float(np.unique(finite)[-2])
    return median


class TestStreamingMedian:
    """The streaming selector reproduces np.median to the bit, with the
    gather fallback forced off via tiny budgets."""

    @given(
        st.lists(
            st.lists(
                st.one_of(
                    st.integers(min_value=-50, max_value=50).map(float),
                    st.floats(
                        min_value=-1e6,
                        max_value=1e6,
                        allow_nan=False,
                    ),
                    st.just(float("nan")),
                ),
                min_size=0,
                max_size=40,
            ),
            min_size=1,
            max_size=6,
        ),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_np_median_bitwise(self, chunks, data):
        from repro.core import partition as part
        from repro.core.cover import Cover

        sizes = tuple(len(c) for c in chunks)
        all_values = np.concatenate(
            [np.asarray(c, dtype=np.float64) for c in chunks]
        ) if chunks else np.zeros(0)
        mask = np.array(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=all_values.size,
                    max_size=all_values.size,
                )
            ),
            dtype=bool,
        )
        cover = Cover.from_dense(mask, sizes)
        fake = _FakeChunkedColumn(chunks)
        # Force the pivot loop to actually narrow: the gather fallback
        # only fires once the window is tiny.
        old = part._STREAM_GATHER_FALLBACK
        part._STREAM_GATHER_FALLBACK = 4
        try:
            got = part._streaming_median_split(fake, cover, "x")
        finally:
            part._STREAM_GATHER_FALLBACK = old
        expected = _dense_median_expectation(all_values[mask])
        if expected is None:
            assert got is None
        else:
            assert got == expected  # bit-identical, not approx

    def test_partition_median_streams_large_spaces(self, monkeypatch):
        """Above the gather budget, partition_median takes the streaming
        path and still produces the dense split point exactly."""
        from repro.core import partition as part
        from repro.core.cover import Cover

        monkeypatch.setattr(part, "MEDIAN_GATHER_BUDGET", 8)
        monkeypatch.setattr(part, "_STREAM_GATHER_FALLBACK", 4)
        rng = np.random.default_rng(7)
        chunks = [rng.normal(size=20) for _ in range(4)]
        values = np.concatenate(chunks)
        sizes = (20, 20, 20, 20)

        class _FakeDataset(_FakeChunkedColumn):
            n_rows = 80

        fake = _FakeDataset(chunks)
        cover = Cover.full(sizes)
        ranges = {"x": AttributeRange("x", float(values.min()),
                                      float(values.max()))}
        space = Space(
            {"x": Interval(float(values.min()), float(values.max()),
                           True, True)},
            cover,
            np.array([80], dtype=np.int64),
            ranges,
        )
        assert space.total_count > part.MEDIAN_GATHER_BUDGET
        halves = partition_median(fake, space, "x")
        assert halves is not None
        assert halves[0].hi == float(np.median(values))
