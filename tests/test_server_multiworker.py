"""Multi-worker serving: SO_REUSEPORT pool under concurrent load + swaps.

The pool's guarantees under test:

* concurrent batch clients against ``workers=2`` see **zero 5xx** while
  a writer keeps publishing new runs into the store;
* every response is consistent with a single store epoch: the epoch it
  names is exactly ``run_seq(run)`` of the run it names, and its matches
  equal what that stored run's index produces for the same rows;
* the merged ``/metrics`` view sums per-worker match counters to exactly
  the number of requests the clients sent;
* platforms without ``SO_REUSEPORT`` degrade to the single-socket
  fallback rather than failing.
"""

import json
import threading
import http.client

import numpy as np
import pytest

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.serve import (
    PatternServer,
    PatternStore,
    ServeConfig,
    reuseport_available,
)
from repro.serve.index import PatternIndex, row_from_dataset
from repro.serve.workers import run_seq

needs_reuseport = pytest.mark.skipif(
    not reuseport_available(), reason="platform lacks SO_REUSEPORT"
)


@pytest.fixture(scope="module")
def mined():
    rng = np.random.default_rng(4242)
    n = 500
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1.0, n)
    )
    color = rng.integers(0, 3, n)
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("color", ["red", "green", "blue"]),
        ]
    )
    dataset = Dataset(schema, {"x": x, "color": color}, group, ["A", "B"])
    result = ContrastSetMiner(MinerConfig(max_tree_depth=2)).mine(dataset)
    assert result.patterns
    return dataset, result


@pytest.fixture
def pool(tmp_path, mined):
    dataset, result = mined
    store = PatternStore(tmp_path / "store")
    first = store.put(result, tags=("seed",))
    server = PatternServer(
        store,
        ServeConfig(port=0, workers=2, store_poll_interval=0.05),
    )
    host, port = server.start()
    yield dataset, result, store, first, server, host, port
    server.stop()


def _post(host, port, path, body):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("POST", path, body=json.dumps(body))
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


@needs_reuseport
class TestMultiWorkerPool:
    N_CLIENT_THREADS = 4
    REQUESTS_PER_THREAD = 40
    BATCH = 8

    def test_pool_mode_and_basic_traffic(self, pool):
        dataset, result, _, first, server, host, port = pool
        assert server.mode == "multi-worker"
        row = row_from_dataset(dataset, 0)
        status, body = _post(host, port, "/match", {"row": row})
        assert status == 200, body
        payload = json.loads(body)
        assert payload["run"] == first
        assert payload["epoch"] == run_seq(first)

    def test_hammer_zero_5xx_epoch_consistent_metrics_sum(self, pool):
        dataset, result, store, first, server, host, port = pool
        rows = [row_from_dataset(dataset, i) for i in range(64)]
        # per stored run: the exact matches its index yields per row,
        # rendered through the same encoder the server uses
        expected_cache: dict[str, list] = {}

        def expected_for(run_id):
            if run_id not in expected_cache:
                stored = store.get(run_id)
                index = PatternIndex(stored.patterns, stored.interests)
                expected_cache[run_id] = [
                    [e.rank for e in index.match(row)] for row in rows
                ]
            return expected_cache[run_id]

        failures: list = []
        sent = [0] * self.N_CLIENT_THREADS
        stop_writer = threading.Event()
        swaps = []

        def writer():
            while not stop_writer.wait(0.15):
                swaps.append(store.put(result, tags=("swap",)))

        def client(slot):
            for i in range(self.REQUESTS_PER_THREAD):
                start = (slot * 7 + i) % (len(rows) - self.BATCH)
                batch = rows[start : start + self.BATCH]
                status, body = _post(host, port, "/match", {"rows": batch})
                sent[slot] += 1
                if status != 200:
                    failures.append(("status", status, body))
                    return
                payload = json.loads(body)
                run_id = payload["run"]
                if payload["epoch"] != run_seq(run_id):
                    failures.append(("epoch", payload["epoch"], run_id))
                    return
                expected = expected_for(run_id)
                for k, res in enumerate(payload["results"]):
                    if res["matches"] != expected[start + k]:
                        failures.append(("matches", run_id, start + k))
                        return

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        clients = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(self.N_CLIENT_THREADS)
        ]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        stop_writer.set()
        writer_thread.join()

        assert not failures, failures[:5]
        assert swaps, "writer never published a run"

        # merged /metrics: per-worker match counters sum to client totals
        status, body = _get(host, port, "/metrics")
        assert status == 200, body
        metrics = json.loads(body)
        assert metrics["mode"] == "multi-worker"
        workers = metrics["workers"]
        assert len(workers) == 2
        assert not any(w.get("unreachable") for w in workers)
        merged_match = metrics["endpoints"]["match"]["requests"]
        per_worker = sum(
            w["endpoints"].get("match", {}).get("requests", 0)
            for w in workers
        )
        assert merged_match == per_worker
        # >= because test_pool_mode runs on a fresh pool; this pool only
        # saw this test's traffic plus the /metrics scrape itself
        assert merged_match == sum(sent)
        assert metrics["endpoints"]["match"]["errors"] == 0

    def test_workers_converge_on_new_run(self, pool):
        dataset, result, store, first, server, host, port = pool
        import time

        second = store.put(result, tags=("later",))
        row = row_from_dataset(dataset, 3)
        deadline = time.monotonic() + 10
        seen = set()
        while time.monotonic() < deadline:
            status, body = _post(host, port, "/match", {"row": row})
            assert status == 200, body
            payload = json.loads(body)
            seen.add(payload["run"])
            if payload["run"] == second:
                assert payload["epoch"] == run_seq(second)
                break
            time.sleep(0.05)
        else:
            pytest.fail(f"pool never converged on {second}; saw {seen}")

    def test_pool_requires_store(self, mined):
        dataset, result = mined
        server = PatternServer(config=ServeConfig(port=0, workers=2))
        server.publish_patterns(result.patterns, result.interests)
        with pytest.raises(RuntimeError, match="store"):
            server.start()

    def test_publish_forbidden_while_pooled(self, pool):
        _, result, _, _, server, _, _ = pool
        with pytest.raises(RuntimeError):
            server.publish_patterns(result.patterns, result.interests)


class TestSingleSocketFallback:
    """workers > 1 without SO_REUSEPORT serves in-process, one socket."""

    def test_fallback_serves(self, tmp_path, mined, monkeypatch):
        dataset, result = mined
        import repro.serve.workers as workers_mod

        monkeypatch.setattr(
            workers_mod, "reuseport_available", lambda: False
        )
        store = PatternStore(tmp_path / "store")
        run_id = store.put(result)
        server = PatternServer(
            store, ServeConfig(port=0, workers=2)
        )
        server.publish_run(run_id)
        host, port = server.start()
        try:
            assert server.mode == "single-socket-fallback"
            row = row_from_dataset(dataset, 0)
            status, body = _post(host, port, "/match", {"row": row})
            assert status == 200, body
            status, body = _get(host, port, "/metrics")
            assert json.loads(body)["mode"] == "single-socket-fallback"
        finally:
            server.stop()
