"""Tests for repro.core.pruning."""

import pytest

from repro.core.contrast import ContrastPattern
from repro.core.items import CategoricalItem, Itemset
from repro.core.pruning import (
    PruneDecision,
    PruneReason,
    PruneTable,
    expected_count_prunes,
    is_pure_space,
    minimum_deviation_prunes,
    redundant_against_subset,
)


def _pattern(counts, sizes=(100, 100)):
    return ContrastPattern(
        itemset=Itemset([CategoricalItem("c", "v")]),
        counts=counts,
        group_sizes=sizes,
        group_labels=("A", "B"),
    )


class TestMinimumDeviation:
    def test_prunes_low_support_everywhere(self):
        assert minimum_deviation_prunes([5, 5], [100, 100], delta=0.1)

    def test_keeps_when_one_group_exceeds(self):
        assert not minimum_deviation_prunes([30, 5], [100, 100], delta=0.1)

    def test_boundary_is_inclusive(self):
        # support exactly delta cannot yield a difference > delta
        assert minimum_deviation_prunes([10, 10], [100, 100], delta=0.1)

    def test_empty_groups(self):
        assert minimum_deviation_prunes([0, 0], [0, 0], delta=0.1)


class TestExpectedCount:
    def test_prunes_tiny_cells(self):
        assert expected_count_prunes([2, 1], [1000, 1000])

    def test_keeps_healthy_cells(self):
        assert not expected_count_prunes([50, 40], [100, 100])

    def test_custom_minimum(self):
        assert expected_count_prunes([6, 6], [100, 100], minimum=7)
        assert not expected_count_prunes([6, 6], [100, 100], minimum=5)


class TestRedundancy:
    def test_identical_difference_is_redundant(self):
        subset = _pattern((60, 20))
        pattern = _pattern((59, 20))
        assert redundant_against_subset(pattern, subset, alpha=0.05)

    def test_pregnant_female_example(self):
        # 'female & pregnant' has the same supports as 'pregnant'
        subset = _pattern((40, 0))
        pattern = _pattern((40, 0))
        assert redundant_against_subset(pattern, subset, alpha=0.05)

    def test_genuinely_different_not_redundant(self):
        subset = _pattern((60, 50))
        pattern = _pattern((60, 5))
        assert not redundant_against_subset(pattern, subset, alpha=0.05)

    def test_tied_subset_uses_pattern_direction(self):
        # the root region has support 1 in both groups; a child with a
        # real difference must NOT be called redundant
        subset = _pattern((100, 100))
        pattern = _pattern((90, 10))
        assert not redundant_against_subset(pattern, subset, alpha=0.05)

    def test_tied_subset_and_tied_pattern(self):
        subset = _pattern((100, 100))
        pattern = _pattern((50, 50))
        assert redundant_against_subset(pattern, subset, alpha=0.05)


class TestPureSpace:
    def test_single_group_is_pure(self):
        assert is_pure_space([0, 10])
        assert is_pure_space([10, 0])

    def test_mixed_not_pure(self):
        assert not is_pure_space([1, 10])

    def test_empty_not_pure(self):
        assert not is_pure_space([0, 0])

    def test_min_count(self):
        assert not is_pure_space([0, 2], min_count=3)
        assert is_pure_space([0, 3], min_count=3)


class TestPruneTable:
    def test_add_contains(self):
        table = PruneTable()
        table.add("key", PruneReason.MIN_DEVIATION)
        assert table.contains("key")
        assert not table.contains("other")
        assert len(table) == 1

    def test_counts_checks_and_hits(self):
        table = PruneTable()
        table.add("key", PruneReason.EMPTY)
        table.contains("key")
        table.contains("nope")
        assert table.checks == 2
        assert table.hits == 1

    def test_reason_lookup(self):
        table = PruneTable()
        table.add("key", PruneReason.REDUNDANT)
        assert table.reason_for("key") is PruneReason.REDUNDANT
        assert table.reason_for("nope") is None

    def test_reason_counts(self):
        table = PruneTable()
        table.add("a", PruneReason.EMPTY)
        table.add("b", PruneReason.EMPTY)
        table.add("c", PruneReason.PURE_SPACE)
        counts = table.reason_counts()
        assert counts[PruneReason.EMPTY] == 2
        assert counts[PruneReason.PURE_SPACE] == 1


class TestPruneDecision:
    def test_keep(self):
        decision = PruneDecision.keep()
        assert not decision.pruned and decision.reason is None

    def test_drop(self):
        decision = PruneDecision.drop(PruneReason.REDUNDANT)
        assert decision.pruned
        assert decision.reason is PruneReason.REDUNDANT
