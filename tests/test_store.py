"""PatternStore durability, corruption detection, and maintenance.

Mirrors the checkpoint suite's stance: every anomaly a loader can meet —
truncated files, flipped bytes, foreign content, version mismatches —
must raise :class:`StoreError`, never a wrong result or a crash deeper
in the stack.  Round trips must be bit-for-bit: patterns, interests,
prune accounting, summary.
"""

import json
import os
from pathlib import Path

import pytest

from repro import ContrastSetMiner, MinerConfig
from repro.serve.store import (
    CorruptRunError,
    PatternStore,
    StoreError,
    UnknownRunError,
)


@pytest.fixture
def result(mixed_dataset):
    return ContrastSetMiner(MinerConfig(max_tree_depth=2)).mine(
        mixed_dataset
    )


@pytest.fixture
def store(tmp_path):
    return PatternStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get_bit_for_bit(self, store, result):
        run_id = store.put(result, tags=("nightly", "adult"))
        run = store.get(run_id)
        assert run.patterns == result.patterns
        assert run.interests == result.interests
        assert run.summary == result.summary()
        assert run.summary.prune_reasons == result.summary().prune_reasons
        assert run.tags == ("nightly", "adult")
        assert run.miner_config() == result.config

    def test_reopen_fresh_instance(self, tmp_path, result):
        run_id = PatternStore(tmp_path / "s").put(result)
        # a brand-new handle (fresh process in real life) sees the run
        reopened = PatternStore(tmp_path / "s", create=False)
        run = reopened.get(run_id)
        assert run.patterns == result.patterns
        assert run.summary == result.summary()

    def test_runs_are_versioned_not_overwritten(self, store, result):
        first = store.put(result)
        second = store.put(result)
        assert first != second
        assert [info.run_id for info in store.list_runs()] == [
            first,
            second,
        ]
        assert store.latest() == second

    def test_fingerprint_matches_checkpoint_fingerprint(
        self, store, result, mixed_dataset
    ):
        from repro.resilience.checkpoint import dataset_fingerprint

        run = store.get(store.put(result))
        assert run.fingerprint == dataset_fingerprint(mixed_dataset)

    def test_mine_with_store_publishes(self, store, mixed_dataset):
        miner = ContrastSetMiner(MinerConfig(max_tree_depth=1))
        result = miner.mine(mixed_dataset, store=store, store_tags=("ci",))
        assert result.run_id is not None
        assert store.get(result.run_id).patterns == result.patterns

    def test_empty_result_round_trips(self, store, mixed_dataset):
        # delta=0.99: nothing passes; the store must cope with 0 patterns
        result = ContrastSetMiner(
            MinerConfig(delta=0.97, max_tree_depth=1)
        ).mine(mixed_dataset)
        run = store.get(store.put(result))
        assert run.patterns == result.patterns
        assert run.summary == result.summary()


class TestOpen:
    def test_create_false_requires_store(self, tmp_path):
        with pytest.raises(StoreError, match="no pattern store"):
            PatternStore(tmp_path / "missing", create=False)

    def test_foreign_manifest_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "manifest.json").write_text('{"whatever": 1}')
        with pytest.raises(StoreError, match="not a repro pattern store"):
            PatternStore(root)

    def test_garbage_manifest_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "manifest.json").write_text("not json {")
        with pytest.raises(StoreError, match="unreadable"):
            PatternStore(root)

    def test_future_layout_version_rejected(self, tmp_path, store, result):
        store.put(result)
        manifest = json.loads((store.root / "manifest.json").read_text())
        manifest["version"] = 99
        (store.root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="layout version"):
            PatternStore(store.root, create=False)


class TestCorruption:
    """Fuzz the on-disk files; every mutation must be detected."""

    def _paths(self, store, run_id):
        run_dir = store.root / "runs" / run_id
        return run_dir / "meta.json", run_dir / "patterns.jsonl"

    def test_unknown_run(self, store):
        with pytest.raises(UnknownRunError):
            store.get("run-999999-cafecafecafe")

    def test_truncated_patterns(self, store, result):
        run_id = store.put(result)
        _, patterns = self._paths(store, run_id)
        blob = patterns.read_bytes()
        patterns.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CorruptRunError, match="checksum"):
            store.get(run_id)

    def test_flipped_byte_in_patterns(self, store, result):
        run_id = store.put(result)
        _, patterns = self._paths(store, run_id)
        blob = bytearray(patterns.read_bytes())
        blob[len(blob) // 3] ^= 0xFF
        patterns.write_bytes(bytes(blob))
        with pytest.raises(CorruptRunError, match="checksum"):
            store.get(run_id)

    def test_missing_patterns_file(self, store, result):
        run_id = store.put(result)
        _, patterns = self._paths(store, run_id)
        patterns.unlink()
        with pytest.raises(CorruptRunError, match="unreadable"):
            store.get(run_id)

    def test_foreign_meta(self, store, result):
        run_id = store.put(result)
        meta, _ = self._paths(store, run_id)
        meta.write_text('{"magic": "something-else"}')
        with pytest.raises(CorruptRunError, match="not a pattern-store"):
            store.get(run_id)

    def test_garbage_meta(self, store, result):
        run_id = store.put(result)
        meta, _ = self._paths(store, run_id)
        meta.write_text("}{")
        with pytest.raises(CorruptRunError, match="unreadable"):
            store.get(run_id)

    def test_schema_version_mismatch_named_in_error(self, store, result):
        run_id = store.put(result)
        meta, _ = self._paths(store, run_id)
        payload = json.loads(meta.read_text())
        payload["serialization"]["schema_version"] = 999
        meta.write_text(json.dumps(payload))
        with pytest.raises(CorruptRunError, match="schema version 999"):
            store.get(run_id)

    def test_count_mismatch(self, store, result):
        run_id = store.put(result)
        meta, patterns = self._paths(store, run_id)
        payload = json.loads(meta.read_text())
        payload["n_patterns"] += 1
        # keep the checksum honest so the count check itself fires
        import hashlib

        payload["patterns_sha256"] = hashlib.sha256(
            patterns.read_bytes()
        ).hexdigest()
        meta.write_text(json.dumps(payload))
        with pytest.raises(CorruptRunError, match="meta records"):
            store.get(run_id)

    def test_corruption_does_not_poison_other_runs(self, store, result):
        bad = store.put(result)
        good = store.put(result)
        _, patterns = self._paths(store, bad)
        patterns.write_bytes(b"garbage\n")
        with pytest.raises(CorruptRunError):
            store.get(bad)
        assert store.get(good).patterns == result.patterns


class TestMaintenance:
    def test_quarantine_moves_files_aside(self, store, result):
        run_id = store.put(result)
        target = store.quarantine(run_id)
        assert target.exists()
        assert not (store.root / "runs" / run_id).exists()
        with pytest.raises(UnknownRunError):
            store.get(run_id)

    def test_gc_removes_crashed_put_leftovers(self, store, result):
        run_id = store.put(result)
        # simulate a put that died before the manifest rewrite
        orphan = store.root / "runs" / "run-000099-deadbeef0000"
        orphan.mkdir()
        (orphan / "patterns.jsonl").write_text("")
        tmp = store.root / "runs" / ".tmp-abandoned"
        tmp.mkdir()
        removed = store.gc()
        assert "run-000099-deadbeef0000" in removed
        assert ".tmp-abandoned" in removed
        assert not orphan.exists()
        assert store.get(run_id).patterns == result.patterns

    def test_remove_then_gc(self, store, result):
        run_id = store.put(result)
        store.remove(run_id)
        assert store.latest() is None
        assert run_id in store.gc()
        assert not (store.root / "runs" / run_id).exists()

    def test_remove_unknown(self, store):
        with pytest.raises(UnknownRunError):
            store.remove("run-000001-000000000000")

    def test_gc_keeps_quarantined_runs(self, store, result):
        run_id = store.put(result)
        store.quarantine(run_id)
        store.gc()
        assert (store.root / "quarantine" / run_id).exists()


class TestKillDurability:
    """put → kill → reopen: the run is either fully there or invisible."""

    def test_kill_before_manifest_update_is_invisible(
        self, tmp_path, result, monkeypatch
    ):
        store = PatternStore(tmp_path / "s")
        survivor = store.put(result)

        original = PatternStore._write_manifest

        def dying_write(self, body):
            raise KeyboardInterrupt  # the process dies here

        monkeypatch.setattr(PatternStore, "_write_manifest", dying_write)
        with pytest.raises(KeyboardInterrupt):
            store.put(result)
        monkeypatch.setattr(PatternStore, "_write_manifest", original)

        reopened = PatternStore(tmp_path / "s", create=False)
        assert [i.run_id for i in reopened.list_runs()] == [survivor]
        assert reopened.get(survivor).patterns == result.patterns
        # the dead put's files are garbage gc can reclaim
        leftovers = reopened.gc()
        assert leftovers  # the orphaned run directory
        assert reopened.get(survivor).patterns == result.patterns

    def test_no_loadable_half_written_run(self, tmp_path, result, monkeypatch):
        """Kill mid-file-write: nothing under a final run name."""
        store = PatternStore(tmp_path / "s")

        def dying_write_bytes(self, data):
            raise KeyboardInterrupt

        monkeypatch.setattr(Path, "write_bytes", dying_write_bytes)
        with pytest.raises(KeyboardInterrupt):
            store.put(result)
        monkeypatch.undo()

        reopened = PatternStore(tmp_path / "s", create=False)
        assert reopened.list_runs() == []
        final_dirs = [
            p
            for p in (reopened.root / "runs").iterdir()
            if not p.name.startswith(".tmp-")
        ]
        assert final_dirs == []
