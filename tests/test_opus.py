"""Tests for the OPUS k-optimal rule discovery baseline."""

import numpy as np
import pytest

from repro.baselines.opus import OpusConfig, opus
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


class TestOpus:
    def test_finds_planted_rule(self, categorical_dataset):
        result = opus(categorical_dataset)
        assert result.rules
        best = result.rules[0]
        assert "tool = T1" in str(best.itemset)
        assert best.target == "bad"
        assert best.leverage > 0

    def test_rules_sorted_by_leverage(self, categorical_dataset):
        result = opus(categorical_dataset)
        levs = [r.leverage for r in result.rules]
        assert levs == sorted(levs, reverse=True)

    def test_k_limits_output(self, categorical_dataset):
        result = opus(categorical_dataset, OpusConfig(k=3))
        assert len(result.rules) <= 3

    def test_leverage_matches_manual(self, categorical_dataset):
        result = opus(categorical_dataset)
        ds = categorical_dataset
        n = ds.n_rows
        for rule in result.top(5):
            mask = rule.itemset.cover(ds)
            target_index = ds.group_index(rule.target)
            joint = int((mask & ds.group_mask(rule.target)).sum())
            manual = joint / n - (mask.sum() / n) * (
                ds.group_sizes[target_index] / n
            )
            assert rule.leverage == pytest.approx(manual)
            assert rule.coverage == int(mask.sum())
            assert rule.target_count == joint

    def test_min_coverage_respected(self, categorical_dataset):
        result = opus(
            categorical_dataset, OpusConfig(min_coverage=100)
        )
        for rule in result.rules:
            assert rule.coverage >= 100

    def test_max_depth_one(self, categorical_dataset):
        result = opus(categorical_dataset, OpusConfig(max_depth=1))
        assert all(len(r.itemset) == 1 for r in result.rules)

    def test_rejects_continuous(self, mixed_dataset):
        with pytest.raises(ValueError, match="categorical"):
            opus(mixed_dataset, attributes=["x"])

    def test_noise_yields_no_strong_rules(self):
        rng = np.random.default_rng(0)
        n = 600
        schema = Schema.of([Attribute.categorical("c", ["a", "b"])])
        ds = Dataset(
            schema,
            {"c": rng.integers(0, 2, n)},
            rng.integers(0, 2, n),
            ["G0", "G1"],
        )
        result = opus(ds, OpusConfig(min_leverage=0.02))
        assert all(r.leverage <= 0.05 for r in result.rules)

    def test_as_patterns_deduplicates(self, categorical_dataset):
        result = opus(categorical_dataset)
        patterns = result.as_patterns(categorical_dataset)
        itemsets = [p.itemset for p in patterns]
        assert len(itemsets) == len(set(itemsets))
        # pattern counts verify against the data
        for pattern in patterns[:5]:
            mask = pattern.itemset.cover(categorical_dataset)
            counts = tuple(
                int(c)
                for c in categorical_dataset.group_counts(mask)
            )
            assert counts == pattern.counts

    def test_pruning_reduces_evaluations(self, categorical_dataset):
        wide = opus(categorical_dataset, OpusConfig(k=100, max_depth=2))
        narrow = opus(categorical_dataset, OpusConfig(k=1, max_depth=2))
        # a tighter top-k raises the pruning threshold faster
        assert (
            narrow.stats.partitions_evaluated
            <= wide.stats.partitions_evaluated
        )

    def test_confidence(self, categorical_dataset):
        result = opus(categorical_dataset)
        for rule in result.top(5):
            assert 0.0 <= rule.confidence <= 1.0

    def test_empty_dataset(self):
        schema = Schema.of([Attribute.categorical("c", ["a"])])
        ds = Dataset(
            schema,
            {"c": np.array([], dtype=np.int64)},
            np.array([], dtype=np.int64),
            ["G0", "G1"],
        )
        assert opus(ds).rules == []

    def test_agrees_with_stucco_on_top_signal(self, categorical_dataset):
        """Webb's claim: Magnum Opus performs the contrast-set task —
        its top rule should match STUCCO's top contrast."""
        from repro.baselines.stucco import stucco

        opus_best = opus(categorical_dataset).rules[0].itemset
        stucco_best = stucco(categorical_dataset).patterns[0].itemset
        assert opus_best == stucco_best
