"""Tests for the Fayyad-Irani entropy/MDLP discretizer."""

import numpy as np
import pytest

from repro.baselines.fayyad import (
    entropy,
    fayyad_binning,
    fayyad_discretize,
    information_gain,
    mdlp_criterion,
)
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.array([10, 0])) == 0.0

    def test_uniform_is_log2(self):
        assert entropy(np.array([5, 5])) == pytest.approx(1.0)
        assert entropy(np.array([4, 4, 4, 4])) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert entropy(np.array([0, 0])) == 0.0


class TestInformationGain:
    def test_perfect_split(self):
        left = np.zeros(50, dtype=int)
        right = np.ones(50, dtype=int)
        assert information_gain(left, right, 2) == pytest.approx(1.0)

    def test_useless_split(self):
        left = np.array([0, 1] * 25)
        right = np.array([0, 1] * 25)
        assert information_gain(left, right, 2) == pytest.approx(0.0)


class TestMDLP:
    def test_accepts_clean_split(self):
        left = np.zeros(200, dtype=int)
        right = np.ones(200, dtype=int)
        assert mdlp_criterion(left, right, 2)

    def test_rejects_random_split(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 2, 200)
        right = rng.integers(0, 2, 200)
        assert not mdlp_criterion(left, right, 2)

    def test_tiny_samples_rejected(self):
        assert not mdlp_criterion(np.array([0]), np.array([]), 2)


def _planted(n=1000, boundary=0.4, seed=0):
    rng = np.random.default_rng(seed)
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0,
        rng.uniform(0, boundary, n),
        rng.uniform(boundary, 1, n),
    )
    noise = rng.uniform(0, 1, n)
    schema = Schema.of(
        [Attribute.continuous("x"), Attribute.continuous("noise")]
    )
    return Dataset(
        schema, {"x": x, "noise": noise}, group, ["A", "B"]
    )


class TestFayyadBinning:
    def test_finds_planted_boundary(self):
        ds = _planted()
        binning = fayyad_binning(ds, "x")
        assert binning.cuts
        assert min(abs(c - 0.4) for c in binning.cuts) < 0.02

    def test_no_cut_in_noise(self):
        ds = _planted()
        binning = fayyad_binning(ds, "noise")
        assert binning.cuts == ()

    def test_constant_column(self):
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.ones(100)},
            np.array([0, 1] * 50),
            ["A", "B"],
        )
        assert fayyad_binning(ds, "x").cuts == ()

    def test_discretize_all(self):
        ds = _planted()
        view = fayyad_discretize(ds)
        assert set(view.binnings) == {"x", "noise"}
        assert view.dataset.attribute("x").is_categorical

    def test_multi_boundary(self):
        """Three class-bands along x need two cuts."""
        rng = np.random.default_rng(2)
        n = 1500
        x = rng.uniform(0, 3, n)
        group = (x.astype(int) % 2).astype(np.int64)  # bands 0,1,2 -> 0,1,0
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(schema, {"x": x}, group, ["A", "B"])
        binning = fayyad_binning(ds, "x")
        assert len(binning.cuts) >= 2
        assert min(abs(c - 1.0) for c in binning.cuts) < 0.05
        assert min(abs(c - 2.0) for c in binning.cuts) < 0.05
