"""Tests for repro.dataset.table.Dataset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset, DatasetError


def _small_dataset():
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("c", ["a", "b"]),
        ]
    )
    return Dataset(
        schema,
        {
            "x": np.array([0.1, 0.5, 0.9, 0.3]),
            "c": np.array([0, 1, 0, 1]),
        },
        np.array([0, 0, 1, 1]),
        ["G1", "G2"],
    )


class TestConstruction:
    def test_basic(self):
        ds = _small_dataset()
        assert ds.n_rows == 4
        assert len(ds) == 4
        assert ds.n_groups == 2
        assert ds.group_sizes == (2, 2)

    def test_missing_column(self):
        schema = Schema.of([Attribute.continuous("x")])
        with pytest.raises(DatasetError, match="missing columns"):
            Dataset(schema, {}, np.array([0]), ["G"])

    def test_extra_column(self):
        schema = Schema.of([Attribute.continuous("x")])
        with pytest.raises(DatasetError, match="not in schema"):
            Dataset(
                schema,
                {"x": np.array([1.0]), "y": np.array([1.0])},
                np.array([0]),
                ["G"],
            )

    def test_length_mismatch(self):
        schema = Schema.of([Attribute.continuous("x")])
        with pytest.raises(DatasetError, match="rows"):
            Dataset(
                schema, {"x": np.array([1.0, 2.0])}, np.array([0]), ["G"]
            )

    def test_group_code_out_of_range(self):
        schema = Schema.of([Attribute.continuous("x")])
        with pytest.raises(DatasetError, match="out of range"):
            Dataset(schema, {"x": np.array([1.0])}, np.array([5]), ["G"])

    def test_categorical_code_out_of_range(self):
        schema = Schema.of([Attribute.categorical("c", ["a"])])
        with pytest.raises(DatasetError, match="out of range"):
            Dataset(schema, {"c": np.array([3])}, np.array([0]), ["G"])

    def test_categorical_requires_int_codes(self):
        schema = Schema.of([Attribute.categorical("c", ["a"])])
        with pytest.raises(DatasetError, match="codes"):
            Dataset(schema, {"c": np.array([0.5])}, np.array([0]), ["G"])

    def test_duplicate_group_labels(self):
        schema = Schema.of([Attribute.continuous("x")])
        with pytest.raises(DatasetError, match="duplicate"):
            Dataset(
                schema, {"x": np.array([1.0])}, np.array([0]), ["G", "G"]
            )

    def test_from_records(self):
        schema = Schema.of(
            [
                Attribute.continuous("x"),
                Attribute.categorical("c", ["a", "b"]),
            ]
        )
        ds = Dataset.from_records(
            [
                {"x": 1.5, "c": "a", "group": "G1"},
                {"x": 2.5, "c": "b", "group": "G2"},
            ],
            schema,
        )
        assert ds.n_rows == 2
        assert ds.group_labels == ("G1", "G2")
        assert ds.column("x")[0] == pytest.approx(1.5)
        assert ds.column("c")[1] == 1

    def test_from_records_unknown_group(self):
        schema = Schema.of([Attribute.continuous("x")])
        with pytest.raises(DatasetError, match="unknown group"):
            Dataset.from_records(
                [{"x": 1, "group": "Z"}], schema, group_labels=["A"]
            )


class TestAccessors:
    def test_columns_read_only(self):
        ds = _small_dataset()
        with pytest.raises(ValueError):
            ds.column("x")[0] = 99.0
        with pytest.raises(ValueError):
            ds.group_codes[0] = 1

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            _small_dataset().column("nope")

    def test_group_info(self):
        info = _small_dataset().group_info
        assert info.n_groups == 2
        assert info.size_of("G1") == 2

    def test_group_index_and_mask(self):
        ds = _small_dataset()
        assert ds.group_index("G2") == 1
        assert ds.group_mask("G1").sum() == 2
        with pytest.raises(DatasetError):
            ds.group_index("nope")


class TestCounting:
    def test_group_counts_full(self):
        ds = _small_dataset()
        assert list(ds.group_counts()) == [2, 2]

    def test_group_counts_masked(self):
        ds = _small_dataset()
        mask = np.array([True, False, True, False])
        assert list(ds.group_counts(mask)) == [1, 1]

    def test_group_counts_bad_mask(self):
        ds = _small_dataset()
        with pytest.raises(DatasetError):
            ds.group_counts(np.array([1, 0, 1, 0]))
        with pytest.raises(DatasetError):
            ds.group_counts(np.array([True]))

    def test_supports(self):
        ds = _small_dataset()
        mask = np.array([True, True, True, False])
        supports = ds.supports(mask)
        assert supports[0] == pytest.approx(1.0)
        assert supports[1] == pytest.approx(0.5)

    def test_supports_empty_group(self):
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema, {"x": np.array([1.0])}, np.array([0]), ["A", "B"]
        )
        assert ds.supports()[1] == 0.0


class TestRestriction:
    def test_restrict(self):
        ds = _small_dataset()
        sub = ds.restrict(np.array([True, False, False, True]))
        assert sub.n_rows == 2
        assert list(sub.column("x")) == pytest.approx([0.1, 0.3])
        assert sub.group_labels == ds.group_labels

    def test_select_groups_recode(self):
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.arange(6, dtype=float)},
            np.array([0, 1, 2, 0, 1, 2]),
            ["A", "B", "C"],
        )
        sub = ds.select_groups(["C", "A"])
        assert sub.group_labels == ("C", "A")
        assert sub.n_rows == 4
        assert sub.group_sizes == (2, 2)
        # rows with original group C must now have code 0
        assert list(sub.column("x")[sub.group_codes == 0]) == [2.0, 5.0]

    def test_project(self):
        ds = _small_dataset()
        sub = ds.project(["c"])
        assert sub.schema.names == ("c",)
        assert sub.n_rows == 4
        assert sub.group_sizes == ds.group_sizes

    def test_describe_mentions_groups(self):
        text = _small_dataset().describe()
        assert "G1=2" in text and "G2=2" in text


@settings(max_examples=50, deadline=None)
@given(
    codes=st.lists(st.integers(0, 2), min_size=1, max_size=60),
    data=st.data(),
)
def test_supports_match_manual_count(codes, data):
    """Property: supports equal manual per-group count ratios."""
    n = len(codes)
    mask = np.array(
        data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    )
    schema = Schema.of([Attribute.continuous("x")])
    ds = Dataset(
        schema,
        {"x": np.zeros(n)},
        np.array(codes),
        ["A", "B", "C"],
    )
    supports = ds.supports(mask)
    for g in range(3):
        size = codes.count(g)
        hit = sum(1 for c, m in zip(codes, mask) if c == g and m)
        expected = hit / size if size else 0.0
        assert supports[g] == pytest.approx(expected)
