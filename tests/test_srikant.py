"""Tests for the Srikant-Agrawal equi-depth baseline."""

import numpy as np
import pytest

from repro.baselines.srikant import srikant_binning, srikant_discretize
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _uniform_dataset(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema.of([Attribute.continuous("x")])
    return Dataset(
        schema,
        {"x": rng.uniform(0, 1, n)},
        rng.integers(0, 2, n),
        ["A", "B"],
    )


class TestSrikantBinning:
    def test_partitions_bounded_by_max_support(self):
        ds = _uniform_dataset()
        binning = srikant_binning(ds, "x", n_partitions=20, max_support=0.15)
        ids = binning.assign(ds.column("x"))
        fractions = np.bincount(ids) / ds.n_rows
        # each merged bin stays at or near the ceiling (the last run and
        # unmergeable singles may be smaller)
        assert fractions.max() <= 0.15 + 1e-9

    def test_merging_reduces_bins(self):
        ds = _uniform_dataset()
        fine = srikant_binning(ds, "x", n_partitions=20, max_support=0.0)
        merged = srikant_binning(ds, "x", n_partitions=20, max_support=0.3)
        assert merged.n_bins < fine.n_bins

    def test_zero_ceiling_keeps_all_cuts(self):
        ds = _uniform_dataset()
        binning = srikant_binning(ds, "x", n_partitions=10, max_support=0.0)
        assert binning.n_bins == 10

    def test_invalid_partitions(self):
        ds = _uniform_dataset()
        with pytest.raises(ValueError):
            srikant_binning(ds, "x", n_partitions=0)

    def test_empty_column(self):
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.array([], dtype=float)},
            np.array([], dtype=np.int64),
            ["A", "B"],
        )
        assert srikant_binning(ds, "x").cuts == ()

    def test_discretize_view(self):
        ds = _uniform_dataset()
        view = srikant_discretize(ds, n_partitions=8)
        assert view.dataset.attribute("x").is_categorical
