"""Tests for the UCI stand-in generators (Table 2 fidelity + planted
structure)."""

import numpy as np
import pytest

from repro.dataset import uci


class TestShapes:
    @pytest.mark.parametrize("name", sorted(uci.DATASET_REGISTRY))
    def test_table2_shape(self, name):
        ds = uci.load(name)
        labels, _, n_features, n_continuous = uci.TABLE2_SHAPES[name]
        assert ds.group_labels == labels
        assert len(ds.schema) == n_features
        assert len(ds.schema.continuous_names) == n_continuous

    @pytest.mark.parametrize(
        "name", ["adult", "breast_cancer", "mammography", "transfusion",
                 "spambase", "ionosphere"]
    )
    def test_full_scale_row_counts(self, name):
        ds = uci.load(name)
        _, (n0, n1), _, _ = uci.TABLE2_SHAPES[name]
        assert ds.group_sizes == (n0, n1)

    def test_scaled_datasets_preserve_ratio(self):
        ds = uci.shuttle(scale=0.1)
        _, (n0, n1), _, _ = uci.TABLE2_SHAPES["shuttle"]
        assert ds.group_sizes[0] / ds.group_sizes[1] == pytest.approx(
            n0 / n1, rel=0.05
        )

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            uci.load("nope")

    def test_determinism(self):
        a = uci.transfusion()
        b = uci.transfusion()
        assert np.array_equal(
            a.column("recency_months"), b.column("recency_months")
        )


class TestAdultStructure:
    """The Figure 4 / Table 1 / Table 3 anchors."""

    @pytest.fixture(scope="class")
    def ds(self):
        return uci.adult()

    def test_young_doctorates_absent(self, ds):
        age = ds.column("age")
        mask = (age > 18) & (age <= 26)
        supports = ds.supports(mask)
        # Table 1 row 1: supp(Doc) = 0, supp(Bach) ~ 0.16
        assert supports[1] < 0.005
        assert 0.05 < supports[0] < 0.3

    def test_older_range_doctorate_heavy(self, ds):
        age = ds.column("age")
        mask = (age > 47) & (age <= 90)
        supports = ds.supports(mask)
        # Table 1 row 2: supp(Doc) ~ 0.48 vs supp(Bach) ~ 0.22
        assert supports[1] > supports[0]
        assert supports[1] > 0.35

    def test_long_hours_doctorate_heavy(self, ds):
        hours = ds.column("hours-per-week")
        mask = (hours > 50) & (hours <= 99)
        supports = ds.supports(mask)
        assert supports[1] > supports[0]

    def test_age_hours_interaction(self, ds):
        """Table 1 row 5: prime-age doctorates working 50+ hours is a
        higher-purity contrast than either marginal."""
        age = ds.column("age")
        hours = ds.column("hours-per-week")
        joint = (age > 49) & (age <= 69) & (hours > 50)
        supports = ds.supports(joint)
        assert supports[1] > 3 * supports[0]

    def test_prof_specialty_supports(self, ds):
        attr = ds.attribute("occupation")
        mask = ds.column("occupation") == attr.code_of("Prof-specialty")
        supports = ds.supports(mask)
        # Table 3: 0.76 vs 0.28
        assert supports[1] == pytest.approx(0.76, abs=0.05)
        assert supports[0] == pytest.approx(0.28, abs=0.05)

    def test_sex_and_class_supports(self, ds):
        sex = ds.attribute("sex")
        male = ds.supports(ds.column("sex") == sex.code_of("Male"))
        assert male[1] == pytest.approx(0.81, abs=0.05)
        assert male[0] == pytest.approx(0.69, abs=0.05)
        klass = ds.attribute("class")
        rich = ds.supports(ds.column("class") == klass.code_of(">50K"))
        assert rich[1] == pytest.approx(0.73, abs=0.05)
        assert rich[0] == pytest.approx(0.41, abs=0.05)


class TestShuttleStructure:
    def test_quoted_level1_contrasts(self):
        ds = uci.shuttle()
        attr1 = ds.supports(ds.column("Attr_1") <= 54)
        # paper: 0.91 vs 0.01
        assert attr1[0] == pytest.approx(0.91, abs=0.04)
        assert attr1[1] < 0.05
        attr9 = ds.supports(ds.column("Attr_9") <= 2)
        # paper: 0.77 vs 0
        assert attr9[0] == pytest.approx(0.77, abs=0.04)
        assert attr9[1] < 0.01


class TestSignalBands:
    """Separability ordering must match the Table 4 bands: strong
    (breast, ionosphere, shuttle) > weak (credit card, transfusion)."""

    @staticmethod
    def _best_level1_diff(ds, attributes=None):
        from repro.core.items import Itemset
        from repro.core.sdad import sdad_cs
        from repro.core.config import MinerConfig

        best = 0.0
        names = attributes or ds.schema.continuous_names[:8]
        for name in names:
            result = sdad_cs(ds, Itemset(), [name], MinerConfig(k=10))
            for pattern in result.patterns:
                best = max(best, pattern.support_difference)
        return best

    def test_strong_vs_weak(self):
        strong = self._best_level1_diff(uci.breast_cancer())
        weak = self._best_level1_diff(uci.credit_card(scale=0.05))
        assert strong > 0.6
        assert strong > weak
