"""Tests for pattern explanations and holdout validation."""

import math

import numpy as np
import pytest

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.analysis.explain import briefing, explain_pattern
from repro.analysis.validation import validate_patterns
from repro.core.contrast import ContrastPattern
from repro.core.items import (
    CategoricalItem,
    Interval,
    Itemset,
    NumericItem,
)
from repro.dataset.sampling import train_holdout_split


def _pattern(items, counts, sizes=(100, 100), labels=("ok", "bad")):
    return ContrastPattern(
        itemset=Itemset(items),
        counts=counts,
        group_sizes=sizes,
        group_labels=labels,
    )


class TestExplainPattern:
    def test_categorical_phrase(self):
        p = _pattern([CategoricalItem("tool", "T1")], (10, 60))
        text = explain_pattern(p).headline
        assert "tool is T1" in text
        assert "'bad'" in text

    def test_bounded_interval_phrase(self):
        p = _pattern(
            [NumericItem("temp", Interval(80.0, 95.0))], (10, 60)
        )
        assert "between 80 and 95" in explain_pattern(p).headline

    def test_half_open_interval_phrases(self):
        low = _pattern(
            [NumericItem("temp", Interval(-math.inf, 50.0))], (60, 10)
        )
        assert "at most 50" in explain_pattern(low).headline
        high = _pattern(
            [NumericItem("temp", Interval(50.0, math.inf, False, False))],
            (60, 10),
        )
        assert "above 50" in explain_pattern(high).headline

    def test_effect_ratio(self):
        p = _pattern([CategoricalItem("t", "a")], (10, 60))
        explanation = explain_pattern(p)
        assert explanation.effect_ratio == pytest.approx(6.0)

    def test_exclusive_pattern(self):
        p = _pattern([CategoricalItem("t", "a")], (0, 60))
        explanation = explain_pattern(p)
        assert "exclusively" in explanation.headline
        assert explanation.effect_ratio == 999.0

    def test_detail_includes_stats(self):
        p = _pattern([CategoricalItem("t", "a")], (10, 60))
        detail = explain_pattern(p).detail
        assert "support difference 0.50" in detail
        assert "p-value" in detail

    def test_multi_item_conjunction(self):
        p = _pattern(
            [
                CategoricalItem("tool", "T1"),
                NumericItem("temp", Interval(80.0, 95.0)),
            ],
            (5, 50),
        )
        head = explain_pattern(p).headline
        assert " and " in head


class TestBriefing:
    def test_groups_sections(self):
        patterns = [
            _pattern([CategoricalItem("t", "a")], (10, 60)),
            _pattern([CategoricalItem("t", "b")], (70, 20)),
        ]
        text = briefing(patterns)
        assert "Characteristic of 'bad':" in text
        assert "Characteristic of 'ok':" in text

    def test_empty(self):
        assert "No significant contrasts" in briefing([])

    def test_max_items(self):
        patterns = [
            _pattern([CategoricalItem("t", f"v{i}")], (10, 60))
            for i in range(8)
        ]
        # trick: different itemsets, same stats
        text = briefing(patterns, max_items=3)
        assert "  3. " in text
        assert "  4. " not in text


class TestValidation:
    @pytest.fixture(scope="class")
    def splits(self):
        rng = np.random.default_rng(77)
        n = 2000
        group = rng.integers(0, 2, n)
        x = np.where(
            group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1, n)
        )
        noise = rng.uniform(0, 1, n)
        schema = Schema.of(
            [Attribute.continuous("x"), Attribute.continuous("noise")]
        )
        ds = Dataset(
            schema, {"x": x, "noise": noise}, group, ["A", "B"]
        )
        return train_holdout_split(ds, 0.4, seed=1)

    def test_real_patterns_survive(self, splits):
        train, holdout = splits
        result = ContrastSetMiner(MinerConfig(k=10)).mine(train)
        report = validate_patterns(result.patterns, holdout)
        assert report.n_patterns > 0
        # the strong planted x-contrasts survive
        strong = [
            v
            for v in report.validations
            if v.train_difference > 0.5
        ]
        assert strong
        assert all(v.survived for v in strong)
        assert report.survival_rate > 0.4

    def test_shrinkage_near_one_for_real_effects(self, splits):
        train, holdout = splits
        result = ContrastSetMiner(MinerConfig(k=5)).mine(
            train, attributes=["x"]
        )
        report = validate_patterns(result.patterns, holdout)
        assert report.mean_shrinkage == pytest.approx(1.0, abs=0.15)

    def test_direction_check(self, splits):
        train, holdout = splits
        result = ContrastSetMiner(MinerConfig(k=5)).mine(
            train, attributes=["x"]
        )
        flipped = validate_patterns(
            result.patterns, holdout, same_direction=True
        )
        relaxed = validate_patterns(
            result.patterns, holdout, same_direction=False
        )
        assert flipped.n_survived <= relaxed.n_survived

    def test_empty_patterns(self, splits):
        __, holdout = splits
        report = validate_patterns([], holdout)
        assert report.n_patterns == 0
        assert report.survival_rate == 0.0
        assert "0/0" in report.formatted()

    def test_survivors_list(self, splits):
        train, holdout = splits
        result = ContrastSetMiner(MinerConfig(k=10)).mine(train)
        report = validate_patterns(result.patterns, holdout)
        assert len(report.survivors()) == report.n_survived
