"""Property-based tests of whole-miner invariants (hypothesis).

These generate small random mixed datasets and check the contracts that
must hold regardless of the data:

* every reported pattern is a large and significant contrast whose counts
  match a recount on the raw data;
* the top-k list is sorted by the configured interest measure;
* the no-pruning variant never reports fewer patterns nor evaluates fewer
  partitions;
* group permutation invariance: relabelling groups only relabels outputs;
* interest-measure identities (Eqs. 12-13) on arbitrary valid count
  vectors: purity ratio stays in range and hits 1 exactly on pure
  spaces, the Surprising Measure factorises as PR x Diff, and the
  support difference is symmetric under group reversal.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Attribute,
    CategoricalItem,
    ContrastPattern,
    ContrastSetMiner,
    Dataset,
    Itemset,
    MinerConfig,
    Schema,
)


@st.composite
def small_datasets(draw):
    """Random mixed dataset: 80-200 rows, 1 continuous + 1 categorical
    attribute, with a planted signal of random strength."""
    n = draw(st.integers(80, 200))
    seed = draw(st.integers(0, 2**31 - 1))
    strength = draw(st.floats(0.0, 1.0))
    rng = np.random.default_rng(seed)
    group = rng.integers(0, 2, n)
    x = rng.uniform(0, 1, n) + strength * group
    cat = rng.integers(0, 2, n)
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("c", ["u", "v"]),
        ]
    )
    return Dataset(
        schema, {"x": x, "c": cat}, group, ["G0", "G1"]
    )


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(dataset=small_datasets())
def test_patterns_are_verified_contrasts(dataset):
    config = MinerConfig(k=20, max_tree_depth=2)
    result = ContrastSetMiner(config).mine(dataset)
    for pattern in result.patterns:
        # counts must match a recount
        mask = pattern.itemset.cover(dataset)
        counts = tuple(int(c) for c in dataset.group_counts(mask))
        assert counts == pattern.counts
        # largeness always holds; significance held at the (stricter)
        # Bonferroni-adjusted level during mining
        assert pattern.support_difference > config.delta
        assert pattern.chi_square.p_value < config.alpha


@_SETTINGS
@given(dataset=small_datasets())
def test_results_sorted_by_interest(dataset):
    result = ContrastSetMiner(MinerConfig(k=20)).mine(dataset)
    interests = [result.interest_of(p) for p in result.patterns]
    assert interests == sorted(interests, reverse=True)


@_SETTINGS
@given(dataset=small_datasets())
def test_np_is_a_superset_machine(dataset):
    config = MinerConfig(k=500, max_tree_depth=2)
    full = ContrastSetMiner(config).mine(dataset)
    np_run = ContrastSetMiner(config.no_pruning()).mine(dataset)
    assert len(np_run.patterns) >= len(full.patterns)
    assert (
        np_run.stats.partitions_evaluated
        >= full.stats.partitions_evaluated
    )


@_SETTINGS
@given(dataset=small_datasets())
def test_group_relabelling_invariance(dataset):
    """Swapping group labels must produce the same itemsets with the
    supports swapped."""
    config = MinerConfig(k=20, max_tree_depth=2)
    result = ContrastSetMiner(config).mine(dataset)

    swapped = Dataset(
        dataset.schema,
        {name: dataset.column(name) for name in dataset.schema.names},
        1 - np.asarray(dataset.group_codes),
        ("G1", "G0"),
    )
    result_swapped = ContrastSetMiner(config).mine(swapped)

    original = {
        p.itemset: p.supports for p in result.patterns
    }
    mirrored = {
        p.itemset: p.supports for p in result_swapped.patterns
    }
    assert set(original) == set(mirrored)
    for itemset, supports in original.items():
        assert mirrored[itemset] == pytest.approx(supports[::-1])


@_SETTINGS
@given(dataset=small_datasets(), delta=st.floats(0.05, 0.4))
def test_delta_monotonicity(dataset, delta):
    """Raising delta can only shrink the set of reported contrasts."""
    low = ContrastSetMiner(
        MinerConfig(k=500, delta=0.05, max_tree_depth=1)
    ).mine(dataset)
    high = ContrastSetMiner(
        MinerConfig(k=500, delta=delta, max_tree_depth=1)
    ).mine(dataset)
    # every high-delta pattern also passes the low-delta bar; the
    # discretization is identical at level 1 for the same data
    assert len(high.patterns) <= len(low.patterns) or all(
        p.support_difference > 0.05 for p in high.patterns
    )
    for pattern in high.patterns:
        assert pattern.support_difference > delta


@_SETTINGS
@given(dataset=small_datasets())
def test_pure_noise_finds_nothing_strong(dataset):
    """On permuted (group-shuffled) data no strong contrast may survive:
    shuffling destroys any real association."""
    rng = np.random.default_rng(0)
    shuffled_codes = np.asarray(dataset.group_codes).copy()
    rng.shuffle(shuffled_codes)
    shuffled = Dataset(
        dataset.schema,
        {name: dataset.column(name) for name in dataset.schema.names},
        shuffled_codes,
        dataset.group_labels,
    )
    result = ContrastSetMiner(MinerConfig(k=20)).mine(shuffled)
    for pattern in result.patterns:
        # chance contrasts on ~100-200 shuffled rows stay weak
        assert pattern.support_difference < 0.6


# ---------------------------------------------------------------------------
# Interest-measure identities on arbitrary valid count vectors
# ---------------------------------------------------------------------------


@st.composite
def count_patterns(draw):
    """An arbitrary valid two-group ContrastPattern (counts <= sizes)."""
    size_a = draw(st.integers(1, 500))
    size_b = draw(st.integers(1, 500))
    count_a = draw(st.integers(0, size_a))
    count_b = draw(st.integers(0, size_b))
    itemset = Itemset([CategoricalItem("c", "v")])
    return ContrastPattern(
        itemset=itemset,
        counts=(count_a, count_b),
        group_sizes=(size_a, size_b),
        group_labels=("G0", "G1"),
    )


@settings(deadline=None)
@given(pattern=count_patterns())
def test_purity_ratio_bounded(pattern):
    """PR is non-negative and (for supports in [0, 1]) never exceeds 1 —
    comfortably inside the measure's [0, inf) contract."""
    assert 0.0 <= pattern.purity_ratio <= 1.0


@settings(deadline=None)
@given(pattern=count_patterns())
def test_purity_ratio_one_iff_pure_space(pattern):
    """PR = 1 exactly when the covered region is pure: the min-support
    group contributes no rows while the other one does (Eq. 12)."""
    supports = sorted(pattern.supports)
    is_pure = supports[0] == 0.0 and supports[-1] > 0.0
    assert (pattern.purity_ratio == 1.0) == is_pure


@settings(deadline=None)
@given(pattern=count_patterns())
def test_surprising_factorises(pattern):
    """Surprising Measure = PR x Diff, exactly (Eq. 13)."""
    assert pattern.surprising_measure == (
        pattern.purity_ratio * pattern.support_difference
    )
    assert pattern.surprising_measure <= pattern.support_difference


@settings(deadline=None)
@given(pattern=count_patterns())
def test_support_difference_symmetric_under_group_swap(pattern):
    """Reversing the group order changes nothing about |Diff| — the
    measure contrasts groups, it does not privilege one."""
    swapped = ContrastPattern(
        itemset=pattern.itemset,
        counts=pattern.counts[::-1],
        group_sizes=pattern.group_sizes[::-1],
        group_labels=pattern.group_labels[::-1],
    )
    assert swapped.support_difference == pattern.support_difference
    assert swapped.purity_ratio == pattern.purity_ratio
    assert swapped.surprising_measure == pattern.surprising_measure
