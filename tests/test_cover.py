"""Property suite for the packed per-chunk Cover (DESIGN.md §13).

The Cover invariants the whole Cover-native search stack rests on:

* packed boolean algebra equals dense boolean algebra — ``&`` / ``|``
  on segments commute with ``np.packbits`` (padding bits are stable);
* ``count`` / ``group_counts`` are the exact integer tallies of the
  dense mask (``mask.sum()`` / ``bincount`` of codes inside the mask);
* the chunking is a representation detail: any chunk split of the same
  dense mask densifies, counts, and combines identically (including
  empty, full, and single-row chunks);
* pickles are materialised packed words — ~``n_rows / 8`` bytes plus
  small overhead, never a dense mask or a thunk.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cover import Cover


def chunk_splits(n: int) -> st.SearchStrategy:
    """Strategies for splitting n rows into chunk sizes (zeros allowed)."""

    @st.composite
    def split(draw):
        sizes = []
        remaining = n
        while remaining > 0:
            take = draw(st.integers(min_value=1, max_value=remaining))
            sizes.append(take)
            remaining -= take
            if draw(st.booleans()):
                sizes.append(0)  # empty chunks are legal anywhere
        if not sizes:
            sizes = [0]
        return tuple(sizes)

    return split()


@st.composite
def mask_and_chunks(draw, max_rows: int = 200):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    mask = np.array(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    sizes = draw(chunk_splits(n))
    return mask, sizes


@st.composite
def two_masks_and_chunks(draw, max_rows: int = 200):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    a = np.array(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    b = np.array(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    sizes = draw(chunk_splits(n))
    return a, b, sizes


_SETTINGS = settings(max_examples=100, deadline=None)


class TestDenseParity:
    @given(mask_and_chunks())
    @_SETTINGS
    def test_round_trip(self, mc):
        mask, sizes = mc
        cover = Cover.from_dense(mask, sizes)
        assert cover.chunk_sizes == sizes
        assert cover.n_rows == mask.shape[0]
        assert np.array_equal(cover.to_dense(), mask)

    @given(mask_and_chunks())
    @_SETTINGS
    def test_count_matches_dense_sum(self, mc):
        mask, sizes = mc
        assert Cover.from_dense(mask, sizes).count() == int(mask.sum())

    @given(two_masks_and_chunks())
    @_SETTINGS
    def test_and_or_match_dense_algebra(self, mc):
        a, b, sizes = mc
        ca = Cover.from_dense(a, sizes)
        cb = Cover.from_dense(b, sizes)
        assert np.array_equal((ca & cb).to_dense(), a & b)
        assert np.array_equal((ca | cb).to_dense(), a | b)

    @given(two_masks_and_chunks())
    @_SETTINGS
    def test_packed_algebra_is_canonical(self, mc):
        """AND/OR of packed segments equals packing the dense AND/OR —
        padding bits stay zero, so segments are comparable bytewise."""
        a, b, sizes = mc
        anded = Cover.from_dense(a, sizes) & Cover.from_dense(b, sizes)
        repacked = Cover.from_dense(a & b, sizes)
        for i in range(anded.n_chunks):
            assert np.array_equal(anded.segment(i), repacked.segment(i))

    @given(mask_and_chunks(), st.integers(min_value=1, max_value=4))
    @_SETTINGS
    def test_group_counts_match_bincount(self, mc, n_groups):
        mask, sizes = mc
        rng = np.random.default_rng(mask.shape[0] * 31 + n_groups)
        codes = rng.integers(0, n_groups, size=mask.shape[0])
        stacks = []
        offset = 0
        for n in sizes:
            chunk_codes = codes[offset:offset + n]
            stacks.append(
                np.stack(
                    [np.packbits(chunk_codes == g) for g in range(n_groups)]
                )
            )
            offset += n
        got = Cover.from_dense(mask, sizes).group_counts(stacks)
        expected = np.bincount(codes[mask], minlength=n_groups)
        assert np.array_equal(got, expected)


class TestChunkInvariance:
    @given(st.data())
    @_SETTINGS
    def test_split_choice_is_invisible(self, data):
        """Two different chunkings of one mask agree on everything a
        caller can observe through the dense surface."""
        n = data.draw(st.integers(min_value=0, max_value=150))
        mask = np.array(
            data.draw(st.lists(st.booleans(), min_size=n, max_size=n)),
            dtype=bool,
        )
        sizes_a = data.draw(chunk_splits(n))
        sizes_b = data.draw(chunk_splits(n))
        ca = Cover.from_dense(mask, sizes_a)
        cb = Cover.from_dense(mask, sizes_b)
        assert ca.count() == cb.count()
        assert np.array_equal(ca.to_dense(), cb.to_dense())

    def test_single_row_chunks(self):
        mask = np.array([True, False, True], dtype=bool)
        cover = Cover.from_dense(mask, (1, 1, 1))
        assert cover.count() == 2
        assert np.array_equal(cover.to_dense(), mask)
        assert [cover.dense_segment(i).tolist() for i in range(3)] == [
            [True], [False], [True]
        ]

    def test_empty_chunks_and_zero_rows(self):
        cover = Cover.from_dense(np.zeros(0, dtype=bool), (0, 0))
        assert cover.count() == 0
        assert cover.to_dense().shape == (0,)
        mixed = Cover.from_dense(
            np.array([True, True], dtype=bool), (0, 2, 0)
        )
        assert mixed.count() == 2
        assert mixed.segment(0).shape == (0,)

    def test_full_and_empty_constructors(self):
        sizes = (5, 0, 8, 3)
        full = Cover.full(sizes)
        empty = Cover.empty(sizes)
        assert full.count() == 16
        assert empty.count() == 0
        assert np.array_equal(full.to_dense(), np.ones(16, dtype=bool))
        assert np.array_equal(empty.to_dense(), np.zeros(16, dtype=bool))
        # padding bits of full are zero: AND with anything stays canonical
        ones = Cover.from_dense(np.ones(16, dtype=bool), sizes)
        for i in range(full.n_chunks):
            assert np.array_equal(full.segment(i), ones.segment(i))

    def test_misaligned_covers_rejected(self):
        a = Cover.full((4, 4))
        b = Cover.full((8,))
        with pytest.raises(ValueError, match="chunk-aligned"):
            a & b
        with pytest.raises(ValueError, match="chunk-aligned"):
            a | b

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError, match="boolean"):
            Cover.from_dense(np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError, match="chunk sizes sum"):
            Cover.from_dense(np.zeros(4, dtype=bool), (3,))
        with pytest.raises(ValueError, match="segments"):
            Cover([np.zeros(1, dtype=np.uint8)], (4, 4))


class TestLazySegments:
    def test_thunks_materialise_once(self):
        calls = []

        def thunk():
            calls.append(1)
            return np.packbits(np.array([True, False, True], dtype=bool))

        cover = Cover([thunk], (3,))
        assert not cover.is_materialized(0)
        assert cover.count() == 2
        assert cover.is_materialized(0)
        cover.count()
        assert len(calls) == 1

    def test_thunk_shape_validated(self):
        cover = Cover([lambda: np.zeros(9, dtype=np.uint8)], (3,))
        with pytest.raises(ValueError, match="expected"):
            cover.segment(0)


class TestPickle:
    @given(mask_and_chunks(max_rows=4096))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_and_size_bound(self, mc):
        mask, sizes = mc
        cover = Cover.from_dense(mask, sizes)
        blob = pickle.dumps(cover, protocol=pickle.HIGHEST_PROTOCOL)
        # packed payload plus bounded per-chunk overhead — never the
        # dense mask (1 byte/row) and never 8-byte codes
        assert len(blob) <= mask.shape[0] // 8 + 120 * (len(sizes) + 1)
        restored = pickle.loads(blob)
        assert restored.chunk_sizes == cover.chunk_sizes
        assert np.array_equal(restored.to_dense(), mask)

    def test_lazy_segments_pickle_materialised(self):
        cover = Cover(
            [lambda: np.packbits(np.ones(10, dtype=bool))], (10,)
        )
        restored = pickle.loads(pickle.dumps(cover))
        assert restored.is_materialized(0)
        assert restored.count() == 10
