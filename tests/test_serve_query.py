"""Query-engine parity: index/query/match vs first-principles filtering.

The acceptance bar for the serving layer: for every query shape, the
query engine must agree with filtering the in-memory ``MiningResult``
directly, and ``match(row)`` must agree with brute-force cover checks
(re-evaluating each pattern's mask on the training data) on a thousand
random rows — across three datasets of different shapes.
"""

import numpy as np
import pytest

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.dataset.uci import adult
from repro.serve.index import MatchError, PatternIndex, row_from_dataset
from repro.serve.query import Query, QueryError, apply_query


def _mine(dataset):
    result = ContrastSetMiner(MinerConfig(max_tree_depth=2)).mine(dataset)
    assert result.patterns, "parity needs a non-trivial pattern list"
    return result


def _mixed():
    rng = np.random.default_rng(12345)
    n = 600
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1.0, n)
    )
    noise = rng.uniform(0, 1, n)
    color = rng.integers(0, 3, n)
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.continuous("noise"),
            Attribute.categorical("color", ["red", "green", "blue"]),
        ]
    )
    return Dataset(
        schema, {"x": x, "noise": noise, "color": color}, group, ["A", "B"]
    )


def _categorical():
    rng = np.random.default_rng(12345)
    n = 800
    group = rng.integers(0, 2, n)
    tool = np.where(
        group == 1,
        rng.choice([0, 1, 2], n, p=[0.7, 0.2, 0.1]),
        rng.choice([0, 1, 2], n, p=[0.2, 0.4, 0.4]),
    )
    shift = rng.integers(0, 2, n)
    schema = Schema.of(
        [
            Attribute.categorical("tool", ["T1", "T2", "T3"]),
            Attribute.categorical("shift", ["day", "night"]),
        ]
    )
    return Dataset(
        schema, {"tool": tool, "shift": shift}, group, ["good", "bad"]
    )


_MAKERS = {
    "mixed": _mixed,
    "categorical": _categorical,
    "adult": lambda: adult(scale=0.05),
}
_CACHE: dict = {}


@pytest.fixture
def dataset_and_result(request):
    """(dataset, mined result), mined once per dataset for the module."""
    if request.param not in _CACHE:
        dataset = _MAKERS[request.param]()
        _CACHE[request.param] = (dataset, _mine(dataset))
    return _CACHE[request.param]


DATASETS = ["mixed", "categorical", "adult"]

QUERY_SHAPES = [
    Query(),
    Query(limit=0),
    Query(limit=3),
    Query(min_diff=0.2),
    Query(min_pr=0.5),
    Query(min_surprising=0.1),
    Query(max_p_value=0.001),
    Query(max_level=1),
    Query(sort_by="support_difference"),
    Query(sort_by="purity_ratio", limit=5),
    Query(sort_by="surprising", descending=False),
    Query(sort_by="p_value", descending=False),
    Query(sort_by="level", descending=False, limit=10),
    Query(min_diff=0.1, min_pr=0.2, max_p_value=0.05, limit=7),
]


def _measure(pattern, interests, key):
    if key == "interest":
        return interests[pattern.itemset]
    if key == "support_difference":
        return pattern.support_difference
    if key == "purity_ratio":
        return pattern.purity_ratio
    if key == "surprising":
        return pattern.surprising_measure
    if key == "p_value":
        return pattern.significance_p_value
    if key == "level":
        return float(pattern.level)
    raise AssertionError(key)


def _reference_filter(result, query):
    """Filter the MiningResult directly — independent of the index."""
    keep = []
    for pattern in result.patterns:
        if query.attributes and not set(query.attributes) <= set(
            pattern.itemset.attributes
        ):
            continue
        if query.group is not None and pattern.dominant_group != query.group:
            continue
        if (
            query.min_diff is not None
            and pattern.support_difference < query.min_diff
        ):
            continue
        if query.min_pr is not None and pattern.purity_ratio < query.min_pr:
            continue
        if (
            query.min_surprising is not None
            and pattern.surprising_measure < query.min_surprising
        ):
            continue
        if (
            query.max_p_value is not None
            and pattern.significance_p_value > query.max_p_value
        ):
            continue
        if query.max_level is not None and pattern.level > query.max_level:
            continue
        keep.append(pattern)
    rank = {p.itemset: i for i, p in enumerate(result.patterns)}
    keep.sort(
        key=lambda p: (
            -_measure(p, result.interests, query.sort_by)
            if query.descending
            else _measure(p, result.interests, query.sort_by),
            rank[p.itemset],
        )
    )
    if query.limit is not None:
        keep = keep[: query.limit]
    return keep


class TestQueryParity:
    @pytest.mark.parametrize("dataset_and_result", DATASETS, indirect=True)
    @pytest.mark.parametrize(
        "query", QUERY_SHAPES, ids=[q.cache_key() or "all" for q in QUERY_SHAPES]
    )
    def test_query_matches_direct_filtering(self, dataset_and_result, query):
        _, result = dataset_and_result
        index = PatternIndex(result.patterns, result.interests)
        got = [entry.pattern for entry in apply_query(index, query)]
        assert got == _reference_filter(result, query)

    @pytest.mark.parametrize("dataset_and_result", DATASETS, indirect=True)
    def test_attribute_and_group_filters(self, dataset_and_result):
        _, result = dataset_and_result
        index = PatternIndex(result.patterns, result.interests)
        for attr in index.attributes:
            query = Query(attributes=(attr,))
            assert [e.pattern for e in apply_query(index, query)] == (
                _reference_filter(result, query)
            )
        for group in index.groups:
            query = Query(group=group)
            assert [e.pattern for e in apply_query(index, query)] == (
                _reference_filter(result, query)
            )


class TestMatchParity:
    """match(row) vs brute-force cover masks on 1k random rows."""

    @pytest.mark.parametrize("dataset_and_result", DATASETS, indirect=True)
    def test_match_agrees_with_cover_masks(self, dataset_and_result):
        dataset, result = dataset_and_result
        index = PatternIndex(result.patterns, result.interests)
        covers = {
            p.itemset: p.itemset.cover(dataset) for p in result.patterns
        }
        rng = np.random.default_rng(7)
        rows = rng.integers(0, dataset.n_rows, size=1000)
        for i in rows:
            row = row_from_dataset(dataset, int(i))
            matched = [e.pattern.itemset for e in index.match(row)]
            expected = [
                p.itemset for p in result.patterns if covers[p.itemset][i]
            ]
            assert matched == expected

    @pytest.fixture
    def mixed_index(self):
        if "mixed" not in _CACHE:
            dataset = _MAKERS["mixed"]()
            _CACHE["mixed"] = (dataset, _mine(dataset))
        _, result = _CACHE["mixed"]
        return PatternIndex(result.patterns, result.interests)

    def test_missing_attribute_means_no_match(self, mixed_index):
        # an empty record matches no pattern (coverage can't be shown)
        assert mixed_index.match({}) == []

    def test_non_numeric_value_raises(self, mixed_index):
        with pytest.raises(MatchError):
            mixed_index.match({"x": "not-a-number"})

    def test_row_type_validated(self, mixed_index):
        with pytest.raises(MatchError):
            mixed_index.match([1, 2, 3])


class TestQueryValidation:
    def test_unknown_sort_key(self):
        with pytest.raises(QueryError, match="sort key"):
            Query(sort_by="bogus")

    def test_negative_limit(self):
        with pytest.raises(QueryError, match="limit"):
            Query(limit=-1)

    def test_from_params_round_trip(self):
        query = Query(
            attributes=("age", "sex"),
            min_diff=0.25,
            sort_by="surprising",
            descending=False,
            limit=10,
        )
        assert Query.from_params(query.to_params()) == query

    def test_from_params_rejects_unknown(self):
        with pytest.raises(QueryError, match="unknown query parameter"):
            Query.from_params({"frobnicate": "1"})

    def test_from_params_rejects_bad_number(self):
        with pytest.raises(QueryError, match="not a number"):
            Query.from_params({"min_diff": "lots"})

    def test_from_params_rejects_bad_order(self):
        with pytest.raises(QueryError, match="asc or desc"):
            Query.from_params({"order": "sideways"})

    def test_cache_key_canonical(self):
        a = Query(min_diff=0.5, limit=3)
        b = Query.from_params({"limit": "3", "min_diff": "0.5"})
        assert a.cache_key() == b.cache_key()
