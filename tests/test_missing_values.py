"""Tests for missing-value (NaN) support across the stack."""

import numpy as np
import pytest

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.core.items import Interval, Itemset, NumericItem
from repro.core.sdad import sdad_cs
from repro.dataset.io import read_csv
from repro.dataset.table import DatasetError


def _dataset_with_missing(rng=None, n=800, missing_rate=0.1):
    rng = rng or np.random.default_rng(42)
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1, n)
    )
    x[rng.uniform(0, 1, n) < missing_rate] = np.nan
    schema = Schema.of([Attribute.continuous("x")])
    return Dataset(schema, {"x": x}, group, ["A", "B"])


class TestDatasetMissing:
    def test_missing_mask(self):
        ds = _dataset_with_missing()
        mask = ds.missing_mask()
        assert mask.sum() == np.isnan(ds.column("x")).sum()
        assert ds.has_missing

    def test_drop_missing_rows(self):
        ds = _dataset_with_missing()
        clean = ds.drop_missing_rows()
        assert not clean.has_missing
        assert clean.n_rows == ds.n_rows - ds.missing_mask().sum()

    def test_no_missing(self):
        ds = _dataset_with_missing(missing_rate=0.0)
        assert not ds.has_missing
        assert ds.drop_missing_rows().n_rows == ds.n_rows


class TestCoverageWithNaN:
    def test_numeric_item_never_covers_nan(self):
        ds = _dataset_with_missing()
        item = NumericItem("x", Interval(-10.0, 10.0, True, True))
        covered = Itemset([item]).cover(ds)
        assert not covered[np.isnan(ds.column("x"))].any()

    def test_sdad_mines_around_missing(self):
        ds = _dataset_with_missing()
        result = sdad_cs(ds, Itemset(), ["x"])
        assert result.patterns
        best = max(
            result.patterns, key=lambda p: p.support_difference
        )
        assert best.support_difference > 0.7
        # reported counts verify on the NaN-bearing data
        for pattern in result.patterns:
            mask = pattern.itemset.cover(ds)
            counts = tuple(int(c) for c in ds.group_counts(mask))
            assert counts == pattern.counts

    def test_miner_end_to_end_with_missing(self):
        ds = _dataset_with_missing()
        result = ContrastSetMiner(MinerConfig(k=10)).mine(ds)
        assert result.patterns

    def test_all_missing_column_yields_nothing(self):
        rng = np.random.default_rng(1)
        n = 100
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.full(n, np.nan)},
            rng.integers(0, 2, n),
            ["A", "B"],
        )
        assert sdad_cs(ds, Itemset(), ["x"]).patterns == []


class TestDiscretizersRejectNaN:
    def test_clear_error(self):
        ds = _dataset_with_missing()
        from repro.baselines.fayyad import fayyad_discretize

        with pytest.raises(ValueError, match="missing"):
            fayyad_discretize(ds)

    def test_clean_after_drop(self):
        ds = _dataset_with_missing().drop_missing_rows()
        from repro.baselines.fayyad import fayyad_discretize

        view = fayyad_discretize(ds)
        assert view.dataset.attribute("x").is_categorical


class TestCsvMissingPolicies:
    @pytest.fixture
    def gappy_csv(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text(
            "x,c,g\n"
            "1.0,red,A\n"
            "?,blue,B\n"
            "3.0,?,A\n"
            "4.0,red,B\n"
        )
        return path

    def test_drop_policy(self, gappy_csv):
        ds = read_csv(gappy_csv, group_column="g", missing="drop")
        assert ds.n_rows == 2

    def test_keep_policy(self, gappy_csv):
        ds = read_csv(gappy_csv, group_column="g", missing="keep")
        assert ds.n_rows == 4
        assert np.isnan(ds.column("x")).sum() == 1
        attr = ds.attribute("c")
        assert "?" in attr.categories
        codes = ds.column("c")
        assert attr.label_of(int(codes[2])) == "?"

    def test_error_policy(self, gappy_csv):
        with pytest.raises(DatasetError, match="missing"):
            read_csv(gappy_csv, group_column="g", missing="error")

    def test_invalid_policy(self, gappy_csv):
        with pytest.raises(ValueError):
            read_csv(gappy_csv, group_column="g", missing="bogus")

    def test_missing_group_label_rejected(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("x,g\n1.0,A\n2.0,?\n")
        with pytest.raises(DatasetError, match="group"):
            read_csv(path, group_column="g", missing="keep")

    def test_keep_then_mine(self, tmp_path):
        rng = np.random.default_rng(7)
        lines = ["x,g"]
        for i in range(600):
            g = "A" if i % 2 == 0 else "B"
            if rng.uniform() < 0.05:
                lines.append(f"?,{g}")
            else:
                v = rng.uniform(0, 0.5) if g == "A" else rng.uniform(
                    0.5, 1.0
                )
                lines.append(f"{v},{g}")
        path = tmp_path / "stream.csv"
        path.write_text("\n".join(lines) + "\n")
        ds = read_csv(path, group_column="g", missing="keep")
        result = ContrastSetMiner(MinerConfig(k=10)).mine(ds)
        assert result.patterns
        assert result.patterns[0].support_difference > 0.7
