"""Columnar smoke test: pack ~1M synthetic rows, mine out-of-core in
parallel, and require exact parity with the in-memory run.

Slow-gated (``--runslow``); CI runs it in the dedicated
``columnar-smoke`` job under a wall-clock cap.  The million-row scale
proof (peak-RSS accounting on >=10M rows) lives in
``benchmarks/bench_columnar.py`` — this test is the fast end of the
same contract: chunking and parallelism change *where* the counting
happens, never the answer.
"""

import resource

import numpy as np
import pytest

from repro import (
    Attribute,
    ChunkedDataset,
    ContrastSetMiner,
    Dataset,
    MinerConfig,
    Schema,
)
from repro.core.serialize import patterns_to_dicts

N_ROWS = 1_000_000
CHUNK_SIZE = 131_072


def _million_row_dataset() -> Dataset:
    """Synthetic mixed dataset with planted contrasts, deterministic."""
    rng = np.random.default_rng(20190326)  # EDBT'19 publication date
    group = rng.integers(0, 2, N_ROWS)
    # planted numeric contrast: latency shifts up for group 1
    latency = rng.gamma(2.0, 1.0, N_ROWS) + np.where(group == 1, 1.5, 0.0)
    throughput = rng.uniform(0.0, 100.0, N_ROWS)
    # planted categorical contrast: region code 2 over-represented in
    # group 1
    region = np.where(
        group == 1,
        rng.choice(4, N_ROWS, p=[0.1, 0.2, 0.6, 0.1]),
        rng.choice(4, N_ROWS, p=[0.3, 0.3, 0.1, 0.3]),
    )
    schema = Schema.of(
        [
            Attribute.continuous("latency"),
            Attribute.continuous("throughput"),
            Attribute.categorical(
                "region", ["us-east", "us-west", "eu", "apac"]
            ),
        ]
    )
    return Dataset(
        schema,
        {"latency": latency, "throughput": throughput, "region": region},
        group,
        ["ok", "degraded"],
    )


@pytest.mark.slow
def test_million_row_chunked_parallel_parity(tmp_path):
    dataset = _million_row_dataset()
    store = ChunkedDataset.pack(
        tmp_path / "store", dataset, chunk_size=CHUNK_SIZE
    )
    assert store.n_rows == N_ROWS
    assert store.n_chunks == -(-N_ROWS // CHUNK_SIZE)

    config = MinerConfig(max_tree_depth=2)
    dense = ContrastSetMiner(config).mine(dataset)
    chunked = ContrastSetMiner(config).mine(store, n_jobs=2)

    assert patterns_to_dicts(chunked.patterns) == patterns_to_dicts(
        dense.patterns
    )
    dense_summary, chunked_summary = dense.summary(), chunked.summary()
    assert chunked_summary.prune_rule_checks == (
        dense_summary.prune_rule_checks
    )
    assert chunked_summary.prune_reasons == dense_summary.prune_reasons
    assert chunked.patterns, "smoke dataset must yield planted contrasts"

    # coarse memory sanity: the run must not have materialized many
    # copies of the dataset (dense columns ~24MB; allow generous slack
    # for the interpreter + the in-memory baseline run above)
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    assert peak_kb < 2_000_000, f"peak RSS {peak_kb}KB unexpectedly high"
