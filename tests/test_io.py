"""Tests for repro.dataset.io (CSV round-trips, schema inference)."""

import numpy as np
import pytest

from repro.dataset.io import infer_schema, read_csv, write_csv
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset, DatasetError


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        "age,color,label\n"
        "25,red,yes\n"
        "31,blue,no\n"
        "47.5,red,yes\n"
        "19,green,no\n"
    )
    return path


class TestReadCsv:
    def test_basic_read(self, csv_file):
        ds = read_csv(csv_file, group_column="label")
        assert ds.n_rows == 4
        assert ds.schema["age"].is_continuous
        assert ds.schema["color"].is_categorical
        assert set(ds.group_labels) == {"yes", "no"}

    def test_values_parsed(self, csv_file):
        ds = read_csv(csv_file, group_column="label")
        assert ds.column("age")[2] == pytest.approx(47.5)
        color = ds.attribute("color")
        assert color.label_of(int(ds.column("color")[1])) == "blue"

    def test_missing_rows_dropped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("x,g\n1,A\n?,B\n3,A\n")
        ds = read_csv(path, group_column="g")
        assert ds.n_rows == 2

    def test_missing_raises_when_not_dropping(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("x,g\n1,A\n?,B\n")
        with pytest.raises(DatasetError, match="missing"):
            read_csv(path, group_column="g", drop_missing=False)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,g\n1,A,extra\n")
        with pytest.raises(DatasetError, match="fields"):
            read_csv(path, group_column="g")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            read_csv(path, group_column="g")

    def test_all_rows_missing_rejected(self, tmp_path):
        path = tmp_path / "allmiss.csv"
        path.write_text("x,g\n?,A\n")
        with pytest.raises(DatasetError, match="no complete rows"):
            read_csv(path, group_column="g")

    def test_missing_group_column(self, tmp_path):
        path = tmp_path / "nog.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(DatasetError, match="group column"):
            read_csv(path, group_column="g")

    def test_explicit_schema(self, csv_file):
        schema = Schema.of(
            [Attribute.categorical("color", ["red", "blue", "green"])]
        )
        ds = read_csv(csv_file, group_column="label", schema=schema)
        assert ds.schema.names == ("color",)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "tsv.tsv"
        path.write_text("x\tg\n1\tA\n2\tB\n")
        ds = read_csv(path, group_column="g", delimiter="\t")
        assert ds.n_rows == 2


class TestInferSchema:
    def test_numeric_column(self):
        schema = infer_schema(
            ["x", "g"], [["1.5", "A"], ["2", "B"]], "g"
        )
        assert schema["x"].is_continuous

    def test_mixed_column_is_categorical(self):
        schema = infer_schema(
            ["x", "g"], [["1.5", "A"], ["oops", "B"]], "g"
        )
        assert schema["x"].is_categorical

    def test_category_order_first_appearance(self):
        schema = infer_schema(
            ["c", "g"], [["z", "A"], ["a", "B"], ["z", "A"]], "g"
        )
        assert schema["c"].categories == ("z", "a")


class TestRoundTrip:
    def test_write_then_read(self, tmp_path, mixed_dataset):
        path = tmp_path / "roundtrip.csv"
        write_csv(mixed_dataset, path)
        loaded = read_csv(path, group_column="group")
        assert loaded.n_rows == mixed_dataset.n_rows
        assert set(loaded.group_labels) == set(mixed_dataset.group_labels)
        np.testing.assert_allclose(
            np.sort(loaded.column("x")),
            np.sort(mixed_dataset.column("x")),
        )

    def test_roundtrip_preserves_group_counts(self, tmp_path, mixed_dataset):
        path = tmp_path / "roundtrip.csv"
        write_csv(mixed_dataset, path)
        loaded = read_csv(path, group_column="group")
        original = dict(
            zip(mixed_dataset.group_labels, mixed_dataset.group_sizes)
        )
        reloaded = dict(zip(loaded.group_labels, loaded.group_sizes))
        assert original == reloaded
