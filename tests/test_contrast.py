"""Tests for repro.core.contrast and repro.core.measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import measures
from repro.core.contrast import ContrastPattern, evaluate_itemset
from repro.core.items import CategoricalItem, Interval, Itemset, NumericItem
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _pattern(counts, sizes, labels=("A", "B")):
    return ContrastPattern(
        itemset=Itemset([CategoricalItem("c", "v")]),
        counts=counts,
        group_sizes=sizes,
        group_labels=labels,
    )


class TestContrastPattern:
    def test_supports(self):
        p = _pattern((10, 40), (100, 100))
        assert p.supports == (0.10, 0.40)
        assert p.support("A") == 0.10
        assert p.support(1) == 0.40

    def test_support_difference(self):
        p = _pattern((10, 40), (100, 100))
        assert p.support_difference == pytest.approx(0.30)

    def test_dominant_group(self):
        assert _pattern((10, 40), (100, 100)).dominant_group == "B"
        assert _pattern((40, 10), (100, 100)).dominant_group == "A"

    def test_purity_ratio_paper_example(self):
        # paper Section 4.2: c1 = supports (0.02, 0.04) -> PR = 0.5
        p = _pattern((2, 4), (100, 100))
        assert p.purity_ratio == pytest.approx(0.5)
        # c2 = supports (0.30, 0.60) -> same PR
        q = _pattern((30, 60), (100, 100))
        assert q.purity_ratio == pytest.approx(0.5)

    def test_surprising_prefers_larger_contrast(self):
        # equal PR but larger coverage -> larger surprising measure
        small = _pattern((2, 4), (100, 100))
        large = _pattern((30, 60), (100, 100))
        assert (
            large.surprising_measure > small.surprising_measure
        )

    def test_purity_ratio_pure_space(self):
        p = _pattern((0, 40), (100, 100))
        assert p.purity_ratio == pytest.approx(1.0)

    def test_purity_ratio_empty(self):
        p = _pattern((0, 0), (100, 100))
        assert p.purity_ratio == 0.0

    def test_figure2_walkthrough_values(self):
        # Section 4.4: right half holds 48 of 98 "B" rows and 2 of 2 "A"
        # rows; PR = 1 - (48/98)/(2/2) = 0.51
        p = _pattern((48, 2), (98, 2), labels=("B", "A"))
        assert p.purity_ratio == pytest.approx(1 - (48 / 98), abs=1e-9)

    def test_chi_square_and_significance(self):
        strong = _pattern((90, 10), (100, 100))
        assert strong.is_significant(0.01)
        weak = _pattern((50, 50), (100, 100))
        assert not weak.is_significant(0.05)

    def test_is_large(self):
        assert _pattern((40, 10), (100, 100)).is_large(0.1)
        assert not _pattern((40, 35), (100, 100)).is_large(0.1)

    def test_is_contrast_combines_both(self):
        p = _pattern((90, 10), (100, 100))
        assert p.is_contrast(delta=0.1, alpha=0.05)
        assert not p.is_contrast(delta=0.9, alpha=0.05)

    def test_min_expected(self):
        p = _pattern((10, 10), (100, 100))
        assert p.min_expected == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            _pattern((10,), (100,), labels=("A",))
        with pytest.raises(ValueError):
            _pattern((200, 0), (100, 100))
        with pytest.raises(ValueError):
            ContrastPattern(
                Itemset(), (1, 2), (10,), ("A", "B")
            )

    def test_total_count(self):
        assert _pattern((10, 40), (100, 100)).total_count == 50

    def test_describe_contains_supports(self):
        text = _pattern((10, 40), (100, 100)).describe()
        assert "supp(A)=0.100" in text

    def test_interest_dispatch(self):
        p = _pattern((10, 40), (100, 100))
        assert p.interest("support_difference") == pytest.approx(0.3)
        assert p.interest("purity_ratio") == pytest.approx(0.75)


class TestMultiGroup:
    def test_three_groups_max_pairwise(self):
        p = ContrastPattern(
            Itemset(),
            (10, 50, 30),
            (100, 100, 100),
            ("A", "B", "C"),
        )
        assert p.support_difference == pytest.approx(0.4)
        assert p.dominant_group == "B"


class TestEvaluateItemset:
    def test_counts_match_manual(self):
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.array([0.1, 0.2, 0.6, 0.7, 0.9])},
            np.array([0, 0, 1, 1, 1]),
            ["A", "B"],
        )
        itemset = Itemset([NumericItem("x", Interval(0.5, 1.0, False, True))])
        p = evaluate_itemset(itemset, ds)
        assert p.counts == (0, 3)
        assert p.level == 1

    def test_empty_itemset_covers_all(self):
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.zeros(4)},
            np.array([0, 0, 1, 1]),
            ["A", "B"],
        )
        p = evaluate_itemset(Itemset(), ds)
        assert p.counts == (2, 2)


class TestMeasuresRegistry:
    def test_available(self):
        names = measures.available_measures()
        for expected in (
            "support_difference",
            "purity_ratio",
            "surprising",
            "wracc",
            "leverage",
            "lift",
        ):
            assert expected in names

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            measures.get("nope")

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError):
            measures.register("support_difference")(lambda p: 0.0)

    def test_wracc_zero_when_independent(self):
        # coverage independent of groups -> WRAcc 0
        p = _pattern((50, 50), (100, 100))
        assert measures.wracc(p) == pytest.approx(0.0)

    def test_wracc_positive_for_contrast(self):
        p = _pattern((80, 20), (100, 100))
        assert measures.wracc(p) > 0

    def test_wracc_proportional_to_diff_two_groups(self):
        # Novak et al.: for 2 groups WRAcc is proportional to support diff
        # when group sizes are fixed.
        sizes = (100, 300)
        diffs, wraccs = [], []
        for counts in [(80, 60), (50, 30), (90, 120)]:
            p = _pattern(counts, sizes)
            diffs.append(p.support_difference)
            wraccs.append(measures.wracc(p))
        ratios = [w / d for w, d in zip(wraccs, diffs)]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_lift_of_pure_region(self):
        p = _pattern((0, 50), (100, 100))
        # all covered rows are group B; P(B)=0.5 -> lift = 2
        assert measures.lift(p) == pytest.approx(2.0)

    def test_leverage_sign(self):
        assert measures.leverage(_pattern((80, 20), (100, 100))) > 0
        assert measures.leverage(_pattern((50, 50), (100, 100))) == (
            pytest.approx(0.0)
        )

    def test_empty_coverage_measures(self):
        p = _pattern((0, 0), (100, 100))
        assert measures.wracc(p) == 0.0
        assert measures.lift(p) == 0.0


@settings(max_examples=80, deadline=None)
@given(
    c1=st.integers(0, 100),
    c2=st.integers(0, 100),
    extra1=st.integers(0, 100),
    extra2=st.integers(0, 100),
)
def test_pattern_invariants(c1, c2, extra1, extra2):
    """Property: derived quantities stay in their defined ranges."""
    sizes = (c1 + extra1 + 1, c2 + extra2 + 1)
    p = _pattern((c1, c2), sizes)
    assert 0.0 <= p.support_difference <= 1.0
    assert 0.0 <= p.purity_ratio <= 1.0
    assert 0.0 <= p.surprising_measure <= p.support_difference + 1e-12
    assert p.chi_square.p_value <= 1.0
    assert p.surprising_measure == pytest.approx(
        p.purity_ratio * p.support_difference
    )
