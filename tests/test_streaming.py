"""Tests for the streaming extension (sliding window + drift mining)."""

import numpy as np
import pytest

from repro import Attribute, MinerConfig, Schema
from repro.dataset.table import Dataset, DatasetError
from repro.streaming import SlidingWindow, StreamingContrastMiner


SCHEMA = Schema.of(
    [
        Attribute.continuous("x"),
        Attribute.categorical("c", ["a", "b"]),
    ]
)
GROUPS = ("pass", "fail")


def _chunk(rng, n, boundary=None):
    """Rows; when boundary is set, x separates the groups at it."""
    group = rng.integers(0, 2, n)
    if boundary is None:
        x = rng.uniform(0, 1, n)
    else:
        x = np.where(
            group == 0,
            rng.uniform(0, boundary, n),
            rng.uniform(boundary, 1, n),
        )
    c = rng.integers(0, 2, n)
    return {"x": x, "c": c}, group


class TestSlidingWindow:
    def test_append_and_len(self):
        rng = np.random.default_rng(0)
        window = SlidingWindow(SCHEMA, GROUPS, capacity=100)
        cols, groups = _chunk(rng, 30)
        window.append(cols, groups)
        assert len(window) == 30
        assert window.total_seen == 30
        assert not window.is_full

    def test_eviction_keeps_newest(self):
        window = SlidingWindow(SCHEMA, GROUPS, capacity=5)
        for value in range(10):
            window.append(
                {"x": np.array([float(value)]), "c": np.array([0])},
                np.array([0]),
            )
        assert len(window) == 5
        snapshot = window.snapshot()
        assert list(snapshot.column("x")) == [5.0, 6.0, 7.0, 8.0, 9.0]
        assert window.total_seen == 10

    def test_partial_chunk_trim(self):
        window = SlidingWindow(SCHEMA, GROUPS, capacity=4)
        window.append(
            {"x": np.arange(6, dtype=float), "c": np.zeros(6, dtype=int)},
            np.zeros(6, dtype=int),
        )
        assert len(window) == 4
        assert list(window.snapshot().column("x")) == [2.0, 3.0, 4.0, 5.0]

    def test_snapshot_empty(self):
        window = SlidingWindow(SCHEMA, GROUPS, capacity=10)
        snapshot = window.snapshot()
        assert snapshot.n_rows == 0
        assert snapshot.group_labels == GROUPS

    def test_missing_column_rejected(self):
        window = SlidingWindow(SCHEMA, GROUPS, capacity=10)
        with pytest.raises(DatasetError, match="missing column"):
            window.append({"x": np.array([1.0])}, np.array([0]))

    def test_length_mismatch_rejected(self):
        window = SlidingWindow(SCHEMA, GROUPS, capacity=10)
        with pytest.raises(DatasetError):
            window.append(
                {"x": np.array([1.0, 2.0]), "c": np.array([0])},
                np.array([0, 1]),
            )

    def test_append_dataset(self):
        rng = np.random.default_rng(1)
        cols, groups = _chunk(rng, 20)
        ds = Dataset(SCHEMA, cols, groups, GROUPS)
        window = SlidingWindow(SCHEMA, GROUPS, capacity=50)
        window.append_dataset(ds)
        assert len(window) == 20

    def test_append_dataset_schema_mismatch(self):
        other = Schema.of([Attribute.continuous("y")])
        ds = Dataset(
            other, {"y": np.zeros(3)}, np.zeros(3, dtype=int), GROUPS
        )
        window = SlidingWindow(SCHEMA, GROUPS, capacity=50)
        with pytest.raises(DatasetError, match="schema"):
            window.append_dataset(ds)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(SCHEMA, GROUPS, capacity=0)


class TestStreamingMiner:
    def _miner(self, **kwargs):
        defaults = dict(
            config=MinerConfig(k=10, max_tree_depth=1),
            window_size=2000,
            refresh_every=500,
            min_rows=300,
        )
        defaults.update(kwargs)
        return StreamingContrastMiner(SCHEMA, GROUPS, **defaults)

    def test_no_refresh_before_min_rows(self):
        rng = np.random.default_rng(2)
        miner = self._miner()
        update = miner.update(*_chunk(rng, 100))
        assert not update.refreshed
        assert update.patterns == []

    def test_first_refresh_reports_all_as_emerged(self):
        rng = np.random.default_rng(3)
        miner = self._miner()
        update = miner.update(*_chunk(rng, 600, boundary=0.5))
        assert update.refreshed
        assert update.patterns
        assert update.emerged == update.patterns
        assert update.vanished == []

    def test_stable_stream_reports_no_drift(self):
        rng = np.random.default_rng(4)
        miner = self._miner()
        miner.update(*_chunk(rng, 600, boundary=0.5))
        update = miner.update(*_chunk(rng, 600, boundary=0.5))
        assert update.refreshed
        assert not update.drifted

    def test_drift_detected_when_contrast_appears(self):
        rng = np.random.default_rng(5)
        miner = self._miner(window_size=1200)
        first = miner.update(*_chunk(rng, 600))  # noise
        assert first.refreshed
        assert first.patterns == []
        # the planted boundary appears; after the window fills with the
        # new regime the contrast must emerge
        update = miner.update(*_chunk(rng, 1200, boundary=0.5))
        assert update.refreshed
        assert update.emerged
        assert any(
            p.itemset.item_for("x") is not None for p in update.emerged
        )

    def test_drift_detected_when_contrast_vanishes(self):
        rng = np.random.default_rng(6)
        miner = self._miner(window_size=1200)
        seeded = miner.update(*_chunk(rng, 1200, boundary=0.5))
        assert seeded.patterns
        update = miner.update(*_chunk(rng, 1200))  # noise flushes window
        assert update.refreshed
        assert update.vanished
        assert update.patterns == []

    def test_refresh_interval_respected(self):
        rng = np.random.default_rng(7)
        miner = self._miner(refresh_every=1000, min_rows=100)
        first = miner.update(*_chunk(rng, 200, boundary=0.5))
        assert first.refreshed  # first refresh happens once min_rows met
        second = miner.update(*_chunk(rng, 200, boundary=0.5))
        assert not second.refreshed  # only 200 of 1000 new rows
        third = miner.update(*_chunk(rng, 900, boundary=0.5))
        assert third.refreshed

    def test_update_dataset_helper(self):
        rng = np.random.default_rng(8)
        cols, groups = _chunk(rng, 400, boundary=0.5)
        ds = Dataset(SCHEMA, cols, groups, GROUPS)
        miner = self._miner(min_rows=100)
        update = miner.update_dataset(ds)
        assert update.refreshed
        assert update.patterns

    def test_single_group_window_not_mined(self):
        rng = np.random.default_rng(9)
        miner = self._miner(min_rows=100)
        cols, __ = _chunk(rng, 400)
        update = miner.update(cols, np.zeros(400, dtype=int))
        assert update.refreshed
        assert update.patterns == []

    def test_validation(self):
        with pytest.raises(ValueError):
            self._miner(refresh_every=0)
        with pytest.raises(ValueError):
            self._miner(n_jobs=0)


class TestStreamingDegradation:
    """A parallel refresh that fails outright degrades to serial mining
    instead of killing the monitoring loop."""

    def test_parallel_failure_degrades_to_serial(self, monkeypatch):
        rng = np.random.default_rng(11)
        miner = StreamingContrastMiner(
            SCHEMA,
            GROUPS,
            config=MinerConfig(k=10, max_tree_depth=1),
            window_size=2000,
            refresh_every=500,
            min_rows=300,
            n_jobs=2,
        )

        from repro.core.miner import ContrastSetMiner

        real_mine = ContrastSetMiner.mine

        def flaky_mine(self, dataset, *args, n_jobs=1, **kwargs):
            if n_jobs > 1:
                raise OSError("simulated pool-creation failure")
            return real_mine(self, dataset, *args, n_jobs=n_jobs, **kwargs)

        monkeypatch.setattr(ContrastSetMiner, "mine", flaky_mine)
        update = miner.update(*_chunk(rng, 600, boundary=0.5))
        assert update.refreshed
        assert update.degraded
        assert update.patterns  # the serial re-mine still delivered
        assert miner.fallback_refreshes == 1

    def test_serial_refresh_errors_still_propagate(self, monkeypatch):
        """With n_jobs=1 there is nothing to degrade to: errors surface."""
        rng = np.random.default_rng(12)
        miner = StreamingContrastMiner(
            SCHEMA,
            GROUPS,
            config=MinerConfig(k=10, max_tree_depth=1),
            window_size=2000,
            refresh_every=500,
            min_rows=300,
        )
        from repro.core.miner import ContrastSetMiner

        def broken_mine(self, dataset, *args, **kwargs):
            raise OSError("simulated failure")

        monkeypatch.setattr(ContrastSetMiner, "mine", broken_mine)
        with pytest.raises(OSError, match="simulated failure"):
            miner.update(*_chunk(rng, 600, boundary=0.5))

    def test_healthy_parallel_refresh_not_degraded(self):
        rng = np.random.default_rng(13)
        miner = StreamingContrastMiner(
            SCHEMA,
            GROUPS,
            config=MinerConfig(k=10, max_tree_depth=1),
            window_size=2000,
            refresh_every=500,
            min_rows=300,
            n_jobs=2,
        )
        update = miner.update(*_chunk(rng, 600, boundary=0.5))
        assert update.refreshed
        assert not update.degraded
        assert miner.fallback_refreshes == 0
