"""Tests for the Cortana-style subgroup discovery baseline."""

import numpy as np
import pytest

from repro.baselines.cortana import (
    CortanaConfig,
    cortana,
    wracc_for_target,
)
from repro.core.contrast import ContrastPattern
from repro.core.items import CategoricalItem, Itemset
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _pattern(counts, sizes):
    return ContrastPattern(
        itemset=Itemset([CategoricalItem("c", "v")]),
        counts=counts,
        group_sizes=sizes,
        group_labels=("A", "B"),
    )


class TestWRAcc:
    def test_independent_is_zero(self):
        p = _pattern((50, 50), (100, 100))
        assert wracc_for_target(p, 0) == pytest.approx(0.0)

    def test_target_enrichment_positive(self):
        p = _pattern((80, 20), (100, 100))
        assert wracc_for_target(p, 0) > 0
        assert wracc_for_target(p, 1) < 0

    def test_empty_coverage(self):
        p = _pattern((0, 0), (100, 100))
        assert wracc_for_target(p, 0) == 0.0


class TestCortana:
    def test_finds_planted_contrast(self, mixed_dataset):
        result = cortana(mixed_dataset, CortanaConfig(depth=1, k=20))
        assert result.patterns
        best = result.patterns[0]
        assert best.itemset.item_for("x") is not None
        assert best.support_difference > 0.7

    def test_respects_min_coverage(self, mixed_dataset):
        config = CortanaConfig(depth=1, min_coverage=30)
        result = cortana(mixed_dataset, config)
        for pattern in result.patterns:
            assert pattern.total_count >= 30

    def test_depth_bounds_itemset_size(self, mixed_dataset):
        result = cortana(mixed_dataset, CortanaConfig(depth=1))
        assert all(len(p.itemset) == 1 for p in result.patterns)
        result2 = cortana(mixed_dataset, CortanaConfig(depth=2, k=50))
        assert any(len(p.itemset) == 2 for p in result2.patterns)

    def test_k_limits_output(self, mixed_dataset):
        result = cortana(mixed_dataset, CortanaConfig(depth=2, k=5))
        assert len(result.patterns) <= 5

    def test_interval_conditions_are_runs_of_bins(self, mixed_dataset):
        """Every numeric condition must be a contiguous interval."""
        result = cortana(mixed_dataset, CortanaConfig(depth=1, k=100))
        for pattern in result.patterns:
            item = pattern.itemset.item_for("x")
            if item is not None:
                assert item.interval.lo < item.interval.hi

    def test_finds_categorical_conditions(self, categorical_dataset):
        result = cortana(categorical_dataset, CortanaConfig(depth=1))
        assert any(
            "tool = T1" in str(p.itemset) for p in result.patterns
        )

    def test_redundant_level2_patterns_produced(self, mixed_dataset):
        """The paper's critique: Cortana keeps conjunctions that add
        nothing over their level-1 parent (same coverage)."""
        from repro.core.meaningful import is_redundant

        result = cortana(mixed_dataset, CortanaConfig(depth=2, k=100))
        level2 = [p for p in result.patterns if len(p.itemset) == 2]
        assert level2
        redundant = sum(
            1 for p in level2 if is_redundant(p, mixed_dataset)
        )
        assert redundant > 0

    def test_stats_recorded(self, mixed_dataset):
        result = cortana(mixed_dataset, CortanaConfig(depth=1))
        assert result.stats.partitions_evaluated > 0
