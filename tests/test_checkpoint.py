"""Checkpoint format edge cases and fuzzing.

Every anomaly a loader can meet must surface as a clear
:class:`CheckpointError` — never an arbitrary exception and never a
silently wrong resume.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro import ContrastSetMiner, MinerConfig
from repro.core.serialize import patterns_to_dicts
from repro.dataset import synthetic
from repro.resilience import (
    CHECKPOINT_VERSION,
    CheckpointError,
    MiningCheckpoint,
    dataset_fingerprint,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)

CONFIG = MinerConfig(max_tree_depth=2)


@pytest.fixture(scope="module")
def checkpoint_run(tmp_path_factory):
    """A real checkpointed run to source valid files from."""
    dataset = synthetic.simulated_dataset_2()
    directory = tmp_path_factory.mktemp("checkpoints")
    result = ContrastSetMiner(CONFIG).mine(
        dataset, checkpoint_dir=directory
    )
    return dataset, directory, result


@pytest.fixture
def checkpoint_file(checkpoint_run):
    _, directory, _ = checkpoint_run
    return directory / "checkpoint-level-01.pkl"


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint(tmp_path / "nope.pkl")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="no .* files"):
            load_checkpoint(tmp_path)

    def test_truncated_file(self, checkpoint_file, tmp_path):
        clipped = tmp_path / "truncated.pkl"
        clipped.write_bytes(checkpoint_file.read_bytes()[:100])
        with pytest.raises(
            CheckpointError, match="truncated or not a pickle"
        ):
            load_checkpoint(clipped)

    def test_random_bytes(self, tmp_path):
        garbage = tmp_path / "garbage.pkl"
        garbage.write_bytes(b"\x93NUMPY\x01\x00 not a pickle at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(garbage)

    def test_foreign_pickle(self, tmp_path):
        foreign = tmp_path / "foreign.pkl"
        foreign.write_bytes(
            pickle.dumps({"hello": "world", "version": 1})
        )
        with pytest.raises(
            CheckpointError, match="not a repro mining checkpoint"
        ):
            load_checkpoint(foreign)

    def test_non_dict_pickle(self, tmp_path):
        foreign = tmp_path / "list.pkl"
        foreign.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(
            CheckpointError, match="not a repro mining checkpoint"
        ):
            load_checkpoint(foreign)

    def test_wrong_schema_version(self, checkpoint_file, tmp_path):
        with checkpoint_file.open("rb") as handle:
            payload = pickle.load(handle)
        payload["version"] = CHECKPOINT_VERSION + 1
        tampered = tmp_path / "future.pkl"
        tampered.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError, match="schema version"):
            load_checkpoint(tampered)

    def test_malformed_state(self, checkpoint_file, tmp_path):
        with checkpoint_file.open("rb") as handle:
            payload = pickle.load(handle)
        payload["state"] = {"not": "a checkpoint"}
        tampered = tmp_path / "malformed.pkl"
        tampered.write_bytes(pickle.dumps(payload))
        with pytest.raises(CheckpointError, match="malformed"):
            load_checkpoint(tampered)

    @pytest.mark.parametrize("n_bytes", [0, 1, 17, 64])
    def test_fuzz_prefixes_never_leak_raw_errors(
        self, checkpoint_file, tmp_path, n_bytes
    ):
        """Any prefix of a real checkpoint fails cleanly."""
        clipped = tmp_path / f"prefix-{n_bytes}.pkl"
        clipped.write_bytes(checkpoint_file.read_bytes()[:n_bytes])
        with pytest.raises(CheckpointError):
            load_checkpoint(clipped)


class TestCompatibility:
    def test_different_config_rejected(self, checkpoint_file):
        other = MinerConfig(max_tree_depth=2, delta=0.2)
        with pytest.raises(
            CheckpointError, match="different MinerConfig"
        ):
            ContrastSetMiner(other).resume(checkpoint_file)

    def test_different_dataset_rejected(self, checkpoint_file):
        other = synthetic.simulated_dataset_1()
        with pytest.raises(
            CheckpointError, match="different dataset"
        ):
            ContrastSetMiner(CONFIG).resume(
                checkpoint_file, dataset=other
            )

    def test_matching_config_and_dataset_accepted(
        self, checkpoint_run, checkpoint_file
    ):
        dataset, _, result = checkpoint_run
        resumed = ContrastSetMiner(CONFIG).resume(
            checkpoint_file, dataset=dataset
        )
        assert patterns_to_dicts(resumed.patterns) == patterns_to_dicts(
            result.patterns
        )


class TestFormat:
    def test_roundtrip_preserves_state(self, checkpoint_file, tmp_path):
        state = load_checkpoint(checkpoint_file)
        assert isinstance(state, MiningCheckpoint)
        assert state.completed_level == 1
        assert state.config == CONFIG
        assert state.fingerprint == dataset_fingerprint(state.dataset)
        resaved = save_checkpoint(tmp_path / "resaved", state)
        reloaded = load_checkpoint(resaved)
        assert reloaded.completed_level == state.completed_level
        assert reloaded.fingerprint == state.fingerprint
        assert reloaded.topk.patterns() == state.topk.patterns()

    def test_latest_checkpoint_picks_deepest(self, checkpoint_run):
        _, directory, result = checkpoint_run
        deepest = latest_checkpoint(directory)
        assert deepest is not None
        assert deepest.name == (
            f"checkpoint-level-"
            f"{result.summary().n_checkpoints:02d}.pkl"
        )

    def test_no_temp_files_left_behind(self, checkpoint_run):
        """Atomic writes: only final checkpoint names in the directory."""
        _, directory, _ = checkpoint_run
        names = [p.name for p in directory.iterdir()]
        assert all(
            name.startswith("checkpoint-level-")
            and name.endswith(".pkl")
            for name in names
        )


_CROSS_PROCESS_SCRIPT = """
import json, sys
from repro import ContrastSetMiner, MinerConfig
from repro.core.serialize import patterns_to_dicts
from repro.dataset import synthetic

mode, ckpt_dir, out = sys.argv[1], sys.argv[2], sys.argv[3]
config = MinerConfig(max_tree_depth=2)
if mode == "write":
    dataset = synthetic.simulated_dataset_2()
    result = ContrastSetMiner(config).mine(
        dataset, checkpoint_dir=ckpt_dir
    )
else:
    result = ContrastSetMiner(config).resume(
        ckpt_dir + "/checkpoint-level-01.pkl"
    )
with open(out, "w") as handle:
    json.dump(patterns_to_dicts(result.patterns), handle)
"""


class TestCrossProcessResume:
    def test_resume_in_fresh_interpreter_is_exact(self, tmp_path):
        """Regression: ``Itemset`` pickled its *cached hash*, which is
        salted per interpreter (PYTHONHASHSEED) — a checkpoint resumed
        in a new process silently lost redundancy prunes because
        restored itemsets no longer matched freshly built equal ones in
        dict lookups.  Write and resume under explicitly different hash
        seeds and demand identical output."""

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))

        def run(mode, seed, out):
            env = dict(os.environ, PYTHONHASHSEED=str(seed))
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [env.get("PYTHONPATH"), src_dir])
            )
            subprocess.run(
                [
                    sys.executable,
                    "-c",
                    _CROSS_PROCESS_SCRIPT,
                    mode,
                    str(tmp_path / "ckpt"),
                    str(out),
                ],
                check=True,
                timeout=300,
                env=env,
            )
            with open(out) as handle:
                return json.load(handle)

        full = run("write", 1, tmp_path / "full.json")
        resumed = run("resume", 2, tmp_path / "resumed.json")
        assert resumed == full
