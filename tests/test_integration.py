"""End-to-end integration tests across modules.

These tests exercise complete pipelines — data generation, mining,
baselines, filtering, reporting — on realistic scenarios, verifying the
pieces compose the way the examples and benches use them.
"""

import numpy as np
import pytest

from repro import ContrastSetMiner, MinerConfig
from repro.analysis import (
    census,
    compare_algorithms,
    pattern_table,
    run_algorithm,
)
from repro.core.meaningful import classify_patterns
from repro.dataset import synthetic, uci
from repro.dataset.io import read_csv, write_csv
from repro.dataset.manufacturing import manufacturing


class TestFullPipeline:
    def test_mine_filter_report_roundtrip(self, mixed_dataset):
        """mine -> meaningful -> render, then re-verify every printed
        pattern's supports against the raw data."""
        result = ContrastSetMiner(MinerConfig(k=20)).mine(mixed_dataset)
        meaningful = result.meaningful()
        text = pattern_table(meaningful)
        assert str(len(meaningful)) or text  # renders without error
        for pattern in meaningful:
            mask = pattern.itemset.cover(mixed_dataset)
            counts = tuple(
                int(c) for c in mixed_dataset.group_counts(mask)
            )
            assert counts == pattern.counts

    def test_csv_then_mine(self, tmp_path, mixed_dataset):
        path = tmp_path / "data.csv"
        write_csv(mixed_dataset, path)
        loaded = read_csv(path, group_column="group")
        result = ContrastSetMiner(MinerConfig(k=10)).mine(loaded)
        assert result.patterns
        best = result.patterns[0]
        assert best.support_difference > 0.8  # planted x contrast

    def test_multigroup_narrowing(self):
        """3-group data narrowed to a pair behaves like 2-group data."""
        rng = np.random.default_rng(10)
        n = 900
        group = rng.integers(0, 3, n)
        x = rng.uniform(0, 1, n) + (group == 2) * 1.5
        from repro import Attribute, Dataset, Schema

        ds = Dataset(
            Schema.of([Attribute.continuous("x")]),
            {"x": x},
            group,
            ["A", "B", "C"],
        )
        result = ContrastSetMiner(MinerConfig(k=10)).mine(
            ds, groups=("B", "C")
        )
        assert result.patterns
        assert result.patterns[0].support_difference > 0.8
        # A vs B: no contrast exists
        null_result = ContrastSetMiner(MinerConfig(k=10)).mine(
            ds, groups=("A", "B")
        )
        assert null_result.patterns == []


class TestAlgorithmAgreementOnStrongSignal:
    """On a clean planted boundary, every pipeline should locate it."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return synthetic.simulated_dataset_3()

    @pytest.mark.parametrize("name", ["sdad", "sdad_np", "mvd", "entropy",
                                      "cortana"])
    def test_boundary_found(self, dataset, name):
        result = run_algorithm(
            name, dataset, MinerConfig(k=20, max_tree_depth=1)
        )
        assert result.patterns
        boundaries = []
        for pattern in result.patterns:
            item = pattern.itemset.item_for("Attribute 1")
            if item is not None:
                boundaries.extend(
                    [item.interval.lo, item.interval.hi]
                )
        assert any(abs(b - 0.5) < 0.05 for b in boundaries), name


class TestNPvsFullContract:
    """SDAD-CS NP must be a superset machine: same engine, more output."""

    def test_np_keeps_everything_full_finds(self, mixed_dataset):
        config = MinerConfig(k=200, max_tree_depth=2)
        full = ContrastSetMiner(config).mine(mixed_dataset)
        np_run = ContrastSetMiner(config.no_pruning()).mine(mixed_dataset)
        assert len(np_run.patterns) >= len(full.patterns)
        # every meaningful pattern of the full run appears in NP's output
        # up to boundary-identical itemsets
        np_sets = {p.itemset for p in np_run.patterns}
        missing = [
            p
            for p in full.meaningful()
            if p.itemset not in np_sets
        ]
        assert not missing

    def test_np_work_is_strictly_more(self, mixed_dataset):
        config = MinerConfig(k=50, max_tree_depth=2)
        full = ContrastSetMiner(config).mine(mixed_dataset)
        np_run = ContrastSetMiner(config.no_pruning()).mine(mixed_dataset)
        assert (
            np_run.stats.partitions_evaluated
            >= full.stats.partitions_evaluated
        )


class TestManufacturingEndToEnd:
    def test_compact_actionable_output(self):
        """The Section 6 deliverable: a small meaningful set that names
        the planted root cause."""
        dataset = manufacturing(n_population=1500, n_failed=220)
        config = MinerConfig(k=40, max_tree_depth=1)
        result = ContrastSetMiner(config).mine(dataset)
        meaningful = result.meaningful()
        assert 0 < len(meaningful) <= 40
        top_text = " ".join(
            str(p.itemset) for p in meaningful[:10]
        )
        assert "SCE" in top_text or "JVF" in top_text


class TestComparisonProtocolsCompose:
    def test_table4_then_table6_same_dataset(self):
        dataset = uci.transfusion()
        comparison = compare_algorithms(
            dataset,
            "transfusion",
            algorithms=("sdad_np", "entropy"),
            config=MinerConfig(k=30, max_tree_depth=2),
        )
        counts = census(
            dataset,
            "transfusion",
            config=MinerConfig(k=30, max_tree_depth=2),
            top=30,
        )
        assert comparison.rows["sdad_np"].n_found >= counts.n_patterns > 0

    def test_meaningfulness_of_baseline_output(self, mixed_dataset):
        """The meaningful filters apply to any algorithm's patterns."""
        result = run_algorithm(
            "cortana", mixed_dataset, MinerConfig(k=40, max_tree_depth=2)
        )
        report = classify_patterns(result.top(20), mixed_dataset)
        assert report.n_meaningful + report.n_meaningless == len(
            result.top(20)
        )
        # redundant stacked conditions must be flagged
        assert report.n_meaningless > 0
