"""Shared fixtures and pytest/hypothesis wiring for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Attribute, Dataset, Schema

try:
    from hypothesis import settings as _hyp_settings

    _hyp_settings.register_profile("fast", max_examples=10)
    _hyp_settings.register_profile("slow", max_examples=50)
except ImportError:  # pragma: no cover - hypothesis always in the image
    _hyp_settings = None


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help=(
            "run slow tests (multi-process fault drills, deeper "
            "hypothesis profiles)"
        ),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: slow test, only runs with --runslow"
    )
    if _hyp_settings is not None:
        profile = "slow" if config.getoption("--runslow") else "fast"
        _hyp_settings.load_profile(profile)


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip = pytest.mark.skip(reason="slow test: needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def mixed_dataset(rng) -> Dataset:
    """A small mixed dataset with one planted contrast on ``x``.

    Group "A" has x in [0, 0.5), group "B" in [0.5, 1); ``noise`` and
    ``color`` are group-independent.
    """
    n = 600
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1.0, n)
    )
    noise = rng.uniform(0, 1, n)
    color = rng.integers(0, 3, n)
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.continuous("noise"),
            Attribute.categorical("color", ["red", "green", "blue"]),
        ]
    )
    return Dataset(
        schema,
        {"x": x, "noise": noise, "color": color},
        group,
        ["A", "B"],
    )


@pytest.fixture
def categorical_dataset(rng) -> Dataset:
    """Pure-categorical dataset with a planted contrast on ``tool``."""
    n = 800
    group = rng.integers(0, 2, n)
    # tool "T1" is strongly over-represented in group "bad"
    tool = np.where(
        group == 1,
        rng.choice([0, 1, 2], n, p=[0.7, 0.2, 0.1]),
        rng.choice([0, 1, 2], n, p=[0.2, 0.4, 0.4]),
    )
    shift = rng.integers(0, 2, n)
    schema = Schema.of(
        [
            Attribute.categorical("tool", ["T1", "T2", "T3"]),
            Attribute.categorical("shift", ["day", "night"]),
        ]
    )
    return Dataset(
        schema,
        {"tool": tool, "shift": shift},
        group,
        ["good", "bad"],
    )
