"""Parity and behaviour tests for the pluggable counting backends.

The bitmap backend must be byte-identical to the mask backend: same
pattern sets, same contingency counts, same interest values — on every
dataset shape the miner supports, including missing values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Attribute,
    CategoricalItem,
    ContrastSetMiner,
    Dataset,
    Interval,
    Itemset,
    MinerConfig,
    NumericItem,
    Schema,
)
from repro.counting import (
    BackendCounters,
    BitmapBackend,
    CountingBackend,
    MaskBackend,
    available_backends,
    make_backend,
)
from repro.core.instrumentation import MiningStats
from repro.dataset.synthetic import (
    simulated_dataset_1,
    simulated_dataset_2,
    simulated_dataset_3,
    simulated_dataset_4,
)
from repro.dataset.table import DatasetError
from repro.dataset.uci import adult


def _mine_both(dataset, config=None, **mine_kwargs):
    """Mine with both backends, returning the two MiningResults."""
    config = config or MinerConfig(max_tree_depth=2, k=50)
    results = {}
    for name in ("mask", "bitmap"):
        cfg = config.with_(counting_backend=name)
        results[name] = ContrastSetMiner(cfg).mine(dataset, **mine_kwargs)
    return results["mask"], results["bitmap"]


def _fingerprint(result):
    return [(p.itemset, p.counts) for p in result.patterns]


class TestRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {"mask", "bitmap"}

    def test_make_backend(self, mixed_dataset):
        assert isinstance(make_backend("mask", mixed_dataset), MaskBackend)
        assert isinstance(
            make_backend("bitmap", mixed_dataset), BitmapBackend
        )

    def test_backends_satisfy_protocol(self, mixed_dataset):
        for name in available_backends():
            assert isinstance(
                make_backend(name, mixed_dataset), CountingBackend
            )

    def test_unknown_backend_rejected(self, mixed_dataset):
        with pytest.raises(ValueError, match="unknown counting backend"):
            make_backend("roaring", mixed_dataset)

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="counting_backend"):
            MinerConfig(counting_backend="roaring")


class TestBackendUnits:
    """Direct unit parity of the two backends' counting primitives."""

    @pytest.fixture
    def backends(self, mixed_dataset):
        return MaskBackend(mixed_dataset), BitmapBackend(mixed_dataset)

    def test_empty_itemset_counts_everything(self, backends):
        mask_be, bitmap_be = backends
        empty = Itemset()
        expected = mask_be.dataset.group_sizes
        assert tuple(mask_be.group_counts(empty)) == expected
        assert tuple(bitmap_be.group_counts(empty)) == expected

    def test_categorical_itemset_parity(self, backends):
        mask_be, bitmap_be = backends
        for value in ("red", "green", "blue"):
            itemset = Itemset([CategoricalItem("color", value)])
            np.testing.assert_array_equal(
                mask_be.group_counts(itemset),
                bitmap_be.group_counts(itemset),
            )
            np.testing.assert_array_equal(
                mask_be.cover(itemset), bitmap_be.cover(itemset)
            )

    def test_mixed_itemset_parity(self, backends):
        mask_be, bitmap_be = backends
        itemset = Itemset(
            [
                CategoricalItem("color", "red"),
                NumericItem("x", Interval(0.0, 0.5, True, True)),
            ]
        )
        np.testing.assert_array_equal(
            mask_be.group_counts(itemset), bitmap_be.group_counts(itemset)
        )
        np.testing.assert_array_equal(
            mask_be.cover(itemset), bitmap_be.cover(itemset)
        )

    def test_mask_group_counts_parity(self, backends, rng):
        mask_be, bitmap_be = backends
        mask = rng.random(mask_be.dataset.n_rows) < 0.3
        np.testing.assert_array_equal(
            mask_be.mask_group_counts(mask),
            bitmap_be.mask_group_counts(mask),
        )

    def test_bitmap_rejects_non_boolean_mask(self, backends):
        _, bitmap_be = backends
        with pytest.raises(DatasetError, match="boolean"):
            bitmap_be.mask_group_counts(
                np.ones(bitmap_be.dataset.n_rows, dtype=np.int64)
            )


class TestCounters:
    def test_count_calls_recorded(self, categorical_dataset):
        backend = BitmapBackend(categorical_dataset)
        itemset = Itemset([CategoricalItem("tool", "T1")])
        backend.group_counts(itemset)
        backend.group_counts(itemset)
        assert backend.counters().count_calls == 2

    def test_publish_is_delta_based(self, categorical_dataset):
        """Publishing twice must not double-count the first batch."""
        backend = BitmapBackend(categorical_dataset)
        itemset = Itemset([CategoricalItem("tool", "T1")])
        stats = MiningStats()
        backend.group_counts(itemset)
        backend.publish(stats)
        assert stats.count_calls == 1
        backend.group_counts(itemset)
        backend.publish(stats)
        assert stats.count_calls == 2
        assert stats.counting_backend == "bitmap"

    def test_counters_arithmetic(self):
        a = BackendCounters(10, 4, 6)
        b = BackendCounters(3, 1, 2)
        assert (a - b) == BackendCounters(7, 3, 4)
        assert (a + b) == BackendCounters(13, 5, 8)


class TestLRUCache:
    def test_cache_hits_on_shared_prefix(self, categorical_dataset):
        backend = BitmapBackend(categorical_dataset)
        base = Itemset(
            [
                CategoricalItem("tool", "T1"),
                CategoricalItem("shift", "day"),
            ]
        )
        backend.group_counts(base)
        assert backend.counters().cache_misses == 1
        backend.group_counts(base)
        assert backend.counters().cache_hits == 1

    def test_tiny_cache_evicts_but_stays_correct(self, categorical_dataset):
        small = BitmapBackend(categorical_dataset, cache_size=1)
        reference = MaskBackend(categorical_dataset)
        itemsets = [
            Itemset(
                [
                    CategoricalItem("tool", tool),
                    CategoricalItem("shift", shift),
                ]
            )
            for tool in ("T1", "T2", "T3")
            for shift in ("day", "night")
        ]
        for itemset in itemsets * 2:
            np.testing.assert_array_equal(
                small.group_counts(itemset),
                reference.group_counts(itemset),
            )
        assert small.cache_info()["entries"] <= 1


@pytest.mark.parametrize(
    "factory",
    [
        simulated_dataset_1,
        simulated_dataset_2,
        simulated_dataset_3,
        simulated_dataset_4,
    ],
)
def test_end_to_end_parity_simulated(factory):
    dataset = factory(n=800)
    mask_res, bitmap_res = _mine_both(dataset)
    assert _fingerprint(mask_res) == _fingerprint(bitmap_res)
    assert mask_res.interests == bitmap_res.interests


def test_end_to_end_parity_adult_sample():
    dataset = adult(scale=0.05)
    mask_res, bitmap_res = _mine_both(
        dataset, MinerConfig(max_tree_depth=2, k=100)
    )
    assert _fingerprint(mask_res) == _fingerprint(bitmap_res)


def test_end_to_end_parity_categorical_only_adult():
    dataset = adult(scale=0.05)
    categorical = [
        n for n in dataset.schema.names
        if dataset.attribute(n).is_categorical
    ]
    mask_res, bitmap_res = _mine_both(
        dataset,
        MinerConfig(max_tree_depth=3, k=100),
        attributes=categorical,
    )
    assert _fingerprint(mask_res) == _fingerprint(bitmap_res)
    # depth 3 over shared depth-2 prefixes must exercise the LRU cache
    assert bitmap_res.stats.cache_hits > 0


def test_end_to_end_parity_with_missing_values(rng):
    """NaN continuous cells cover no interval on either backend."""
    n = 500
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1.0, n)
    )
    x[rng.random(n) < 0.15] = np.nan
    color = rng.integers(0, 3, n)
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("color", ["red", "green", "blue"]),
        ]
    )
    dataset = Dataset(
        schema, {"x": x, "color": color}, group, ["A", "B"]
    )
    assert dataset.has_missing
    mask_res, bitmap_res = _mine_both(dataset)
    assert _fingerprint(mask_res) == _fingerprint(bitmap_res)
    assert mask_res.patterns  # the planted contrast must survive


def test_parity_survives_group_selection():
    dataset = adult(scale=0.05)
    labels = dataset.group_labels[:2]
    mask_res, bitmap_res = _mine_both(dataset, groups=labels)
    assert _fingerprint(mask_res) == _fingerprint(bitmap_res)


def test_count_call_totals_agree(categorical_dataset):
    """Both backends answer the identical sequence of count queries."""
    mask_res, bitmap_res = _mine_both(categorical_dataset)
    assert mask_res.stats.count_calls == bitmap_res.stats.count_calls
    assert mask_res.stats.counting_backend == "mask"
    assert bitmap_res.stats.counting_backend == "bitmap"
