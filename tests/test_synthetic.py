"""Tests for the simulated datasets and the paper's qualitative claims
(Sections 4.4 and 5.1-5.4)."""

import numpy as np
import pytest

from repro import ContrastSetMiner, MinerConfig
from repro.dataset import synthetic


class TestGenerators:
    def test_figure2_shape(self):
        ds = synthetic.figure2_example(n=500)
        assert ds.n_rows == 500
        assert ds.schema.names == ("X",)
        sizes = dict(zip(ds.group_labels, ds.group_sizes))
        assert sizes["A"] == pytest.approx(10, abs=1)
        # minority group confined to the top quarter
        x = ds.column("X")
        minority = x[ds.group_mask("A")]
        assert minority.min() > 0.7

    @pytest.mark.parametrize("maker", [
        synthetic.simulated_dataset_1,
        synthetic.simulated_dataset_2,
        synthetic.simulated_dataset_3,
        synthetic.simulated_dataset_4,
    ])
    def test_common_shape(self, maker):
        ds = maker(n=400)
        assert ds.n_rows == 400
        assert ds.schema.names == ("Attribute 1", "Attribute 2")
        assert ds.n_groups == 2

    def test_determinism(self):
        a = synthetic.simulated_dataset_2(n=300, seed=1)
        b = synthetic.simulated_dataset_2(n=300, seed=1)
        assert np.array_equal(a.column("Attribute 1"), b.column("Attribute 1"))

    def test_seed_changes_data(self):
        a = synthetic.simulated_dataset_2(n=300, seed=1)
        b = synthetic.simulated_dataset_2(n=300, seed=2)
        assert not np.array_equal(
            a.column("Attribute 1"), b.column("Attribute 1")
        )


@pytest.fixture(scope="module")
def miner():
    return ContrastSetMiner(
        MinerConfig(k=30, interest_measure="surprising")
    )


class TestPaperClaims:
    def test_ds1_only_attribute1_boundary(self, miner):
        """Section 5.1: SDAD-CS finds only the Attribute 1 split, with
        PR = 1 on both sides, and does not combine the attributes."""
        result = miner.mine(synthetic.simulated_dataset_1())
        meaningful = result.meaningful()
        assert meaningful
        for pattern in meaningful:
            assert pattern.itemset.attributes == ("Attribute 1",)
            assert pattern.purity_ratio == pytest.approx(1.0)

    def test_ds2_no_univariate_rule(self, miner):
        """Section 5.2: no rule on a single attribute; the contrasts are
        2-attribute boxes."""
        result = miner.mine(synthetic.simulated_dataset_2())
        assert result.patterns
        for pattern in result.patterns:
            assert len(pattern.itemset) == 2

    def test_ds3_level1_only(self, miner):
        """Section 5.3: contrasts at level 1 only, boundary near 0.5."""
        result = miner.mine(synthetic.simulated_dataset_3())
        meaningful = result.meaningful()
        assert meaningful
        for pattern in meaningful:
            assert len(pattern.itemset) == 1
            item = pattern.itemset.item_for("Attribute 1")
            assert item is not None
            assert (
                abs(item.interval.lo - 0.5) < 0.05
                or abs(item.interval.hi - 0.5) < 0.05
            )

    def test_ds4_finds_pure_boxes(self, miner):
        """Section 5.4: the two planted group-2 boxes are found as pure
        level-2 contrasts; univariate projections of the boxes are not
        independently productive and get filtered."""
        result = miner.mine(synthetic.simulated_dataset_4())
        meaningful = result.meaningful()
        pure_boxes = [
            p
            for p in meaningful
            if len(p.itemset) == 2
            and p.purity_ratio == pytest.approx(1.0)
            and p.dominant_group == "Group 2"
        ]
        assert len(pure_boxes) == 2
        # the boxes approximate [0,.25]x[0,.5] and [.75,1]x[.75,1]
        corners = []
        for p in pure_boxes:
            i1 = p.itemset.item_for("Attribute 1").interval
            i2 = p.itemset.item_for("Attribute 2").interval
            corners.append((i1.lo, i1.hi, i2.lo, i2.hi))
        corners.sort()
        assert corners[0][1] == pytest.approx(0.25, abs=0.05)
        assert corners[0][3] == pytest.approx(0.50, abs=0.05)
        assert corners[1][0] == pytest.approx(0.75, abs=0.05)
        assert corners[1][2] == pytest.approx(0.75, abs=0.05)

    def test_ds4_level1_projections_filtered(self, miner):
        """The level-1 contrast on Attribute 1 in [0, 0.25] exists in the
        raw list but is explained by the box and must not be meaningful."""
        result = miner.mine(synthetic.simulated_dataset_4())
        meaningful = result.meaningful()
        for pattern in meaningful:
            if len(pattern.itemset) == 1:
                # no surviving level-1 pattern may be dominated by group 2
                # (group 2's mass is entirely inside the two boxes)
                assert pattern.dominant_group == "Group 1"

    def test_figure2_walkthrough(self, miner):
        """Section 4.4: the left half is pure 'B'; the search isolates the
        minority group's band on the right."""
        result = miner.mine(synthetic.figure2_example())
        assert result.patterns
        # some pattern should concentrate group "A" (the 2% minority)
        best_a = max(
            result.patterns,
            key=lambda p: p.support("A") - p.support("B"),
        )
        assert best_a.support("A") > 0.8
        item = best_a.itemset.item_for("X")
        assert item.interval.lo > 0.5
