"""Tests for repro.analysis.boundaries."""

import math

import pytest

from repro.analysis.boundaries import (
    boundary_errors,
    boundary_report,
    pattern_boundaries,
    spurious_cuts,
)
from repro.core.contrast import ContrastPattern
from repro.core.items import (
    CategoricalItem,
    Interval,
    Itemset,
    NumericItem,
)


def _pattern(items):
    return ContrastPattern(
        itemset=Itemset(items),
        counts=(10, 30),
        group_sizes=(100, 100),
        group_labels=("A", "B"),
    )


class TestPatternBoundaries:
    def test_extracts_finite_endpoints(self):
        patterns = [
            _pattern([NumericItem("x", Interval(0.2, 0.6))]),
            _pattern([NumericItem("x", Interval(0.6, 0.9))]),
        ]
        assert pattern_boundaries(patterns, "x") == [0.2, 0.6, 0.9]

    def test_skips_infinite_endpoints(self):
        patterns = [
            _pattern(
                [NumericItem("x", Interval(-math.inf, 0.5))]
            )
        ]
        assert pattern_boundaries(patterns, "x") == [0.5]

    def test_skips_other_attributes(self):
        patterns = [
            _pattern(
                [
                    NumericItem("y", Interval(0.1, 0.9)),
                    CategoricalItem("c", "a"),
                ]
            )
        ]
        assert pattern_boundaries(patterns, "x") == []

    def test_drops_range_endpoints(self):
        patterns = [
            _pattern([NumericItem("x", Interval(0.0, 0.5, True, True))])
        ]
        cuts = pattern_boundaries(
            patterns, "x", value_range=(0.0, 1.0)
        )
        assert cuts == [0.5]  # the observed minimum is not a real cut

    def test_deduplicates(self):
        patterns = [
            _pattern([NumericItem("x", Interval(0.2, 0.5))]),
            _pattern([NumericItem("x", Interval(0.5, 0.8))]),
            _pattern([NumericItem("x", Interval(0.2, 0.8))]),
        ]
        assert pattern_boundaries(patterns, "x") == [0.2, 0.5, 0.8]


class TestErrors:
    def test_errors_to_nearest(self):
        assert boundary_errors([0.48, 0.9], [0.5]) == [
            pytest.approx(0.02)
        ]

    def test_empty_found_is_inf(self):
        assert boundary_errors([], [0.5]) == [math.inf]

    def test_spurious(self):
        assert spurious_cuts([0.5, 0.9], [0.5], tolerance=0.05) == [0.9]
        assert spurious_cuts([0.52], [0.5], tolerance=0.05) == []

    def test_spurious_with_no_truth(self):
        assert spurious_cuts([0.3], [], tolerance=0.05) == [0.3]


class TestBoundaryReport:
    def test_full_report(self):
        patterns = [
            _pattern([NumericItem("x", Interval(0.1, 0.51))]),
            _pattern([NumericItem("x", Interval(0.51, 0.95))]),
        ]
        report = boundary_report(
            patterns, "x", truth=[0.5], tolerance=0.05
        )
        assert report.recovered_all
        assert report.worst_error == pytest.approx(0.01)
        # 0.1 and 0.95 are spurious relative to truth [0.5]
        assert report.n_spurious == 2
        assert "1/1" in report.formatted(0.05)

    def test_missing_boundary(self):
        patterns = [_pattern([NumericItem("x", Interval(0.1, 0.2))])]
        report = boundary_report(patterns, "x", truth=[0.8])
        assert not report.recovered_all or report.worst_error > 0.5
