"""Tests for repro.core.topk.TopKList."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contrast import ContrastPattern
from repro.core.items import CategoricalItem, Itemset
from repro.core.topk import TopKList


def _pattern(tag: str):
    return ContrastPattern(
        itemset=Itemset([CategoricalItem("c", tag)]),
        counts=(1, 2),
        group_sizes=(10, 10),
        group_labels=("A", "B"),
    )


class TestTopKList:
    def test_threshold_before_full_is_delta(self):
        topk = TopKList(3, delta=0.1)
        assert topk.threshold == 0.1
        topk.add(_pattern("a"), 0.5)
        assert topk.threshold == 0.1

    def test_threshold_after_full_is_kth_best(self):
        topk = TopKList(2, delta=0.1)
        topk.add(_pattern("a"), 0.5)
        topk.add(_pattern("b"), 0.3)
        assert topk.threshold == pytest.approx(0.3)

    def test_eviction_keeps_best(self):
        topk = TopKList(2)
        topk.add(_pattern("a"), 0.5)
        topk.add(_pattern("b"), 0.3)
        topk.add(_pattern("c"), 0.4)
        kept = [p.itemset for p in topk.patterns()]
        assert _pattern("a").itemset in kept
        assert _pattern("c").itemset in kept
        assert _pattern("b").itemset not in kept

    def test_rejects_below_threshold_when_full(self):
        topk = TopKList(1)
        topk.add(_pattern("a"), 0.5)
        assert not topk.add(_pattern("b"), 0.4)
        assert len(topk) == 1

    def test_duplicate_itemset_keeps_max(self):
        topk = TopKList(5)
        p = _pattern("a")
        topk.add(p, 0.3)
        topk.add(p, 0.6)
        topk.add(p, 0.4)
        assert len(topk) == 1
        assert topk.interests()[p.itemset] == pytest.approx(0.6)

    def test_patterns_sorted_descending(self):
        topk = TopKList(10)
        for tag, interest in [("a", 0.2), ("b", 0.9), ("c", 0.5)]:
            topk.add(_pattern(tag), interest)
        interests = [topk.interests()[p.itemset] for p in topk.patterns()]
        assert interests == sorted(interests, reverse=True)

    def test_would_accept(self):
        topk = TopKList(1, delta=0.1)
        assert topk.would_accept(0.05)  # not full yet
        topk.add(_pattern("a"), 0.5)
        assert not topk.would_accept(0.4)
        assert topk.would_accept(0.6)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopKList(0)

    def test_iter(self):
        topk = TopKList(5)
        topk.add(_pattern("a"), 0.5)
        assert len(list(topk)) == 1


@settings(max_examples=60, deadline=None)
@given(
    interests=st.lists(
        st.floats(0.001, 1.0, allow_nan=False), min_size=1, max_size=40
    ),
    k=st.integers(1, 10),
)
def test_topk_matches_sorted_truncation(interests, k):
    """Property: TopKList contents equal the k largest distinct inserts."""
    topk = TopKList(k)
    for i, interest in enumerate(interests):
        topk.add(_pattern(f"p{i}"), interest)
    result = sorted(
        (topk.interests()[p.itemset] for p in topk.patterns()),
        reverse=True,
    )
    expected = sorted(interests, reverse=True)[:k]
    assert len(result) == min(k, len(interests))
    assert result == pytest.approx(expected)
