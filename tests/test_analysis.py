"""Tests for the analysis harness (Table 4/5/6 protocols and reports)."""

import numpy as np
import pytest

from repro.analysis import (
    ALGORITHMS,
    census,
    compare_algorithms,
    comparison_table,
    mean_top_k_difference,
    pattern_table,
    run_algorithm,
    supports_histogram,
    timing_table,
)
from repro.core.config import MinerConfig
from repro.core.contrast import ContrastPattern
from repro.core.items import CategoricalItem, Itemset


def _pattern(tag, counts, sizes=(100, 100)):
    return ContrastPattern(
        itemset=Itemset([CategoricalItem("c", tag)]),
        counts=counts,
        group_sizes=sizes,
        group_labels=("A", "B"),
    )


class TestMeanTopK:
    def test_takes_best_k(self):
        patterns = [
            _pattern("a", (90, 10)),  # diff 0.8
            _pattern("b", (60, 10)),  # diff 0.5
            _pattern("c", (30, 10)),  # diff 0.2
        ]
        assert mean_top_k_difference(patterns, 2) == pytest.approx(0.65)

    def test_k_larger_than_list(self):
        patterns = [_pattern("a", (90, 10))]
        assert mean_top_k_difference(patterns, 10) == pytest.approx(0.8)

    def test_empty(self):
        assert mean_top_k_difference([], 5) == 0.0
        assert mean_top_k_difference([_pattern("a", (90, 10))], 0) == 0.0


class TestRunAlgorithm:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_each_algorithm_runs(self, name, mixed_dataset):
        result = run_algorithm(
            name, mixed_dataset, MinerConfig(k=20, max_tree_depth=2)
        )
        assert result.name
        assert result.elapsed_seconds >= 0
        # strong planted contrast: every pipeline should see something
        assert result.patterns
        # all results must be expressed over original attributes
        for pattern in result.patterns:
            for attr in pattern.itemset.attributes:
                assert attr in mixed_dataset.schema

    def test_unknown_algorithm(self, mixed_dataset):
        with pytest.raises(KeyError):
            run_algorithm("nope", mixed_dataset)

    def test_patterns_ranked_by_difference(self, mixed_dataset):
        result = run_algorithm(
            "sdad", mixed_dataset, MinerConfig(k=20, max_tree_depth=2)
        )
        diffs = [p.support_difference for p in result.patterns]
        assert diffs == sorted(diffs, reverse=True)

    def test_restored_counts_are_consistent(self, mixed_dataset):
        """Bin-based miners must report counts matching a recount on the
        original data."""
        result = run_algorithm(
            "entropy", mixed_dataset, MinerConfig(k=20, max_tree_depth=2)
        )
        for pattern in result.patterns:
            mask = pattern.itemset.cover(mixed_dataset)
            counts = tuple(
                int(c) for c in mixed_dataset.group_counts(mask)
            )
            assert counts == pattern.counts


class TestCompareAlgorithms:
    def test_protocol(self, mixed_dataset):
        comparison = compare_algorithms(
            mixed_dataset,
            "fixture",
            algorithms=("sdad_np", "entropy"),
            config=MinerConfig(k=20, max_tree_depth=2),
        )
        assert comparison.k_used >= 1
        assert set(comparison.rows) == {"sdad_np", "entropy"}
        reference = comparison.rows["sdad_np"]
        assert reference.p_value_vs_reference == 1.0
        assert 0 <= comparison.rows["entropy"].mean_difference <= 1

    def test_reference_must_be_included(self, mixed_dataset):
        with pytest.raises(ValueError):
            compare_algorithms(
                mixed_dataset,
                algorithms=("sdad_np",),
                reference="cortana",
            )

    def test_formatted_star(self):
        from repro.analysis.comparison import ComparisonRow

        same = ComparisonRow("x", 0.5, 10, 0.9, 0.0, 0)
        different = ComparisonRow("x", 0.5, 10, 0.01, 0.0, 0)
        assert same.formatted().endswith("*")
        assert not different.formatted().endswith("*")


class TestCensus:
    def test_counts_consistent(self, mixed_dataset):
        result = census(
            mixed_dataset,
            "fixture",
            config=MinerConfig(k=20, max_tree_depth=2),
            top=20,
        )
        assert result.n_patterns == result.n_meaningful + result.n_meaningless
        assert result.n_patterns <= 20
        assert "fixture" in result.formatted()


class TestReports:
    def test_pattern_table_contains_rows(self):
        patterns = [_pattern("a", (90, 10)), _pattern("b", (60, 10))]
        text = pattern_table(patterns, title="T")
        assert "c = a" in text and "c = b" in text
        assert "0.90" in text

    def test_pattern_table_empty(self):
        assert "no contrasts" in pattern_table([])

    def test_comparison_and_timing_tables(self, mixed_dataset):
        comparison = compare_algorithms(
            mixed_dataset,
            "fixture",
            algorithms=("sdad_np", "entropy"),
            config=MinerConfig(k=10, max_tree_depth=1),
        )
        table = comparison_table([comparison], ("sdad_np", "entropy"))
        assert "fixture" in table
        timing = timing_table([comparison], ("sdad_np", "entropy"))
        assert "fixture" in timing

    def test_supports_histogram(self):
        text = supports_histogram(
            ["(0, 1]", "(1, 2]"],
            {"A": [0.5, 0.2], "B": [0.1, 0.9]},
            purity=[0.8, 0.78],
            title="demo",
        )
        assert "demo" in text
        assert "PR=0.80" in text
