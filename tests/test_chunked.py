"""Unit tests for the chunked on-disk columnar store and its lazy view.

Covers the satellite checklist explicitly: codec round-trips for
missing values, unicode and empty-string categories, single-row chunks;
digest stability (explicit little-endian dtypes make the manifest
digests a pure function of the values, asserted against hardcoded
hashes); plus append/atomicity semantics, the mmap read path, the lazy
view's equivalence to the dense dataset, corruption detection, and the
tiny-pickle contract parallel workers rely on.
"""

import json
import pickle

import numpy as np
import pytest

from repro import Attribute, Dataset, Schema
from repro.dataset.chunked import (
    DEFAULT_CHUNK_SIZE,
    ChunkedDataset,
    ChunkedDatasetError,
    ChunkedView,
    categorical_codec,
)
from repro.resilience.checkpoint import dataset_fingerprint


def _dense_equal(a: Dataset, b: Dataset) -> bool:
    if a.schema != b.schema or a.group_labels != b.group_labels:
        return False
    if not np.array_equal(
        np.asarray(a.group_codes), np.asarray(b.group_codes)
    ):
        return False
    return all(
        np.array_equal(
            a.column(name), b.column(name), equal_nan=True
        )
        for name in a.schema.names
    )


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------


def test_categorical_codec_widths():
    assert categorical_codec(2) == "<u1"
    assert categorical_codec(256) == "<u1"
    assert categorical_codec(257) == "<u2"
    assert categorical_codec(65_536) == "<u2"
    assert categorical_codec(65_537) == "<u4"
    with pytest.raises(ChunkedDatasetError):
        categorical_codec(2**33)


def test_codecs_recorded_in_manifest(store_dir, mixed_dataset):
    ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=100)
    manifest = json.loads((store_dir / "manifest.json").read_text())
    assert manifest["codecs"]["x"] == "<f8"
    assert manifest["codecs"]["color"] == "<u1"
    assert manifest["codecs"]["__group__"] == "<u1"


def test_wide_cardinality_roundtrip(store_dir):
    # 300 categories forces the <u2 codec
    categories = [f"cat-{i}" for i in range(300)]
    schema = Schema.of([Attribute.categorical("c", categories)])
    codes = np.arange(300, dtype=np.int64) % 300
    data = Dataset(
        schema, {"c": codes}, np.zeros(300, dtype=np.int64), ["only"]
    )
    store = ChunkedDataset.pack(store_dir, data, chunk_size=7)
    assert json.loads((store_dir / "manifest.json").read_text())[
        "codecs"
    ]["c"] == "<u2"
    assert _dense_equal(store.to_dataset(), data)


# ---------------------------------------------------------------------------
# Round-trips (satellite: codec edge cases)
# ---------------------------------------------------------------------------


def test_roundtrip_missing_values(store_dir):
    schema = Schema.of(
        [Attribute.continuous("x"), Attribute.continuous("y")]
    )
    x = np.array([0.5, np.nan, 1.5, np.nan])
    y = np.array([np.nan, -1.0, np.inf, -np.inf])
    data = Dataset(
        schema, {"x": x, "y": y},
        np.array([0, 1, 0, 1]), ["a", "b"],
    )
    store = ChunkedDataset.pack(store_dir, data, chunk_size=3)
    back = store.to_dataset()
    assert _dense_equal(back, data)
    # NaN semantics survive: the view reports the same missing rows
    assert np.array_equal(store.view().missing_mask(), data.missing_mask())


def test_roundtrip_unicode_and_empty_categories(store_dir):
    categories = ["", "café", "日本語", "naïve ", "a\tb"]
    schema = Schema.of([Attribute.categorical("label", categories)])
    codes = np.array([0, 1, 2, 3, 4, 2, 0], dtype=np.int64)
    data = Dataset(
        schema,
        {"label": codes},
        np.array([0, 0, 0, 1, 1, 1, 1]),
        ["ok", "naïve-group"],
    )
    store = ChunkedDataset.pack(store_dir, data, chunk_size=2)
    reopened = ChunkedDataset(store.path)
    assert reopened.schema["label"].categories == tuple(categories)
    assert reopened.group_labels == ("ok", "naïve-group")
    assert _dense_equal(reopened.to_dataset(), data)


def test_roundtrip_single_row_chunks(store_dir, mixed_dataset):
    small = mixed_dataset.restrict(
        np.arange(mixed_dataset.n_rows) < 5
    )
    store = ChunkedDataset.pack(store_dir, small, chunk_size=1)
    assert store.n_chunks == 5
    assert all(meta.n_rows == 1 for meta in store.chunks)
    assert _dense_equal(store.to_dataset(), small)
    assert dataset_fingerprint(store.view()) == dataset_fingerprint(small)


def test_empty_append_is_a_noop(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=200)
    before = store.chunk_digests()
    empty = mixed_dataset.restrict(
        np.zeros(mixed_dataset.n_rows, dtype=bool)
    )
    assert store.append(empty) == []
    assert store.chunk_digests() == before


# ---------------------------------------------------------------------------
# Digest stability (satellite: explicit dtypes/endianness)
# ---------------------------------------------------------------------------


def _fixed_dataset() -> Dataset:
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("c", ["p", "q", "r"]),
        ]
    )
    return Dataset(
        schema,
        {
            "x": np.array([0.0, 0.25, -1.5, 3.75], dtype=np.float64),
            "c": np.array([0, 2, 1, 0], dtype=np.int64),
        },
        np.array([0, 1, 1, 0], dtype=np.int64),
        ["g0", "g1"],
    )


def test_digests_are_platform_stable(store_dir):
    """The per-column digests hash explicit little-endian encodings, so
    they are a pure function of the values — these exact hex strings
    must reproduce on any platform and any numpy version."""
    store = ChunkedDataset.pack(store_dir, _fixed_dataset())
    meta = store.chunks[0]
    assert meta.column_digests["x"] == (
        "7ff60b0e4792aa86f52de240be3e373263121440ceb923a3349578177ff2a756"
    )
    assert meta.column_digests["c"] == (
        "c7499a5aeb18064ca2e52b8c1b7d027ccd80d4f52256d2139d2d009afdc3d782"
    )
    assert meta.group_digest == (
        "d5e2d2ac07b741be58f6b9e50ede5fdcf16f3e8053ecef9350e7744b0d8bd90c"
    )
    assert meta.digest == (
        "533d031b1f7c689b7370df9e88fda2cdf14a4aef9ac7cbf7d63e83993b2a88fa"
    )


def test_same_values_same_digests_regardless_of_chunking(
    store_dir, tmp_path, mixed_dataset
):
    """One chunk of the same rows always hashes identically, however
    the surrounding store was laid out."""
    a = ChunkedDataset.pack(store_dir, mixed_dataset)
    b = ChunkedDataset.pack(tmp_path / "other", mixed_dataset)
    assert a.chunk_digests() == b.chunk_digests()
    # ... and chunking differently changes the partition, not the data:
    c = ChunkedDataset.pack(tmp_path / "third", mixed_dataset,
                            chunk_size=100)
    assert _dense_equal(c.to_dataset(), a.to_dataset())
    assert c.chunk_digests() != a.chunk_digests()


def test_append_never_touches_existing_digests(store_dir, mixed_dataset):
    half = mixed_dataset.n_rows // 2
    first = mixed_dataset.restrict(np.arange(mixed_dataset.n_rows) < half)
    rest = mixed_dataset.restrict(np.arange(mixed_dataset.n_rows) >= half)
    store = ChunkedDataset.pack(store_dir, first, chunk_size=75)
    before = store.chunk_digests()
    new_ids = store.append(rest, chunk_size=75)
    assert len(new_ids) == len(store.chunks) - len(before)
    assert store.chunk_digests()[: len(before)] == before
    assert _dense_equal(store.to_dataset(), mixed_dataset)


# ---------------------------------------------------------------------------
# Store mechanics
# ---------------------------------------------------------------------------


def test_open_requires_manifest(tmp_path):
    with pytest.raises(ChunkedDatasetError, match="not a chunked dataset"):
        ChunkedDataset(tmp_path)


def test_create_refuses_existing_store(store_dir, mixed_dataset):
    ChunkedDataset.pack(store_dir, mixed_dataset)
    with pytest.raises(ChunkedDatasetError, match="already holds"):
        ChunkedDataset.create(
            store_dir, mixed_dataset.schema, mixed_dataset.group_labels
        )


def test_append_rejects_schema_mismatch(store_dir, mixed_dataset,
                                        categorical_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset)
    with pytest.raises(ChunkedDatasetError, match="schema"):
        store.append(categorical_dataset)


def test_append_rejects_group_mismatch(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset)
    relabeled = Dataset(
        mixed_dataset.schema,
        {n: mixed_dataset.column(n) for n in mixed_dataset.schema.names},
        np.asarray(mixed_dataset.group_codes),
        ["B", "A"],  # swapped
    )
    with pytest.raises(ChunkedDatasetError, match="group labels"):
        store.append(relabeled)


def test_verify_detects_corruption(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=200)
    store.verify()
    victim = store.path / "chunks" / "chunk-000001" / "x.bin"
    data = bytearray(victim.read_bytes())
    data[0] ^= 0xFF
    victim.write_bytes(bytes(data))
    with pytest.raises(ChunkedDatasetError, match="digest mismatch"):
        store.verify()


def test_truncated_chunk_file_fails_fast(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=200)
    victim = store.path / "chunks" / "chunk-000000" / "noise.bin"
    victim.write_bytes(victim.read_bytes()[:-8])
    with pytest.raises(ChunkedDatasetError, match="bytes"):
        store.chunk_dataset(0)


def test_reload_sees_external_appends(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=300)
    other = ChunkedDataset(store_dir)
    store.append(mixed_dataset, chunk_size=300)
    assert other.n_rows == mixed_dataset.n_rows  # stale until reload
    other.reload()
    assert other.n_rows == 2 * mixed_dataset.n_rows


def test_iter_chunks_yields_plain_datasets(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=250)
    chunks = list(store.iter_chunks())
    assert [c.n_rows for c in chunks] == [m.n_rows for m in store.chunks]
    assert sum(c.n_rows for c in chunks) == mixed_dataset.n_rows
    merged = np.concatenate([c.column("x") for c in chunks])
    assert np.array_equal(merged, mixed_dataset.column("x"))
    # group sizes are additive across chunks
    sizes = np.sum([c.group_counts() for c in chunks], axis=0)
    assert tuple(int(s) for s in sizes) == mixed_dataset.group_sizes


def test_mmap_columns_are_lazy(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=200)
    chunk = store.chunk_dataset(0)
    # continuous columns stay memory-mapped (zero-copy reads): the
    # ultimate base buffer of the column view is the mmap itself
    base = chunk.column("x")
    while (
        isinstance(base, np.ndarray)
        and not isinstance(base, np.memmap)
        and base.base is not None
    ):
        base = base.base
    assert isinstance(base, np.memmap)


def test_default_chunk_size_pack(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset)
    assert store.n_chunks == 1
    assert DEFAULT_CHUNK_SIZE >= mixed_dataset.n_rows


# ---------------------------------------------------------------------------
# The lazy view
# ---------------------------------------------------------------------------


def test_view_matches_dense_dataset(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=128)
    view = store.view()
    assert view.n_rows == mixed_dataset.n_rows
    assert view.group_sizes == mixed_dataset.group_sizes
    for name in mixed_dataset.schema.names:
        assert np.array_equal(view.column(name),
                              mixed_dataset.column(name))
    assert dataset_fingerprint(view) == dataset_fingerprint(mixed_dataset)


def test_view_column_lru_is_bounded(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=128)
    view = store.view(max_resident_columns=2)
    view.column("x")
    view.column("noise")
    view.column("color")
    assert view.resident_columns() == ("noise", "color")
    view.column("noise")  # refresh recency
    view.column("x")
    assert view.resident_columns() == ("noise", "x")


def test_view_restrict_and_select_groups_materialise(store_dir,
                                                     mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=128)
    view = store.view()
    mask = np.asarray(view.group_codes) == 0
    assert _dense_equal(view.restrict(mask), mixed_dataset.restrict(mask))
    assert _dense_equal(
        view.select_groups(["B"]), mixed_dataset.select_groups(["B"])
    )


def test_view_project_stays_lazy(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=128)
    projected = store.view().project(["x", "color"])
    assert isinstance(projected, ChunkedView)
    assert projected.schema.names == ("x", "color")
    assert np.array_equal(projected.column("x"), mixed_dataset.column("x"))
    with pytest.raises(KeyError):
        projected.column("noise")


def test_view_pins_chunk_snapshot_across_appends(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=200)
    view = store.view()
    store.append(mixed_dataset, chunk_size=200)
    # the in-flight view still sees exactly its original rows
    assert view.n_rows == mixed_dataset.n_rows
    assert np.array_equal(view.column("x"), mixed_dataset.column("x"))
    # a fresh view sees everything
    assert store.view().n_rows == 2 * mixed_dataset.n_rows


def test_view_pickle_is_tiny_and_reopens(store_dir, mixed_dataset):
    """Parallel workers must receive (path, chunk ids), never arrays."""
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=64)
    view = store.view()
    blob = pickle.dumps(view)
    assert len(blob) < 2_000
    reopened = pickle.loads(blob)
    assert isinstance(reopened, ChunkedView)
    assert reopened.chunk_ids == view.chunk_ids
    assert dataset_fingerprint(reopened) == dataset_fingerprint(
        mixed_dataset
    )


def test_view_of_vanished_chunks_fails_loudly(store_dir, mixed_dataset):
    store = ChunkedDataset.pack(store_dir, mixed_dataset, chunk_size=200)
    with pytest.raises(ChunkedDatasetError, match="no longer holds"):
        ChunkedView(store, chunk_ids=("chunk-999999",))


def test_cache_chunks_validation(store_dir, mixed_dataset):
    ChunkedDataset.pack(store_dir, mixed_dataset)
    with pytest.raises(ChunkedDatasetError, match="cache_chunks"):
        ChunkedDataset(store_dir, cache_chunks=0)
    with pytest.raises(ChunkedDatasetError, match="chunk_size"):
        ChunkedDataset(store_dir).append(mixed_dataset, chunk_size=0)
