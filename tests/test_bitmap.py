"""Tests for the bitmap index substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.items import CategoricalItem, Itemset
from repro.dataset.bitmap import BitmapIndex
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _dataset(n=200, seed=0):
    rng = np.random.default_rng(seed)
    schema = Schema.of(
        [
            Attribute.categorical("a", ["x", "y", "z"]),
            Attribute.categorical("b", ["p", "q"]),
            Attribute.continuous("noise"),
        ]
    )
    return Dataset(
        schema,
        {
            "a": rng.integers(0, 3, n),
            "b": rng.integers(0, 2, n),
            "noise": rng.uniform(0, 1, n),
        },
        rng.integers(0, 2, n),
        ["G0", "G1"],
    )


class TestBitmapIndex:
    def test_counts_match_mask_path(self):
        ds = _dataset()
        index = BitmapIndex(ds)
        for a_val in ("x", "y", "z"):
            for b_val in ("p", "q"):
                itemset = Itemset(
                    [
                        CategoricalItem("a", a_val),
                        CategoricalItem("b", b_val),
                    ]
                )
                mask = itemset.cover(ds)
                assert index.count(itemset) == int(mask.sum())
                np.testing.assert_array_equal(
                    index.group_counts(itemset), ds.group_counts(mask)
                )

    def test_supports_match(self):
        ds = _dataset()
        index = BitmapIndex(ds)
        itemset = Itemset([CategoricalItem("a", "x")])
        np.testing.assert_allclose(
            index.supports(itemset), ds.supports(itemset.cover(ds))
        )

    def test_empty_itemset_counts_everything(self):
        ds = _dataset()
        index = BitmapIndex(ds)
        assert index.count(Itemset()) == ds.n_rows

    def test_continuous_attribute_rejected(self):
        ds = _dataset()
        with pytest.raises(ValueError, match="categorical"):
            BitmapIndex(ds, attributes=["noise"])

    def test_numeric_item_rejected(self):
        from repro.core.items import Interval, NumericItem

        ds = _dataset()
        index = BitmapIndex(ds)
        itemset = Itemset([NumericItem("noise", Interval(0, 1))])
        with pytest.raises(ValueError):
            index.cover_bits(itemset)

    def test_unknown_item(self):
        ds = _dataset()
        index = BitmapIndex(ds, attributes=["a"])
        with pytest.raises(KeyError):
            index.item_bitmap(CategoricalItem("b", "p"))

    def test_memory_is_bounded(self):
        ds = _dataset(n=1000)
        index = BitmapIndex(ds)
        # 5 value bitmaps + 2 group bitmaps + full, 125 bytes each
        assert index.memory_bytes() <= 8 * 200

    def test_odd_row_counts(self):
        # row counts not divisible by 8 exercise packbits padding
        for n in (1, 7, 9, 63, 65):
            ds = _dataset(n=n, seed=n)
            index = BitmapIndex(ds)
            itemset = Itemset([CategoricalItem("a", "x")])
            assert index.count(itemset) == int(itemset.cover(ds).sum())


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 300),
    seed=st.integers(0, 1000),
)
def test_bitmap_counts_always_match(n, seed):
    """Property: bitmap counting agrees with mask counting for every
    single-item and two-item categorical itemset."""
    ds = _dataset(n=n, seed=seed)
    index = BitmapIndex(ds)
    items = [CategoricalItem("a", "x"), CategoricalItem("b", "q")]
    for itemset in (Itemset([items[0]]), Itemset(items)):
        mask = itemset.cover(ds)
        np.testing.assert_array_equal(
            index.group_counts(itemset), ds.group_counts(mask)
        )
