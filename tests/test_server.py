"""PatternServer: REST behaviour, parity, hot swap, concurrency.

The hard guarantees under test:

* responses to every query shape are byte-identical to filtering the
  in-memory ``MiningResult`` directly (same evaluator, same encoder);
* a client cannot induce a 5xx — malformed input maps to 4xx;
* under ≥8 threads of mixed ``/match`` traffic with concurrent hot
  swaps, every response is computed against exactly one run version;
* a corrupt store run is quarantined and reported, the server survives.
"""

import json
import threading
import http.client

import numpy as np
import pytest

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.core.contrast import ContrastPattern
from repro.core.items import CategoricalItem, Interval, Itemset, NumericItem
from repro.serve.index import PatternIndex, row_from_dataset
from repro.serve.query import Query, apply_query, encode_entry
from repro.serve.server import PatternServer, ServeConfig
from repro.serve.store import PatternStore


@pytest.fixture(scope="module")
def mined():
    rng = np.random.default_rng(12345)
    n = 600
    group = rng.integers(0, 2, n)
    x = np.where(
        group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1.0, n)
    )
    color = rng.integers(0, 3, n)
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("color", ["red", "green", "blue"]),
        ]
    )
    dataset = Dataset(
        schema, {"x": x, "color": color}, group, ["A", "B"]
    )
    result = ContrastSetMiner(MinerConfig(max_tree_depth=2)).mine(dataset)
    assert result.patterns
    return dataset, result


@pytest.fixture
def served(tmp_path, mined):
    dataset, result = mined
    store = PatternStore(tmp_path / "store")
    run_id = store.put(result, tags=("test",))
    server = PatternServer(store, ServeConfig(port=0))
    server.publish_run(run_id)
    host, port = server.start()
    yield dataset, result, store, run_id, server, host, port
    server.stop()


def _get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _post(host, port, path, body):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(
            "POST",
            path,
            body=body if isinstance(body, bytes) else json.dumps(body),
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, served):
        _, _, _, run_id, _, host, port = served
        status, body = _get(host, port, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["active_run"] == run_id

    def test_runs_listing(self, served):
        _, _, _, run_id, _, host, port = served
        status, body = _get(host, port, "/runs")
        payload = json.loads(body)
        assert status == 200
        assert [run["run_id"] for run in payload["runs"]] == [run_id]
        assert payload["active_run"] == run_id

    def test_run_meta_carries_summary(self, served):
        _, result, _, run_id, _, host, port = served
        status, body = _get(host, port, f"/runs/{run_id}")
        payload = json.loads(body)
        assert status == 200
        assert payload["n_patterns"] == len(result.patterns)
        assert payload["summary"]["n_rows"] == result.dataset.n_rows
        assert payload["active"] is True

    def test_metrics_counts_requests(self, served):
        _, _, _, _, _, host, port = served
        _get(host, port, "/healthz")
        _get(host, port, "/healthz")
        status, body = _get(host, port, "/metrics")
        payload = json.loads(body)
        assert status == 200
        assert payload["endpoints"]["healthz"]["requests"] >= 2
        assert "query_cache" in payload

    def test_match_against_active_run(self, served):
        dataset, result, _, run_id, _, host, port = served
        row = row_from_dataset(dataset, 0)
        status, body = _post(host, port, "/match", {"row": row})
        payload = json.loads(body)
        assert status == 200
        assert payload["run"] == run_id
        expected = [
            p.itemset
            for p in result.patterns
            if bool(p.itemset.cover(dataset)[0])
        ]
        got = [
            entry["description"] for entry in payload["matches"]
        ]
        assert got == [str(itemset) for itemset in expected]

    def test_query_cache_serves_identical_bytes(self, served):
        _, _, _, run_id, server, host, port = served
        path = f"/runs/{run_id}/patterns?min_diff=0.2&limit=3"
        status1, body1 = _get(host, port, path)
        status2, body2 = _get(host, port, path)
        assert status1 == status2 == 200
        assert body1 == body2
        assert server._cache.stats()["hits"] >= 1


class TestGoldenParity:
    """Server bytes == direct MiningResult filtering, every query shape."""

    QUERIES = [
        "",
        "limit=5",
        "min_diff=0.2",
        "min_pr=0.5&limit=3",
        "sort=support_difference",
        "sort=p_value&order=asc",
        "sort=surprising&min_surprising=0.05",
        "max_level=1&sort=level&order=asc",
    ]

    def test_patterns_byte_identical(self, served):
        _, result, _, run_id, _, host, port = served
        for raw in self.QUERIES:
            status, body = _get(
                host, port, f"/runs/{run_id}/patterns?{raw}"
            )
            assert status == 200, body
            payload = json.loads(body)
            query = Query.from_params(
                dict(p.split("=") for p in raw.split("&") if p)
            )
            index = PatternIndex(result.patterns, result.interests)
            expected = [
                encode_entry(e) for e in apply_query(index, query)
            ]
            assert json.dumps(payload["patterns"]) == json.dumps(expected)

    def test_match_byte_identical(self, served):
        dataset, result, _, run_id, _, host, port = served
        index = PatternIndex(result.patterns, result.interests)
        for i in (0, 17, 123, 599):
            row = row_from_dataset(dataset, i)
            status, body = _post(host, port, "/match", {"row": row})
            assert status == 200
            payload = json.loads(body)
            expected = [encode_entry(e) for e in index.match(row)]
            assert json.dumps(payload["matches"]) == json.dumps(expected)


class TestValidation:
    """Nothing a client sends may produce a 5xx."""

    def test_unknown_run_404(self, served):
        *_, host, port = served
        status, body = _get(host, port, "/runs/run-nope/patterns")
        assert status == 404
        assert "run-nope" in json.loads(body)["error"]

    def test_unknown_endpoint_404(self, served):
        *_, host, port = served
        assert _get(host, port, "/frobnicate")[0] == 404

    def test_bad_query_param_400(self, served):
        _, _, _, run_id, _, host, port = served
        status, body = _get(
            host, port, f"/runs/{run_id}/patterns?bogus=1"
        )
        assert status == 400
        assert "bogus" in json.loads(body)["error"]

    def test_bad_number_400(self, served):
        _, _, _, run_id, _, host, port = served
        status, _ = _get(
            host, port, f"/runs/{run_id}/patterns?min_diff=lots"
        )
        assert status == 400

    def test_duplicate_param_400(self, served):
        _, _, _, run_id, _, host, port = served
        status, _ = _get(
            host, port, f"/runs/{run_id}/patterns?limit=1&limit=2"
        )
        assert status == 400

    def test_non_json_body_400(self, served):
        *_, host, port = served
        assert _post(host, port, "/match", b"not json")[0] == 400

    def test_missing_row_400(self, served):
        *_, host, port = served
        assert _post(host, port, "/match", {"nope": 1})[0] == 400

    def test_bad_row_value_400(self, served):
        *_, host, port = served
        status, _ = _post(
            host, port, "/match", {"row": {"x": [1, 2]}}
        )
        assert status == 400

    def test_non_numeric_for_interval_400(self, served):
        *_, host, port = served
        status, _ = _post(
            host, port, "/match", {"row": {"x": "hot"}}
        )
        assert status == 400

    def test_wrong_method_405(self, served):
        *_, host, port = served
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("DELETE", "/healthz")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_match_without_active_run_404(self, tmp_path):
        server = PatternServer(
            PatternStore(tmp_path / "empty"), ServeConfig(port=0)
        )
        host, port = server.start()
        try:
            status, body = _post(host, port, "/match", {"row": {}})
            assert status == 404
            assert "no active run" in json.loads(body)["error"]
        finally:
            server.stop()

    def test_hostile_inputs_never_500(self, served):
        *_, host, port = served
        hostile = [
            lambda: _get(host, port, "/runs/%00weird/patterns"),
            lambda: _post(host, port, "/match", b"\xff\xfe garbage"),
            lambda: _get(host, port, "/runs//patterns"),
            lambda: _get(host, port, "/healthz?noise=1"),
            lambda: _post(host, port, "/match", {"row": {}, "x": 1}),
            lambda: _post(
                host, port, "/match", {"row": {"x": 0.1}, "run": 7}
            ),
        ]
        for attack in hostile:
            status, _ = attack()
            assert 400 <= status < 500, status


class TestCorruptRunServing:
    def test_corrupt_run_quarantined_not_fatal(self, tmp_path, mined):
        dataset, result = mined
        store = PatternStore(tmp_path / "store")
        bad_id = store.put(result)
        good_id = store.put(result)
        # corrupt the first run on disk
        patterns = store.root / "runs" / bad_id / "patterns.jsonl"
        patterns.write_bytes(b"garbage\n")
        server = PatternServer(store, ServeConfig(port=0))
        server.publish_run(good_id)
        host, port = server.start()
        try:
            status, body = _get(host, port, f"/runs/{bad_id}/patterns")
            assert status == 410
            assert "quarantined" in json.loads(body)["error"]
            # the corrupt run is now gone from the listing...
            status, body = _get(host, port, "/runs")
            assert [r["run_id"] for r in json.loads(body)["runs"]] == [
                good_id
            ]
            # ...and the good run still serves
            assert _get(
                host, port, f"/runs/{good_id}/patterns?limit=1"
            )[0] == 200
        finally:
            server.stop()


def _hand_built_run(color_value: str, lo: float, hi: float):
    """A tiny distinguishable run: one categorical + one numeric pattern."""
    categorical = ContrastPattern(
        itemset=Itemset([CategoricalItem("color", color_value)]),
        counts=(80, 20),
        group_sizes=(100, 100),
        group_labels=("A", "B"),
        level=1,
    )
    numeric = ContrastPattern(
        itemset=Itemset(
            [NumericItem("x", Interval(lo, hi, True, True))]
        ),
        counts=(10, 90),
        group_sizes=(100, 100),
        group_labels=("A", "B"),
        level=1,
    )
    patterns = [categorical, numeric]
    interests = {p.itemset: p.support_difference for p in patterns}
    return patterns, interests


class TestHotSwapConcurrency:
    """≥8 client threads of /match while a publisher hot-swaps runs.

    Every response must be internally consistent: the matches it carries
    must be exactly what the run version it names would produce — proof
    that a request never observes half of one run and half of another.
    """

    N_THREADS = 8
    REQUESTS_PER_THREAD = 60

    def test_responses_come_from_exactly_one_version(self):
        run_a, interests_a = _hand_built_run("red", 0.0, 0.5)
        run_b, interests_b = _hand_built_run("blue", 0.5, 1.0)
        row = {"color": "red", "x": 0.25}
        # expected matches per run for this row, via the same encoder
        expected = {
            "run-a": [
                encode_entry(e)
                for e in PatternIndex(run_a, interests_a).match(row)
            ],
            "run-b": [
                encode_entry(e)
                for e in PatternIndex(run_b, interests_b).match(row)
            ],
        }
        # sanity: the two versions are distinguishable by their matches
        assert expected["run-a"] != expected["run-b"]

        server = PatternServer(config=ServeConfig(port=0))
        server.publish_patterns(run_a, interests_a, run_id="run-a")
        host, port = server.start()
        stop = threading.Event()
        failures: list = []

        def swapper():
            flip = False
            while not stop.is_set():
                if flip:
                    server.publish_patterns(
                        run_a, interests_a, run_id="run-a"
                    )
                else:
                    server.publish_patterns(
                        run_b, interests_b, run_id="run-b"
                    )
                flip = not flip

        def client():
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                for _ in range(self.REQUESTS_PER_THREAD):
                    conn.request("POST", "/match", json.dumps({"row": row}))
                    response = conn.getresponse()
                    body = response.read()
                    if response.status != 200:
                        failures.append(("status", response.status, body))
                        return
                    payload = json.loads(body)
                    claimed = payload["run"]
                    if claimed not in expected:
                        failures.append(("run", claimed))
                        return
                    if payload["matches"] != expected[claimed]:
                        failures.append(("torn", claimed, payload))
                        return
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                failures.append(("exception", repr(exc)))
            finally:
                conn.close()

        swap_thread = threading.Thread(target=swapper, daemon=True)
        clients = [
            threading.Thread(target=client, daemon=True)
            for _ in range(self.N_THREADS)
        ]
        try:
            swap_thread.start()
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join(timeout=60)
        finally:
            stop.set()
            swap_thread.join(timeout=10)
            server.stop()
        assert not failures, failures[:3]
        # both versions actually served during the hammer window
        snapshot = server.metrics.snapshot()
        assert snapshot["match"]["requests"] == (
            self.N_THREADS * self.REQUESTS_PER_THREAD
        )
        assert snapshot["match"]["errors"] == 0


class TestStreamingPublish:
    def test_streaming_refresh_hot_swaps_server(self, mined):
        from repro.streaming.miner import StreamingContrastMiner

        dataset, _ = mined
        server = PatternServer(config=ServeConfig(port=0))
        miner = StreamingContrastMiner(
            dataset.schema,
            dataset.group_labels,
            MinerConfig(max_tree_depth=1),
            window_size=700,
            refresh_every=200,
            min_rows=100,
            publish_to=server,
        )
        columns = {
            name: dataset.column(name) for name in dataset.schema.names
        }
        update = miner.update(columns, dataset.group_codes)
        assert update.refreshed
        assert server.active_run == "stream-000001"
        assert server.epoch == 1
        assert miner.failed_publishes == 0
        # the active index is queryable without the server running HTTP
        index = server._active.index
        assert len(index) == len(update.patterns)

    def test_publish_failures_counted_not_raised(self, mined):
        from repro.streaming.miner import StreamingContrastMiner

        dataset, _ = mined

        class ExplodingServer:
            def publish_result(self, result, run_id=None):
                raise RuntimeError("publication broke")

        miner = StreamingContrastMiner(
            dataset.schema,
            dataset.group_labels,
            MinerConfig(max_tree_depth=1),
            window_size=700,
            refresh_every=200,
            min_rows=100,
            publish_to=ExplodingServer(),
        )
        columns = {
            name: dataset.column(name) for name in dataset.schema.names
        }
        update = miner.update(columns, dataset.group_codes)
        assert update.refreshed  # the stream survived
        assert miner.failed_publishes == 1


class TestBatchMatch:
    """POST /match with "rows": row-for-row agreement with single calls.

    The batch response is dictionary-encoded: ``results[i].matches``
    lists pattern *ranks* and ``patterns`` carries each matched
    pattern's full wire shape exactly once, keyed by rank.  Expanding a
    row's ranks through the table must reproduce the single-row call's
    ``matches`` byte-for-byte.
    """

    def test_batch_agrees_with_single_calls(self, served):
        dataset, _, _, run_id, _, host, port = served
        rows = [row_from_dataset(dataset, i) for i in range(40)]
        singles = []
        for row in rows:
            status, body = _post(host, port, "/match", {"row": row})
            assert status == 200, body
            singles.append(json.loads(body))
        status, body = _post(host, port, "/match", {"rows": rows})
        assert status == 200, body
        payload = json.loads(body)
        assert payload["run"] == run_id
        assert payload["count"] == len(rows)
        assert len(payload["results"]) == len(rows)
        table = payload["patterns"]
        for single, batched in zip(singles, payload["results"]):
            expanded = [table[str(rank)] for rank in batched["matches"]]
            assert expanded == single["matches"]
            assert batched["count"] == single["count"]
        # the table carries exactly the union of matched ranks
        assert set(table) == {
            str(rank)
            for res in payload["results"]
            for rank in res["matches"]
        }

    def test_batch_response_is_cached(self, served):
        dataset, _, _, _, server, host, port = served
        rows = [row_from_dataset(dataset, i) for i in (3, 5)]
        _, body1 = _post(host, port, "/match", {"rows": rows})
        hits_before = server._cache.stats()["hits"]
        _, body2 = _post(host, port, "/match", {"rows": rows})
        assert body1 == body2
        assert server._cache.stats()["hits"] > hits_before

    def test_row_and_rows_together_400(self, served):
        *_, host, port = served
        status, body = _post(
            host, port, "/match", {"row": {"x": 0.1}, "rows": []}
        )
        assert status == 400
        assert "exactly one" in json.loads(body)["error"]

    def test_rows_not_an_array_400(self, served):
        *_, host, port = served
        status, body = _post(host, port, "/match", {"rows": {"x": 1}})
        assert status == 400
        assert "array" in json.loads(body)["error"]

    def test_rows_element_not_object_400(self, served):
        *_, host, port = served
        status, body = _post(
            host, port, "/match", {"rows": [{"x": 0.1}, 7]}
        )
        assert status == 400
        assert "rows[1]" in json.loads(body)["error"]

    def test_bad_row_in_batch_names_the_row(self, served):
        *_, host, port = served
        status, body = _post(
            host, port, "/match", {"rows": [{"x": 0.1}, {"x": "hot"}]}
        )
        assert status == 400
        assert "row 1" in json.loads(body)["error"]

    def test_oversized_batch_400(self, mined, tmp_path):
        dataset, result = mined
        store = PatternStore(tmp_path / "store")
        run_id = store.put(result)
        server = PatternServer(
            store, ServeConfig(port=0, max_batch_rows=4)
        )
        server.publish_run(run_id)
        host, port = server.start()
        try:
            rows = [row_from_dataset(dataset, i) for i in range(5)]
            status, body = _post(host, port, "/match", {"rows": rows})
            assert status == 400
            assert "max_batch_rows" in json.loads(body)["error"]
            assert _post(
                host, port, "/match", {"rows": rows[:4]}
            )[0] == 200
        finally:
            server.stop()

    def test_empty_batch_ok(self, served):
        *_, host, port = served
        status, body = _post(host, port, "/match", {"rows": []})
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == 0
        assert payload["results"] == []


class TestDeterministicMatchErrors:
    """Row validation happens before any pattern is scanned.

    Regression for the order-dependence bug: ``_covers`` used to raise
    mid-scan, so whether a bad row produced a 400 or a partial result
    depended on which pattern the scan hit first.  Now the row is
    validated once up front, so the same bad row fails identically no
    matter how the patterns are ordered.
    """

    def _indexes_in_both_orders(self):
        patterns, interests = _hand_built_run("red", 0.0, 0.5)
        forward = PatternIndex(patterns, interests)
        backward = PatternIndex(list(reversed(patterns)), interests)
        return forward, backward

    def test_bad_numeric_value_raises_in_any_pattern_order(self):
        from repro.serve.index import MatchError

        forward, backward = self._indexes_in_both_orders()
        # 'color' matches fine; 'x' carries a non-number.  With the old
        # mid-scan validation the backward order (numeric pattern last)
        # returned the categorical match before blowing up.
        bad = {"color": "red", "x": "hot"}
        messages = []
        for index in (forward, backward):
            with pytest.raises(MatchError) as excinfo:
                index.match(bad)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "'x'" in messages[0]

    def test_batch_error_names_first_bad_row(self):
        from repro.serve.index import MatchError

        forward, _ = self._indexes_in_both_orders()
        rows = [{"color": "red", "x": 0.2}, {"x": True}, {"x": "bad"}]
        with pytest.raises(MatchError) as excinfo:
            forward.match_batch(rows)
        assert str(excinfo.value).startswith("row 1: ")

    def test_missing_attribute_is_no_match_not_error(self):
        forward, backward = self._indexes_in_both_orders()
        row = {"color": "red"}  # no 'x' at all: fine, just no coverage
        assert [e.pattern for e in forward.match(row)] == [
            e.pattern for e in backward.match(row)
        ]
        assert len(forward.match(row)) == 1
