"""Tests for repro.core.stats."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.core.stats import (
    AlphaLadder,
    chi_square_independence,
    clt_difference_bound,
    contingency_from_counts,
    difference_is_statistically_same,
    expected_counts,
    fisher_exact_2x2,
    mann_whitney_u,
    min_expected_count,
)


class TestContingency:
    def test_from_counts(self):
        table = contingency_from_counts([3, 7], [10, 20])
        assert table.tolist() == [[3, 7], [7, 13]]

    def test_count_exceeds_size(self):
        with pytest.raises(ValueError):
            contingency_from_counts([11], [10])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            contingency_from_counts([1, 2], [10])

    def test_expected_counts(self):
        table = np.array([[10, 10], [10, 10]], dtype=float)
        expected = expected_counts(table)
        assert np.allclose(expected, 10)

    def test_expected_counts_empty(self):
        assert expected_counts(np.zeros((2, 2))).sum() == 0

    def test_min_expected_count(self):
        # 2x2 balanced table: all expected cells equal 10
        assert min_expected_count([10, 10], [20, 20]) == pytest.approx(10)


class TestChiSquare:
    def test_matches_scipy(self):
        table = np.array([[20, 5], [10, 25]], dtype=float)
        ours = chi_square_independence(table)
        ref = scipy_stats.chi2_contingency(table, correction=False)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue)
        assert ours.dof == ref.dof

    def test_yates_matches_scipy(self):
        table = np.array([[8, 2], [1, 5]], dtype=float)
        ours = chi_square_independence(table, yates=True)
        ref = scipy_stats.chi2_contingency(table, correction=True)
        assert ours.statistic == pytest.approx(ref.statistic)

    def test_independent_table_not_significant(self):
        table = np.array([[50, 50], [50, 50]], dtype=float)
        result = chi_square_independence(table)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant_at(0.05)

    def test_dependent_table_significant(self):
        table = np.array([[100, 0], [0, 100]], dtype=float)
        assert chi_square_independence(table).significant_at(0.001)

    def test_degenerate_rows_dropped(self):
        table = np.array([[10, 20], [0, 0]], dtype=float)
        result = chi_square_independence(table)
        assert result.p_value == 1.0
        assert result.dof == 0

    def test_zero_column_dropped(self):
        table = np.array([[10, 0], [20, 0]], dtype=float)
        assert chi_square_independence(table).p_value == 1.0

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            chi_square_independence(np.array([1.0, 2.0]))

    def test_kxm_table(self):
        table = np.array([[30, 10, 5], [5, 10, 30]], dtype=float)
        ours = chi_square_independence(table)
        ref = scipy_stats.chi2_contingency(table, correction=False)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.dof == 2


@settings(max_examples=60, deadline=None)
@given(
    cells=st.lists(st.integers(1, 200), min_size=4, max_size=4),
)
def test_chi_square_property_vs_scipy(cells):
    table = np.array(cells, dtype=float).reshape(2, 2)
    ours = chi_square_independence(table)
    ref = scipy_stats.chi2_contingency(table, correction=False)
    assert ours.statistic == pytest.approx(ref.statistic, rel=1e-9)
    assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-9)


class TestFisher:
    def test_matches_scipy(self):
        table = np.array([[8, 2], [1, 5]])
        assert fisher_exact_2x2(table) == pytest.approx(
            scipy_stats.fisher_exact(table)[1]
        )

    def test_requires_2x2(self):
        with pytest.raises(ValueError):
            fisher_exact_2x2(np.ones((2, 3)))


class TestAlphaLadder:
    def test_level_one_halves_alpha(self):
        ladder = AlphaLadder(0.05)
        assert ladder.alpha_for_level(1) == pytest.approx(0.025)

    def test_monotone_non_increasing(self):
        ladder = AlphaLadder(0.05)
        alphas = [ladder.alpha_for_level(l) for l in range(1, 6)]
        assert all(a >= b for a, b in zip(alphas, alphas[1:]))

    def test_candidates_divide_budget(self):
        ladder = AlphaLadder(0.05)
        assert ladder.alpha_for_level(1, n_candidates=10) == pytest.approx(
            0.0025
        )

    def test_never_rises_after_tightening(self):
        ladder = AlphaLadder(0.05)
        tight = ladder.alpha_for_level(2, n_candidates=100)
        again = ladder.alpha_for_level(2, n_candidates=1)
        assert again == tight

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            AlphaLadder(0.0)
        with pytest.raises(ValueError):
            AlphaLadder(1.5)

    def test_level_must_be_positive(self):
        with pytest.raises(ValueError):
            AlphaLadder().alpha_for_level(0)


class TestCLTBound:
    def test_zero_variance(self):
        # supports of exactly 0 and 1 have no sampling variance
        assert clt_difference_bound(1.0, 0.0, 100, 100) == pytest.approx(0.0)

    def test_known_value(self):
        # p=0.5 both, n=100 each: se = sqrt(2 * 0.25/100) = sqrt(0.005)
        z = scipy_stats.norm.ppf(0.975)
        expected = z * math.sqrt(0.005)
        assert clt_difference_bound(0.5, 0.5, 100, 100) == pytest.approx(
            expected
        )

    def test_empty_group_is_infinite(self):
        assert clt_difference_bound(0.5, 0.5, 0, 10) == math.inf

    def test_same_difference_within_band(self):
        assert difference_is_statistically_same(
            0.31, 0.30, 0.5, 0.2, 500, 500
        )

    def test_large_difference_outside_band(self):
        assert not difference_is_statistically_same(
            0.9, 0.3, 0.5, 0.2, 500, 500
        )

    def test_band_widens_with_alpha_smaller(self):
        loose = clt_difference_bound(0.5, 0.5, 50, 50, alpha=0.05)
        strict = clt_difference_bound(0.5, 0.5, 50, 50, alpha=0.001)
        assert strict > loose


class TestMannWhitney:
    def test_identical_samples_not_significant(self):
        assert mann_whitney_u([1, 2, 3], [1, 2, 3]) > 0.5

    def test_shifted_samples_significant(self):
        a = list(np.linspace(0, 1, 50))
        b = list(np.linspace(5, 6, 50))
        assert mann_whitney_u(a, b) < 0.001

    def test_empty_sample(self):
        assert mann_whitney_u([], [1.0]) == 1.0

    def test_constant_identical(self):
        assert mann_whitney_u([2.0, 2.0], [2.0, 2.0]) == 1.0

    def test_matches_scipy(self):
        a = [0.1, 0.4, 0.3, 0.9]
        b = [0.2, 0.8, 0.7, 0.5]
        ref = scipy_stats.mannwhitneyu(a, b, alternative="two-sided").pvalue
        assert mann_whitney_u(a, b) == pytest.approx(float(ref))
