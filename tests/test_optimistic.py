"""Tests for repro.core.optimistic (Eq. 6-11 and the chi-square bound)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimistic import (
    chi_square_estimate,
    max_instances_child,
    support_difference_estimate,
)
from repro.core.stats import chi_square_independence, contingency_from_counts


class TestMaxInstancesChild:
    def test_paper_formula_single_attribute(self):
        # |DB|=1000, level=1, |ca|=1 -> 1000/4 = 250; with a current space
        # of 500 rows the strict bound is 250 as well.
        assert max_instances_child(1000, 1, 1, 500) == pytest.approx(250)

    def test_strict_bound_dominates_when_skewed(self):
        # paper formula says 1000/(4*2)=125 but the space has 600 rows:
        # a child can hold up to 300 -> the strict half-bound wins.
        assert max_instances_child(1000, 1, 2, 600) == pytest.approx(300)

    def test_clamped_by_space_count(self):
        # tiny space: bound can never exceed the rows available
        assert max_instances_child(1000, 1, 1, 3) <= 3

    def test_requires_continuous(self):
        with pytest.raises(ValueError):
            max_instances_child(100, 1, 0, 10)

    def test_decreases_with_level(self):
        shallow = max_instances_child(1000, 1, 1, 4)
        deep = max_instances_child(1000, 5, 1, 4)
        assert deep <= shallow


class TestSupportDifferenceEstimate:
    def test_upper_bounds_children(self):
        """The estimate must dominate any actual child's difference."""
        rng = np.random.default_rng(3)
        n = 400
        x = rng.uniform(0, 1, n)
        groups = (x > 0.6).astype(int)  # planted boundary off-median
        sizes = [int((groups == 0).sum()), int((groups == 1).sum())]
        counts = sizes  # root space covers everything
        estimate = support_difference_estimate(counts, sizes, n, 1, 1)
        # actual best child at level 2: any interval; try a grid
        best = 0.0
        for lo in np.linspace(0, 1, 9):
            for hi in np.linspace(lo + 0.1, 1, 8):
                mask = (x > lo) & (x <= hi)
                s0 = mask[groups == 0].sum() / sizes[0]
                s1 = mask[groups == 1].sum() / sizes[1]
                best = max(best, abs(s0 - s1))
        # the estimate is for direct children (half-spaces), which the
        # grid intervals refine further; it must still be an upper bound
        # for the half-spaces themselves:
        median = np.median(x)
        for mask in [(x <= median), (x > median)]:
            s0 = mask[groups == 0].sum() / sizes[0]
            s1 = mask[groups == 1].sum() / sizes[1]
            assert abs(s0 - s1) <= estimate + 1e-9

    def test_support_monotonicity_respected(self):
        # current space has low support in group 0: the child's max
        # support in group 0 cannot exceed it
        estimate = support_difference_estimate(
            [5, 90], [100, 100], 200, 1, 1
        )
        # max_supp_0 = min(bound/100, 0.05) = 0.05;
        # min_supp_1 can reach 0 -> estimate >= 0.05 is fine but the
        # reverse direction dominates: max_supp_1 - min_supp_0
        assert estimate <= 1.0
        assert estimate >= 0.05

    def test_pure_space_estimate(self):
        estimate = support_difference_estimate(
            [0, 100], [100, 100], 200, 1, 1
        )
        # group 1 support can stay up to min(50/100, 1.0) = 0.5 in a child
        assert estimate == pytest.approx(0.5)

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            support_difference_estimate([1, 2], [10], 100, 1, 1)

    def test_zero_counts(self):
        assert support_difference_estimate(
            [0, 0], [10, 10], 20, 1, 1
        ) == pytest.approx(0.0)


@settings(max_examples=60, deadline=None)
@given(
    c0=st.integers(0, 50),
    c1=st.integers(0, 50),
    level=st.integers(1, 4),
)
def test_estimate_dominates_sub_supports(c0, c1, level):
    """Property: no child can produce a support difference above the
    estimate, because child supports are bounded by both the current
    supports and the child-size cap."""
    sizes = (60, 60)
    db = 120
    estimate = support_difference_estimate(
        [c0, c1], sizes, db, level, 1
    )
    cap = max_instances_child(db, level, 1, c0 + c1)
    # any child keeps at most min(cap, c_g) rows of group g
    best_child = 0.0
    for i, j in [(0, 1), (1, 0)]:
        hi = min(cap, (c0, c1)[i]) / sizes[i]
        lo = 0.0
        best_child = max(best_child, hi - lo)
    assert best_child <= estimate + 1e-9


class TestChiSquareEstimate:
    def test_bound_dominates_pure_specialisations(self):
        counts = [30, 40]
        sizes = [100, 100]
        bound = chi_square_estimate(counts, sizes)
        # specialisation keeping only group 0 rows (any subset count k):
        for k in range(1, 31):
            stat = chi_square_independence(
                contingency_from_counts([k, 0], sizes)
            ).statistic
            assert stat <= bound + 1e-9

    def test_zero_counts_zero_bound(self):
        assert chi_square_estimate([0, 0], [10, 10]) == 0.0

    def test_three_groups(self):
        bound = chi_square_estimate([10, 20, 30], [50, 50, 50])
        assert bound > 0
