"""Tests for repro.core.meaningful (redundancy, productivity,
independent productivity)."""

import numpy as np
import pytest

from repro.core.contrast import ContrastPattern, evaluate_itemset
from repro.core.items import CategoricalItem, Interval, Itemset, NumericItem
from repro.core.meaningful import (
    classify_patterns,
    filter_meaningful,
    independently_productive_mask,
    is_productive,
    is_redundant,
)
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


@pytest.fixture
def pregnancy_dataset():
    """The paper's running example: 'female' subsumes 'pregnant'."""
    rng = np.random.default_rng(5)
    n = 1000
    sex = rng.integers(0, 2, n)  # 0 = male, 1 = female
    pregnant = ((sex == 1) & (rng.uniform(0, 1, n) < 0.4)).astype(np.int64)
    # group correlates with pregnancy
    group = np.where(
        pregnant == 1,
        (rng.uniform(0, 1, n) < 0.9).astype(np.int64),
        (rng.uniform(0, 1, n) < 0.2).astype(np.int64),
    )
    schema = Schema.of(
        [
            Attribute.categorical("sex", ["male", "female"]),
            Attribute.categorical("pregnant", ["no", "yes"]),
        ]
    )
    return Dataset(
        schema,
        {"sex": sex, "pregnant": pregnant},
        group,
        ["control", "case"],
    )


class TestRedundancy:
    def test_female_and_pregnant_is_redundant(self, pregnancy_dataset):
        itemset = Itemset(
            [
                CategoricalItem("sex", "female"),
                CategoricalItem("pregnant", "yes"),
            ]
        )
        pattern = evaluate_itemset(itemset, pregnancy_dataset)
        assert is_redundant(pattern, pregnancy_dataset)

    def test_pregnant_alone_not_redundant(self, pregnancy_dataset):
        itemset = Itemset([CategoricalItem("pregnant", "yes")])
        pattern = evaluate_itemset(itemset, pregnancy_dataset)
        assert not is_redundant(pattern, pregnancy_dataset)

    def test_level_one_never_redundant(self, pregnancy_dataset):
        itemset = Itemset([CategoricalItem("sex", "male")])
        pattern = evaluate_itemset(itemset, pregnancy_dataset)
        assert not is_redundant(pattern, pregnancy_dataset)


@pytest.fixture
def conjunction_dataset():
    """Group 1 requires BOTH conditions (hurricane-style): a > 0.5 AND
    b > 0.5; each condition alone is weakly associated."""
    rng = np.random.default_rng(6)
    n = 2000
    a = rng.uniform(0, 1, n)
    b = rng.uniform(0, 1, n)
    both = (a > 0.5) & (b > 0.5)
    group = np.where(
        both, (rng.uniform(0, 1, n) < 0.9), (rng.uniform(0, 1, n) < 0.05)
    ).astype(np.int64)
    schema = Schema.of(
        [Attribute.continuous("a"), Attribute.continuous("b")]
    )
    return Dataset(schema, {"a": a, "b": b}, group, ["calm", "storm"])


class TestProductivity:
    def test_conjunction_is_productive(self, conjunction_dataset):
        itemset = Itemset(
            [
                NumericItem("a", Interval(0.5, 1.0)),
                NumericItem("b", Interval(0.5, 1.0)),
            ]
        )
        pattern = evaluate_itemset(itemset, conjunction_dataset)
        assert is_productive(pattern, conjunction_dataset)

    def test_independent_parts_not_productive(self):
        """Two independent attributes each with the same weak signal: the
        conjunction's difference equals the independence product."""
        rng = np.random.default_rng(8)
        n = 4000
        group = rng.integers(0, 2, n)
        # a and b each slightly shifted by group, independently
        a = rng.uniform(0, 1, n) + 0.2 * group
        b = rng.uniform(0, 1, n) + 0.2 * group
        schema = Schema.of(
            [Attribute.continuous("a"), Attribute.continuous("b")]
        )
        ds = Dataset(schema, {"a": a, "b": b}, group, ["g0", "g1"])
        itemset = Itemset(
            [
                NumericItem("a", Interval(0.6, 1.3)),
                NumericItem("b", Interval(0.6, 1.3)),
            ]
        )
        pattern = evaluate_itemset(itemset, ds)
        assert not is_productive(pattern, ds)

    def test_level_one_always_productive(self, conjunction_dataset):
        itemset = Itemset([NumericItem("a", Interval(0.5, 1.0))])
        pattern = evaluate_itemset(itemset, conjunction_dataset)
        assert is_productive(pattern, conjunction_dataset)


class TestIndependentProductivity:
    def test_subset_explained_by_superset_fails(self, conjunction_dataset):
        sub = evaluate_itemset(
            Itemset([NumericItem("a", Interval(0.5, 1.0))]),
            conjunction_dataset,
        )
        sup = evaluate_itemset(
            Itemset(
                [
                    NumericItem("a", Interval(0.5, 1.0)),
                    NumericItem("b", Interval(0.5, 1.0)),
                ]
            ),
            conjunction_dataset,
        )
        flags = independently_productive_mask(
            [sub, sup], conjunction_dataset
        )
        assert flags == [False, True]

    def test_without_superset_in_list_subset_passes(
        self, conjunction_dataset
    ):
        sub = evaluate_itemset(
            Itemset([NumericItem("a", Interval(0.5, 1.0))]),
            conjunction_dataset,
        )
        flags = independently_productive_mask([sub], conjunction_dataset)
        assert flags == [True]

    def test_region_subsumption_handles_shifted_bins(
        self, conjunction_dataset
    ):
        """A specialisation with slightly different boundaries still
        explains its parent."""
        sub = evaluate_itemset(
            Itemset([NumericItem("a", Interval(0.5, 1.0))]),
            conjunction_dataset,
        )
        sup = evaluate_itemset(
            Itemset(
                [
                    NumericItem("a", Interval(0.52, 0.99)),
                    NumericItem("b", Interval(0.5, 1.0)),
                ]
            ),
            conjunction_dataset,
        )
        flags = independently_productive_mask(
            [sub, sup], conjunction_dataset
        )
        assert flags[0] is False


class TestClassifyAndFilter:
    def test_report_counts_add_up(self, conjunction_dataset):
        patterns = [
            evaluate_itemset(
                Itemset([NumericItem("a", Interval(0.5, 1.0))]),
                conjunction_dataset,
            ),
            evaluate_itemset(
                Itemset(
                    [
                        NumericItem("a", Interval(0.5, 1.0)),
                        NumericItem("b", Interval(0.5, 1.0)),
                    ]
                ),
                conjunction_dataset,
            ),
        ]
        report = classify_patterns(patterns, conjunction_dataset)
        assert report.n_meaningful + report.n_meaningless == len(patterns)
        assert len(report.meaningful) == len(patterns)

    def test_filter_returns_only_meaningful(self, conjunction_dataset):
        patterns = [
            evaluate_itemset(
                Itemset([NumericItem("a", Interval(0.5, 1.0))]),
                conjunction_dataset,
            ),
            evaluate_itemset(
                Itemset(
                    [
                        NumericItem("a", Interval(0.5, 1.0)),
                        NumericItem("b", Interval(0.5, 1.0)),
                    ]
                ),
                conjunction_dataset,
            ),
        ]
        kept = filter_meaningful(patterns, conjunction_dataset)
        assert len(kept) == 1
        assert len(kept[0].itemset) == 2

    def test_empty_input(self, conjunction_dataset):
        report = classify_patterns([], conjunction_dataset)
        assert report.n_meaningful == 0
        assert filter_meaningful([], conjunction_dataset) == []
