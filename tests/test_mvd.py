"""Tests for the MVD multivariate discretization baseline."""

import numpy as np
import pytest

from repro.baselines.mvd import mvd_binning, mvd_discretize
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _dataset(x, other, groups):
    schema = Schema.of(
        [Attribute.continuous("x"), Attribute.continuous("other")]
    )
    return Dataset(
        schema,
        {"x": np.asarray(x, dtype=float), "other": np.asarray(other, float)},
        np.asarray(groups, dtype=np.int64),
        ["A", "B"],
    )


class TestMvdBinning:
    def test_keeps_group_boundary(self):
        rng = np.random.default_rng(1)
        n = 2000
        groups = rng.integers(0, 2, n)
        x = np.where(
            groups == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1, n)
        )
        ds = _dataset(x, rng.uniform(0, 1, n), groups)
        binning = mvd_binning(ds, "x")
        assert binning.cuts
        assert min(abs(c - 0.5) for c in binning.cuts) < 0.05

    def test_merges_noise_to_one_bin(self):
        rng = np.random.default_rng(2)
        n = 1500
        groups = rng.integers(0, 2, n)
        ds = _dataset(
            rng.uniform(0, 1, n), rng.uniform(0, 1, n), groups
        )
        binning = mvd_binning(ds, "x")
        # pure noise: everything merges (or nearly everything)
        assert len(binning.cuts) <= 2

    def test_detects_interaction_with_other_attribute(self):
        """x's relationship with 'other' changes at x=0.5 even though the
        group distribution does not — MVD must keep that cut (this is the
        behaviour that makes it split on correlation structure in
        Simulated Dataset 1)."""
        rng = np.random.default_rng(3)
        n = 3000
        groups = rng.integers(0, 2, n)  # independent of everything
        x = rng.uniform(0, 1, n)
        other = np.where(
            x < 0.5, rng.uniform(0, 0.3, n), rng.uniform(0.7, 1.0, n)
        )
        ds = _dataset(x, other, groups)
        binning = mvd_binning(ds, "x")
        assert binning.cuts
        assert min(abs(c - 0.5) for c in binning.cuts) < 0.06

    def test_small_dataset_few_basic_bins(self):
        rng = np.random.default_rng(4)
        n = 150
        groups = rng.integers(0, 2, n)
        ds = _dataset(rng.uniform(0, 1, n), rng.uniform(0, 1, n), groups)
        binning = mvd_binning(ds, "x", basic_bin_size=100)
        assert binning.n_bins <= 2

    def test_discretize_all_continuous(self):
        rng = np.random.default_rng(5)
        n = 500
        groups = rng.integers(0, 2, n)
        ds = _dataset(rng.uniform(0, 1, n), rng.uniform(0, 1, n), groups)
        view = mvd_discretize(ds)
        assert set(view.binnings) == {"x", "other"}
        assert view.dataset.attribute("x").is_categorical

    def test_empty_column(self):
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.array([], dtype=float)},
            np.array([], dtype=np.int64),
            ["A", "B"],
        )
        assert mvd_binning(ds, "x").cuts == ()
