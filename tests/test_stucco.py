"""Tests for the STUCCO categorical contrast-set miner."""

import numpy as np
import pytest

from repro.baselines.stucco import StuccoConfig, stucco
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


class TestStucco:
    def test_finds_planted_contrast(self, categorical_dataset):
        result = stucco(categorical_dataset)
        assert result.patterns
        best = result.patterns[0]
        assert "tool = T1" in str(best.itemset)

    def test_rejects_continuous(self, mixed_dataset):
        with pytest.raises(ValueError, match="categorical"):
            stucco(mixed_dataset, attributes=["x"])

    def test_defaults_to_categorical_attributes(self, mixed_dataset):
        # mixed dataset: continuous attrs are skipped automatically
        result = stucco(mixed_dataset)
        for pattern in result.patterns:
            assert pattern.itemset.attributes == ("color",) or all(
                a == "color" for a in pattern.itemset.attributes
            )

    def test_all_patterns_are_contrasts(self, categorical_dataset):
        config = StuccoConfig()
        result = stucco(categorical_dataset, config)
        for pattern in result.patterns:
            assert pattern.support_difference > config.delta

    def test_k_truncation(self, categorical_dataset):
        result = stucco(categorical_dataset, StuccoConfig(k=1))
        assert len(result.patterns) <= 1

    def test_sorted_by_difference(self, categorical_dataset):
        result = stucco(categorical_dataset)
        diffs = [p.support_difference for p in result.patterns]
        assert diffs == sorted(diffs, reverse=True)

    def test_max_depth_one(self, categorical_dataset):
        result = stucco(categorical_dataset, StuccoConfig(max_depth=1))
        assert all(len(p.itemset) == 1 for p in result.patterns)

    def test_no_contrast_in_noise(self):
        rng = np.random.default_rng(9)
        n = 500
        schema = Schema.of([Attribute.categorical("c", ["a", "b", "c"])])
        ds = Dataset(
            schema,
            {"c": rng.integers(0, 3, n)},
            rng.integers(0, 2, n),
            ["G1", "G2"],
        )
        result = stucco(ds)
        assert result.patterns == []

    def test_stats_recorded(self, categorical_dataset):
        result = stucco(categorical_dataset)
        assert result.stats.partitions_evaluated > 0
        assert result.stats.elapsed_seconds > 0

    def test_candidates_generated_once(self, categorical_dataset):
        """Level-2 candidates must pair attributes in order, no dupes."""
        result = stucco(categorical_dataset, StuccoConfig(max_depth=2))
        seen = set()
        for pattern in result.patterns:
            assert pattern.itemset not in seen
            seen.add(pattern.itemset)


class TestTop:
    def test_top_helper(self, categorical_dataset):
        result = stucco(categorical_dataset)
        assert len(result.top(1)) <= 1
        assert result.top() == result.patterns
