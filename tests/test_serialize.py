"""Tests for JSON serialization of itemsets and patterns."""

import json
import math

import pytest

from repro.core.contrast import ContrastPattern
from repro.core.items import (
    CategoricalItem,
    Interval,
    Itemset,
    NumericItem,
)
from repro.core.serialize import (
    item_from_dict,
    item_to_dict,
    itemset_from_dict,
    itemset_to_dict,
    pattern_from_dict,
    pattern_to_dict,
    patterns_from_dicts,
    patterns_to_dicts,
)


def _pattern():
    return ContrastPattern(
        itemset=Itemset(
            [
                CategoricalItem("tool", "T1"),
                NumericItem("temp", Interval(80.0, 95.0, True, False)),
            ]
        ),
        counts=(12, 48),
        group_sizes=(100, 120),
        group_labels=("ok", "bad"),
        level=2,
        hypervolume=0.25,
    )


class TestItemRoundTrip:
    def test_categorical(self):
        item = CategoricalItem("c", "v")
        assert item_from_dict(item_to_dict(item)) == item

    def test_numeric_finite(self):
        item = NumericItem("x", Interval(1.0, 2.0, True, False))
        assert item_from_dict(item_to_dict(item)) == item

    def test_numeric_infinite_endpoints(self):
        item = NumericItem("x", Interval(-math.inf, 5.0))
        payload = item_to_dict(item)
        assert payload["lo"] is None
        assert item_from_dict(payload) == item

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            item_from_dict({"kind": "nope"})

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            item_to_dict("not an item")


class TestItemsetRoundTrip:
    def test_round_trip(self):
        itemset = _pattern().itemset
        assert itemset_from_dict(itemset_to_dict(itemset)) == itemset

    def test_empty(self):
        assert itemset_from_dict(itemset_to_dict(Itemset())) == Itemset()


class TestPatternRoundTrip:
    def test_round_trip_preserves_everything(self):
        pattern = _pattern()
        restored = pattern_from_dict(pattern_to_dict(pattern))
        assert restored.itemset == pattern.itemset
        assert restored.counts == pattern.counts
        assert restored.group_sizes == pattern.group_sizes
        assert restored.group_labels == pattern.group_labels
        assert restored.level == pattern.level
        assert restored.hypervolume == pattern.hypervolume
        assert restored.support_difference == pytest.approx(
            pattern.support_difference
        )

    def test_json_serialisable(self):
        payload = pattern_to_dict(_pattern())
        text = json.dumps(payload)
        restored = pattern_from_dict(json.loads(text))
        assert restored.itemset == _pattern().itemset

    def test_derived_block_present(self):
        payload = pattern_to_dict(_pattern())
        derived = payload["derived"]
        assert derived["dominant_group"] == "bad"
        assert 0 <= derived["p_value"] <= 1

    def test_list_round_trip(self):
        patterns = [_pattern(), _pattern()]
        restored = patterns_from_dicts(patterns_to_dicts(patterns))
        assert len(restored) == 2
        assert restored[0].itemset == patterns[0].itemset

    def test_defaults_on_minimal_payload(self):
        payload = {
            "itemset": {"items": []},
            "counts": [1, 2],
            "group_sizes": [10, 10],
            "group_labels": ["A", "B"],
        }
        restored = pattern_from_dict(payload)
        assert restored.level == 1
        assert restored.hypervolume == 1.0


class TestCliJson:
    def test_mine_json_output(self, tmp_path, mixed_dataset, capsys):
        from repro.cli import main
        from repro.dataset.io import write_csv

        path = tmp_path / "data.csv"
        write_csv(mixed_dataset, path)
        code = main(
            ["mine", str(path), "--group", "group", "--depth", "1",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and payload
        restored = patterns_from_dicts(payload)
        for pattern in restored:
            # the CSV round-trip may reorder group labels; align by label
            mask = pattern.itemset.cover(mixed_dataset)
            counts = mixed_dataset.group_counts(mask)
            by_label = {
                label: int(count)
                for label, count in zip(
                    mixed_dataset.group_labels, counts
                )
            }
            for label, count in zip(pattern.group_labels,
                                     pattern.counts):
                assert by_label[label] == count


class TestVersionedEnvelope:
    """Durable payloads carry a header; mismatches are rejected clearly."""

    def test_header_names_schema_and_library(self):
        from repro import __version__
        from repro.core.serialize import (
            SCHEMA_VERSION,
            serialization_header,
        )

        header = serialization_header()
        assert header["format"] == "repro-patterns"
        assert header["schema_version"] == SCHEMA_VERSION
        assert header["library_version"] == __version__

    def test_payload_round_trip_with_interests(self):
        from repro.core.serialize import (
            patterns_from_payload,
            patterns_to_payload,
        )

        pattern = _pattern()
        interests = {pattern.itemset: 0.375}
        payload = patterns_to_payload([pattern], interests)
        # survives an actual JSON round trip, header intact
        payload = json.loads(json.dumps(payload))
        restored, restored_interests = patterns_from_payload(payload)
        assert restored == [pattern]
        assert restored_interests == {pattern.itemset: 0.375}

    def test_payload_round_trip_without_interests(self):
        from repro.core.serialize import (
            patterns_from_payload,
            patterns_to_payload,
        )

        pattern = _pattern()
        restored, interests = patterns_from_payload(
            patterns_to_payload([pattern])
        )
        assert restored == [pattern]
        assert interests == {}

    def test_missing_header_rejected(self):
        from repro.core.serialize import (
            SerializationError,
            patterns_from_payload,
        )

        with pytest.raises(SerializationError, match="no repro serialization"):
            patterns_from_payload({"patterns": []})

    def test_schema_mismatch_names_both_versions(self):
        from repro.core.serialize import (
            SCHEMA_VERSION,
            SerializationError,
            patterns_from_payload,
            patterns_to_payload,
        )

        payload = patterns_to_payload([_pattern()])
        payload["schema_version"] = SCHEMA_VERSION + 41
        payload["library_version"] = "9.9.9"
        with pytest.raises(SerializationError) as excinfo:
            patterns_from_payload(payload, what="export file")
        message = str(excinfo.value)
        assert f"version {SCHEMA_VERSION + 41}" in message
        assert "9.9.9" in message
        assert "export file" in message
        assert f"reads version {SCHEMA_VERSION}" in message

    def test_non_mapping_rejected(self):
        from repro.core.serialize import SerializationError, check_header

        with pytest.raises(SerializationError, match="not a mapping"):
            check_header([1, 2, 3])

    def test_missing_pattern_list_rejected(self):
        from repro.core.serialize import (
            SerializationError,
            patterns_from_payload,
            serialization_header,
        )

        with pytest.raises(SerializationError, match="no pattern list"):
            patterns_from_payload(serialization_header())
