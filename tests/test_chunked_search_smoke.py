"""Chunk-native search-state smoke: pack ~1M rows, mine them in a
fresh subprocess, and hold its peak RSS under a fixed budget.

Slow-gated (``--runslow``); CI runs it in the dedicated
``chunked-search-smoke`` job.  Where ``test_chunked_smoke.py`` pins
*parity* (chunking never changes the answer), this test pins the
*memory* contract of DESIGN.md §13: search state is packed per-chunk
covers and the working set is O(chunk), so a million-row mine must fit
in a small, fixed multiple of the interpreter's own footprint — never
in anything proportional to dense ``n_rows``-wide masks.

The pack itself streams chunk by chunk: the dense dataset never exists
in this process either.
"""

import json
import os
import resource
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Attribute, ChunkedDataset, Dataset, Schema

N_ROWS = 1_048_576
CHUNK_SIZE = 131_072

#: Hard subprocess peak-RSS budget for the depth-2 mine, in MB.  The
#: interpreter + numpy imports alone cost ~100 MB; the chunked search
#: adds packed covers (~n_rows/8 = 0.13 MB per live space), per-chunk
#: group stacks, and one resident chunk at a time — measured ~130 MB
#: total today.  256 MB leaves room for platform variance and still
#: fails loudly if anything starts densifying per-row search state
#: again (every dense mask copy at this scale is a visible 1 MB+).
RSS_BUDGET_MB = 256

SCHEMA = Schema.of(
    [
        Attribute.continuous("latency"),
        Attribute.continuous("throughput"),
        Attribute.categorical(
            "region", ["us-east", "us-west", "eu", "apac"]
        ),
    ]
)
GROUP_LABELS = ["ok", "degraded"]


def _chunk(rng: np.random.Generator, n: int) -> Dataset:
    group = rng.integers(0, 2, n)
    latency = rng.gamma(2.0, 1.0, n) + np.where(group == 1, 1.5, 0.0)
    throughput = rng.uniform(0.0, 100.0, n)
    region = np.where(
        group == 1,
        rng.choice(4, n, p=[0.1, 0.2, 0.6, 0.1]),
        rng.choice(4, n, p=[0.3, 0.3, 0.1, 0.3]),
    )
    return Dataset(
        SCHEMA,
        {"latency": latency, "throughput": throughput, "region": region},
        group,
        GROUP_LABELS,
    )


_SUBPROCESS_BODY = """
import json, resource, sys
from repro import ChunkedDataset, ContrastSetMiner, MinerConfig

store = ChunkedDataset(sys.argv[1])
result = ContrastSetMiner(MinerConfig(max_tree_depth=2)).mine(store)
peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
print(json.dumps({
    "peak_rss_mb": round(peak_mb, 1),
    "n_patterns": len(result.patterns),
}))
"""


@pytest.mark.slow
def test_million_row_mine_fits_rss_budget(tmp_path):
    rng = np.random.default_rng(20190326)
    store = ChunkedDataset.create(
        tmp_path / "store", SCHEMA, GROUP_LABELS
    )
    remaining = N_ROWS
    while remaining:
        n = min(CHUNK_SIZE, remaining)
        store.append(_chunk(rng, n), chunk_size=CHUNK_SIZE)
        remaining -= n
    assert store.n_rows == N_ROWS

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_BODY, str(tmp_path / "store")],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout.strip().splitlines()[-1])
    assert report["n_patterns"] > 0, "planted contrasts must surface"
    assert report["peak_rss_mb"] < RSS_BUDGET_MB, (
        f"chunked mine peaked at {report['peak_rss_mb']} MB, "
        f"budget is {RSS_BUDGET_MB} MB"
    )
