"""Miscellaneous edge-case coverage across modules."""

import numpy as np
import pytest

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.analysis.report import timing_table
from repro.core.config import MinerConfig as Config
from repro.core.items import CategoricalItem, Itemset
from repro.core.search import SearchEngine


class TestSearchEdges:
    def test_chi2_unreachable_candidates_pruned(self):
        """A categorical value too rare for significance anywhere must be
        cut by the chi-square optimistic bound, not expanded."""
        rng = np.random.default_rng(5)
        n = 2000
        group = rng.integers(0, 2, n)
        # value "rare" appears ~8 times, independent of group
        c = np.where(
            rng.uniform(0, 1, n) < 0.004, 2, rng.integers(0, 2, n)
        )
        x = rng.uniform(0, 1, n)
        schema = Schema.of(
            [
                Attribute.categorical("c", ["a", "b", "rare"]),
                Attribute.continuous("x"),
            ]
        )
        ds = Dataset(schema, {"c": c, "x": x}, group, ["G0", "G1"])
        engine = SearchEngine(ds, Config(k=20, max_tree_depth=2))
        engine.run()
        from repro.core.pruning import PruneReason

        reasons = engine.prune_table.reason_counts()
        pruned_kinds = set(reasons)
        assert pruned_kinds & {
            PruneReason.EXPECTED_COUNT,
            PruneReason.OPTIMISTIC_ESTIMATE,
            PruneReason.MIN_DEVIATION,
        }

    def test_single_attribute_dataset(self):
        rng = np.random.default_rng(6)
        n = 300
        group = rng.integers(0, 2, n)
        schema = Schema.of([Attribute.categorical("c", ["a", "b"])])
        c = np.where(group == 1, 0, rng.integers(0, 2, n))
        ds = Dataset(schema, {"c": c}, group, ["G0", "G1"])
        result = ContrastSetMiner(MinerConfig(k=10)).mine(ds)
        assert result.patterns
        assert all(len(p.itemset) == 1 for p in result.patterns)

    def test_depth_larger_than_attribute_count(self, mixed_dataset):
        config = MinerConfig(k=10, max_tree_depth=50)
        result = ContrastSetMiner(config).mine(mixed_dataset)
        assert result.patterns  # clamped, no crash

    def test_duplicate_rows_dataset(self):
        """Heavy row duplication (few unique values) must not break the
        median recursion."""
        rng = np.random.default_rng(7)
        n = 400
        group = rng.integers(0, 2, n)
        x = np.where(group == 1, 2.0, rng.choice([0.0, 1.0], n))
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(schema, {"x": x}, group, ["G0", "G1"])
        result = ContrastSetMiner(MinerConfig(k=10)).mine(ds)
        assert result.patterns
        best = result.patterns[0]
        assert best.support_difference > 0.9


class TestReportEdges:
    def test_timing_table_missing_algorithm(self, mixed_dataset):
        from repro.analysis import compare_algorithms

        comparison = compare_algorithms(
            mixed_dataset,
            "fixture",
            algorithms=("sdad_np",),
            config=MinerConfig(k=10, max_tree_depth=1),
        )
        text = timing_table([comparison], ("sdad_np", "nonexistent"))
        assert "-" in text  # the missing column renders placeholders


class TestMinerEdges:
    def test_tiny_dataset(self):
        """Datasets too small for significance return no patterns
        rather than spurious ones."""
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(
            schema,
            {"x": np.array([0.1, 0.2, 0.8, 0.9])},
            np.array([0, 0, 1, 1]),
            ["A", "B"],
        )
        result = ContrastSetMiner(MinerConfig(k=10)).mine(ds)
        assert result.patterns == []

    def test_identical_columns(self):
        """Perfectly correlated attributes: the CLT redundancy rule keeps
        the cross-products out of the meaningful output."""
        rng = np.random.default_rng(8)
        n = 1000
        group = rng.integers(0, 2, n)
        x = np.where(
            group == 0, rng.uniform(0, 0.5, n), rng.uniform(0.5, 1, n)
        )
        schema = Schema.of(
            [Attribute.continuous("x1"), Attribute.continuous("x2")]
        )
        ds = Dataset(schema, {"x1": x, "x2": x}, group, ["A", "B"])
        result = ContrastSetMiner(MinerConfig(k=40)).mine(ds)
        meaningful = result.meaningful()
        assert meaningful
        # no meaningful pattern should need both copies
        assert all(len(p.itemset) == 1 for p in meaningful)

    def test_extreme_imbalance(self):
        """A 2% minority group (the Figure 2 regime) still mines."""
        rng = np.random.default_rng(9)
        n = 3000
        group = (rng.uniform(0, 1, n) < 0.02).astype(np.int64)
        x = np.where(
            group == 1, rng.uniform(0.8, 1.0, n), rng.uniform(0, 1, n)
        )
        schema = Schema.of([Attribute.continuous("x")])
        ds = Dataset(schema, {"x": x}, group, ["B", "A"])
        result = ContrastSetMiner(MinerConfig(k=10)).mine(ds)
        assert result.patterns
        best = max(result.patterns, key=lambda p: p.support("A"))
        assert best.support("A") > 0.8


class TestItemsetEdges:
    def test_partitions_of_two_items(self):
        itemset = Itemset(
            [CategoricalItem("a", "1"), CategoricalItem("b", "1")]
        )
        parts = list(itemset.partitions())
        assert len(parts) == 1
        left, right = parts[0]
        assert {len(left), len(right)} == {1}

    def test_union_conflict_raises(self):
        a = Itemset([CategoricalItem("x", "1")])
        b = Itemset([CategoricalItem("x", "2")])
        with pytest.raises(ValueError):
            a.union(b)
