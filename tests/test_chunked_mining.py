"""Out-of-core mining: parity, payload-size, streaming and CLI contracts.

The acceptance bar for the chunked layer is *byte-identical* results:
mining a :class:`ChunkedDataset` (any chunk size, both backends,
serial or parallel) must reproduce the golden patterns AND the same
prune accounting as mining the equivalent in-memory dataset — support
counting is additive across row chunks, so nothing may drift.
"""

import json
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro import ChunkedDataset, ContrastSetMiner, MinerConfig
from repro.cli import main
from repro.core.serialize import patterns_to_dicts
from repro.counting import backend_from_config
from repro.counting.chunked import ChunkedBackend
from repro.dataset import synthetic, uci
from repro.dataset.io import write_csv

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_patterns.json"

LOADERS = {
    "simulated_dataset_1": synthetic.simulated_dataset_1,
    "simulated_dataset_2": synthetic.simulated_dataset_2,
    "simulated_dataset_3": synthetic.simulated_dataset_3,
    "simulated_dataset_4": synthetic.simulated_dataset_4,
    "adult": lambda: uci.adult(scale=0.15),
}

#: Deliberately awkward chunk sizes (never a divisor of the row count)
#: so the last chunk is ragged.
CHUNK_SIZES = {
    "simulated_dataset_1": 777,
    "simulated_dataset_2": 123,
    "simulated_dataset_3": 1999,
    "simulated_dataset_4": 450,
    "adult": 997,
}


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def _pack(tmp_path, name):
    return ChunkedDataset.pack(
        tmp_path / "store", LOADERS[name](), chunk_size=CHUNK_SIZES[name]
    )


# ---------------------------------------------------------------------------
# Golden parity (acceptance criterion)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["mask", "bitmap"])
@pytest.mark.parametrize("name", sorted(LOADERS))
def test_chunked_patterns_match_golden(golden, tmp_path, name, backend):
    store = _pack(tmp_path, name)
    config = MinerConfig(max_tree_depth=2, counting_backend=backend)
    result = ContrastSetMiner(config).mine(store)
    assert patterns_to_dicts(result.patterns) == golden[name], (
        f"chunked mining drifted from golden output on {name} "
        f"(backend={backend})"
    )


@pytest.mark.parametrize("backend", ["mask", "bitmap"])
@pytest.mark.parametrize("name", ["simulated_dataset_2", "adult"])
def test_chunked_parallel_matches_golden(golden, tmp_path, name, backend):
    store = _pack(tmp_path, name)
    config = MinerConfig(max_tree_depth=2, counting_backend=backend)
    result = ContrastSetMiner(config).mine(store, n_jobs=2)
    assert patterns_to_dicts(result.patterns) == golden[name]


@pytest.mark.parametrize("name", ["simulated_dataset_1", "adult"])
def test_chunked_prune_accounting_matches_in_memory(tmp_path, name):
    """Not just the same patterns — the same pruning decisions, rule by
    rule (checks, hits, and per-reason counts)."""
    dataset = LOADERS[name]()
    store = _pack(tmp_path, name)
    config = MinerConfig(max_tree_depth=2)
    dense = ContrastSetMiner(config).mine(dataset).summary()
    chunked = ContrastSetMiner(config).mine(store).summary()
    assert chunked.prune_rule_checks == dense.prune_rule_checks
    assert chunked.prune_rule_hits == dense.prune_rule_hits
    assert chunked.prune_reasons == dense.prune_reasons
    assert chunked.n_patterns == dense.n_patterns


def test_parity_across_chunk_sizes(tmp_path):
    """Chunking is a storage decision, never a results decision."""
    dataset = LOADERS["simulated_dataset_3"]()
    config = MinerConfig(max_tree_depth=2)
    reference = None
    for chunk_size in (1_000_000, 500, 61):
        store = ChunkedDataset.pack(
            tmp_path / f"s{chunk_size}", dataset, chunk_size=chunk_size
        )
        got = patterns_to_dicts(ContrastSetMiner(config).mine(store).patterns)
        if reference is None:
            reference = got
        assert got == reference


def test_mining_a_view_after_append_uses_its_snapshot(tmp_path):
    dataset = LOADERS["simulated_dataset_1"]()
    store = ChunkedDataset.pack(tmp_path / "s", dataset, chunk_size=500)
    view = store.view()
    store.append(dataset, chunk_size=500)  # concurrent producer
    config = MinerConfig(max_tree_depth=2)
    result = ContrastSetMiner(config).mine(view)
    baseline = ContrastSetMiner(config).mine(dataset)
    assert patterns_to_dicts(result.patterns) == patterns_to_dicts(
        baseline.patterns
    )


# ---------------------------------------------------------------------------
# Backend dispatch and cache mechanics
# ---------------------------------------------------------------------------


def test_backend_from_config_dispatch(tmp_path, mixed_dataset):
    store = ChunkedDataset.pack(tmp_path / "s", mixed_dataset,
                                chunk_size=200)
    view = store.view()
    backend = backend_from_config(MinerConfig(), view)
    assert isinstance(backend, ChunkedBackend)
    assert backend.name == "chunked+mask"
    assert backend_from_config(
        MinerConfig(counting_backend="bitmap"), view
    ).name == "chunked+bitmap"
    # dense datasets keep their ordinary backends
    assert backend_from_config(MinerConfig(), mixed_dataset).name == "mask"


def test_backend_cache_size_flows_to_backends(tmp_path, mixed_dataset):
    config = MinerConfig(counting_backend="bitmap", backend_cache_size=17)
    dense = backend_from_config(config, mixed_dataset)
    assert dense.cache_size == 17
    store = ChunkedDataset.pack(tmp_path / "s", mixed_dataset,
                                chunk_size=200)
    chunked = backend_from_config(config, store.view())
    assert chunked.cache_size == 17


def test_backend_cache_size_validation():
    with pytest.raises(ValueError, match="backend_cache_size"):
        MinerConfig(backend_cache_size=0, counting_backend="bitmap")
    with pytest.raises(ValueError, match="mask backend keeps no cache"):
        MinerConfig(backend_cache_size=8)


def test_counts_cache_is_digest_keyed(tmp_path, categorical_dataset):
    """Cache keys are (chunk content digest, itemset): content-addressed,
    so identical chunks share keys across stores and appended chunks can
    never collide with (or invalidate) existing entries."""
    from repro.core.items import CategoricalItem, Itemset

    a = ChunkedDataset.pack(tmp_path / "a", categorical_dataset,
                            chunk_size=300)
    b = ChunkedDataset.pack(tmp_path / "b", categorical_dataset,
                            chunk_size=300)
    itemset = Itemset([CategoricalItem("tool", "T1")])
    backend_a = ChunkedBackend(a.view())
    backend_b = ChunkedBackend(b.view())
    counts = backend_a.group_counts(itemset)
    assert np.array_equal(counts, backend_b.group_counts(itemset))
    assert set(backend_a._counts_cache) == set(backend_b._counts_cache)
    # second pass over the same view: every chunk is a cache hit
    before = backend_a.cache_hits
    backend_a.group_counts(itemset)
    assert backend_a.cache_hits == before + a.n_chunks


def test_chunked_backend_counts_match_dense(tmp_path, categorical_dataset):
    from repro.core.items import CategoricalItem, Itemset
    from repro.counting import make_backend

    store = ChunkedDataset.pack(tmp_path / "s", categorical_dataset,
                                chunk_size=137)
    dense = make_backend("mask", categorical_dataset)
    for inner in ("mask", "bitmap"):
        backend = ChunkedBackend(store.view(), inner=inner)
        for tool in ("T1", "T2"):
            itemset = Itemset([CategoricalItem("tool", tool)])
            assert np.array_equal(
                backend.group_counts(itemset), dense.group_counts(itemset)
            )
            assert np.array_equal(
                backend.cover(itemset), dense.cover(itemset)
            )
        mask = np.asarray(categorical_dataset.group_codes) == 0
        assert np.array_equal(
            backend.mask_group_counts(mask), dense.mask_group_counts(mask)
        )


def test_chunked_backend_rejects_dense_dataset(mixed_dataset):
    with pytest.raises(TypeError, match="ChunkedView"):
        ChunkedBackend(mixed_dataset)


# ---------------------------------------------------------------------------
# Task payloads (acceptance criterion: no whole-dataset pickling)
# ---------------------------------------------------------------------------


def test_worker_payload_does_not_scale_with_rows(tmp_path, rng):
    """The worker initializer's pickled arguments must stay tiny however
    large the packed dataset grows — workers open chunks via mmap by
    path instead of receiving arrays."""
    from repro import Attribute, Dataset, Schema

    def make(n):
        schema = Schema.of([Attribute.continuous("x")])
        return Dataset(
            schema,
            {"x": rng.uniform(0, 1, n)},
            rng.integers(0, 2, n),
            ["a", "b"],
        )

    sizes = {}
    for n in (1_000, 50_000):
        store = ChunkedDataset.pack(tmp_path / f"s{n}", make(n),
                                    chunk_size=10_000)
        view = store.view()
        config = MinerConfig(max_tree_depth=1)
        # exactly what ProcessPoolExecutor pickles per worker
        sizes[n] = len(pickle.dumps((view, config, None)))
        assert len(pickle.dumps(make(n))) > n  # dense payload scales
    assert sizes[50_000] < 4_000
    assert abs(sizes[50_000] - sizes[1_000]) < 200


def test_checkpointed_chunked_run_resumes_identically(tmp_path):
    dataset = LOADERS["simulated_dataset_1"]()
    store = ChunkedDataset.pack(tmp_path / "s", dataset, chunk_size=600)
    config = MinerConfig(max_tree_depth=2)
    ckpt = tmp_path / "ckpt"
    full = ContrastSetMiner(config).mine(store, checkpoint_dir=ckpt)
    # checkpoints embed the dataset as the tiny (path, chunks) pickle
    biggest = max(p.stat().st_size for p in ckpt.iterdir())
    assert biggest < 200_000
    files = sorted(ckpt.iterdir())
    # resume from the level-1 checkpoint and finish the run
    resumed = ContrastSetMiner(config).resume(files[0])
    assert patterns_to_dicts(resumed.patterns) == patterns_to_dicts(
        full.patterns
    )
    summary_a, summary_b = full.summary(), resumed.summary()
    assert summary_a.prune_reasons == summary_b.prune_reasons


# ---------------------------------------------------------------------------
# Streaming: appended chunks as the refresh feed
# ---------------------------------------------------------------------------


def test_streaming_consume_chunks(tmp_path, mixed_dataset):
    from repro.streaming import StreamingContrastMiner

    store = ChunkedDataset.pack(tmp_path / "s", mixed_dataset,
                                chunk_size=200)
    miner = StreamingContrastMiner(
        mixed_dataset.schema,
        mixed_dataset.group_labels,
        MinerConfig(max_tree_depth=1),
        window_size=1_000,
        refresh_every=200,
        min_rows=100,
    )
    updates = miner.consume_chunks(store)
    assert len(updates) == store.n_chunks
    assert any(u.refreshed for u in updates)
    assert updates[-1].rows_seen == mixed_dataset.n_rows
    # nothing new: no re-feeding of already-consumed chunks
    assert miner.consume_chunks(store) == []
    # a producer appends; the next poll consumes exactly the new chunks
    store.append(mixed_dataset, chunk_size=300)
    more = miner.consume_chunks(store)
    assert len(more) == store.n_chunks - len(updates)
    assert more[-1].rows_seen == 2 * mixed_dataset.n_rows


def test_streaming_chunk_feed_matches_direct_updates(tmp_path,
                                                     mixed_dataset):
    from repro.streaming import StreamingContrastMiner

    def build():
        return StreamingContrastMiner(
            mixed_dataset.schema,
            mixed_dataset.group_labels,
            MinerConfig(max_tree_depth=1),
            window_size=1_000,
            refresh_every=150,
            min_rows=100,
        )

    store = ChunkedDataset.pack(tmp_path / "s", mixed_dataset,
                                chunk_size=150)
    via_chunks = build()
    chunk_updates = via_chunks.consume_chunks(store)
    via_direct = build()
    direct_updates = [
        via_direct.update_dataset(chunk) for chunk in store.iter_chunks()
    ]
    assert [u.refreshed for u in chunk_updates] == [
        u.refreshed for u in direct_updates
    ]
    assert patterns_to_dicts(via_chunks.current_patterns) == (
        patterns_to_dicts(via_direct.current_patterns)
    )


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


@pytest.fixture
def csv_path(tmp_path, mixed_dataset):
    path = tmp_path / "data.csv"
    write_csv(mixed_dataset, path)
    return str(path)


class TestDatasetCli:
    def test_pack_info_mine(self, tmp_path, csv_path, capsys):
        store = str(tmp_path / "store")
        assert main(["dataset", "pack", csv_path, "--group", "group",
                     "--store", store, "--chunk-size", "150"]) == 0
        assert "4 chunks" in capsys.readouterr().out
        assert main(["dataset", "info", store, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "600 rows in 4 chunks" in out
        assert "all digests match" in out
        assert main(["mine", store, "--depth", "2", "--top", "3"]) == 0
        assert "chunked+mask backend" in capsys.readouterr().out

    def test_verify_clean_store(self, tmp_path, csv_path, capsys):
        store = str(tmp_path / "store")
        main(["dataset", "pack", csv_path, "--group", "group",
              "--store", store, "--chunk-size", "150"])
        capsys.readouterr()
        assert main(["dataset", "verify", store]) == 0
        out = capsys.readouterr().out
        # one line per chunk, each reporting ok
        chunk_lines = [ln for ln in out.splitlines()
                       if ln.startswith("chunk-")]
        assert len(chunk_lines) == 4
        assert all(ln.endswith("ok") for ln in chunk_lines)
        assert "all digests match" in out

    def test_verify_corrupt_store_exits_2(self, tmp_path, csv_path,
                                          capsys):
        store_dir = tmp_path / "store"
        main(["dataset", "pack", csv_path, "--group", "group",
              "--store", str(store_dir), "--chunk-size", "150"])
        capsys.readouterr()
        victim = sorted((store_dir / "chunks").iterdir())[1] / "x.bin"
        blob = bytearray(victim.read_bytes())
        blob[0] ^= 0xFF
        victim.write_bytes(bytes(blob))
        assert main(["dataset", "verify", str(store_dir)]) == 2
        captured = capsys.readouterr()
        chunk_lines = [ln for ln in captured.out.splitlines()
                       if ln.startswith("chunk-")]
        # every chunk is still reported; exactly one is corrupt
        assert len(chunk_lines) == 4
        assert sum("CORRUPT" in ln for ln in chunk_lines) == 1
        assert "CORRUPT" in chunk_lines[1]
        assert "1 of 4 chunks corrupt" in captured.err

    def test_append_and_group_alignment(self, tmp_path, csv_path,
                                        mixed_dataset, capsys):
        store = str(tmp_path / "store")
        main(["dataset", "pack", csv_path, "--group", "group",
              "--store", store, "--chunk-size", "300"])
        capsys.readouterr()
        # append a CSV holding only group "B" rows: labels are a subset
        # in a different discovery order, and must re-code cleanly
        only_b = mixed_dataset.select_groups(["B", "A"]).restrict(
            np.asarray(mixed_dataset.select_groups(["B", "A"]).group_codes)
            == 0
        )
        b_csv = tmp_path / "b.csv"
        write_csv(only_b, b_csv)
        labels_before = ChunkedDataset(store).group_labels
        assert main(["dataset", "append", str(b_csv),
                     "--store", store]) == 0
        assert "appended" in capsys.readouterr().out
        reopened = ChunkedDataset(store)
        # appends re-code onto the store's existing label order
        assert reopened.group_labels == labels_before
        assert reopened.n_rows == 600 + only_b.n_rows

    def test_pack_requires_group(self, tmp_path, csv_path, capsys):
        assert main(["dataset", "pack", csv_path,
                     "--store", str(tmp_path / "s")]) == 2
        assert "--group is required" in capsys.readouterr().err

    def test_mine_csv_without_group_is_exit_2(self, csv_path, capsys):
        assert main(["mine", csv_path]) == 2
        assert "--group is required" in capsys.readouterr().err

    def test_mine_store_with_wrong_group_is_exit_2(self, tmp_path,
                                                   csv_path, capsys):
        store = str(tmp_path / "store")
        main(["dataset", "pack", csv_path, "--group", "group",
              "--store", store])
        capsys.readouterr()
        assert main(["mine", store, "--group", "outcome"]) == 2
        assert "groups rows by" in capsys.readouterr().err

    def test_cache_size_flag_validation(self, csv_path, capsys):
        assert main(["mine", csv_path, "--group", "group",
                     "--cache-size", "64"]) == 2
        assert "bitmap" in capsys.readouterr().err
        assert main(["mine", csv_path, "--group", "group",
                     "--backend", "bitmap", "--cache-size", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_cache_size_flag_accepted(self, csv_path, capsys):
        assert main(["mine", csv_path, "--group", "group",
                     "--backend", "bitmap", "--cache-size", "128",
                     "--depth", "1"]) == 0

    def test_info_on_store_dir(self, tmp_path, csv_path, capsys):
        store = str(tmp_path / "store")
        main(["dataset", "pack", csv_path, "--group", "group",
              "--store", store])
        capsys.readouterr()
        assert main(["info", store]) == 0
        out = capsys.readouterr().out
        assert "600 rows" in out
        assert "x: continuous" in out

    def test_dataset_info_missing_store_is_exit_2(self, tmp_path, capsys):
        assert main(["dataset", "info", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err
