"""Tests for repro.core.items (intervals, items, itemsets)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.items import (
    CategoricalItem,
    Interval,
    Itemset,
    NumericItem,
)
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Dataset


def _dataset():
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("c", ["a", "b"]),
        ]
    )
    return Dataset(
        schema,
        {
            "x": np.array([0.0, 0.25, 0.5, 0.75, 1.0]),
            "c": np.array([0, 0, 1, 1, 0]),
        },
        np.array([0, 0, 0, 1, 1]),
        ["G1", "G2"],
    )


class TestInterval:
    def test_default_closure(self):
        iv = Interval(0.0, 1.0)
        assert not iv.lo_closed and iv.hi_closed

    def test_contains_respects_closure(self):
        iv = Interval(0.0, 1.0, lo_closed=False, hi_closed=True)
        assert not iv.contains(0.0)
        assert iv.contains(1.0)
        assert iv.contains(0.5)
        assert not iv.contains(1.5)

    def test_cover_vectorised(self):
        iv = Interval(0.2, 0.8, lo_closed=True, hi_closed=False)
        values = np.array([0.1, 0.2, 0.5, 0.8, 0.9])
        assert list(iv.cover(values)) == [False, True, True, False, False]

    def test_reject_inverted(self):
        with pytest.raises(ValueError):
            Interval(1.0, 0.0)

    def test_reject_nan(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_degenerate_must_be_closed(self):
        Interval(1.0, 1.0, True, True)  # fine
        with pytest.raises(ValueError):
            Interval(1.0, 1.0, False, True)

    def test_infinite_endpoints(self):
        iv = Interval(-math.inf, 5.0)
        assert iv.contains(-1e300)
        assert iv.width == math.inf

    def test_adjacency(self):
        left = Interval(0.0, 0.5, True, True)
        right = Interval(0.5, 1.0, False, True)
        assert left.is_adjacent_to(right)
        assert right.is_adjacent_to(left)

    def test_not_adjacent_with_gap(self):
        assert not Interval(0.0, 0.4).is_adjacent_to(Interval(0.5, 1.0))

    def test_merge_adjacent(self):
        left = Interval(0.0, 0.5, True, True)
        right = Interval(0.5, 1.0, False, True)
        merged = left.merge_with(right)
        assert merged == Interval(0.0, 1.0, True, True)

    def test_merge_order_independent(self):
        left = Interval(0.0, 0.5, True, True)
        right = Interval(0.5, 1.0, False, True)
        assert left.merge_with(right) == right.merge_with(left)

    def test_merge_non_adjacent_raises(self):
        with pytest.raises(ValueError):
            Interval(0.0, 0.3).merge_with(Interval(0.5, 1.0))

    def test_contains_interval(self):
        outer = Interval(0.0, 1.0, True, True)
        inner = Interval(0.2, 0.8)
        assert outer.contains_interval(inner)
        assert not inner.contains_interval(outer)

    def test_contains_interval_boundary_closure(self):
        open_lo = Interval(0.0, 1.0, False, True)
        closed_lo = Interval(0.0, 1.0, True, True)
        assert closed_lo.contains_interval(open_lo)
        assert not open_lo.contains_interval(closed_lo)

    def test_overlaps(self):
        assert Interval(0.0, 0.5).overlaps(Interval(0.4, 1.0))
        assert not Interval(0.0, 0.4).overlaps(Interval(0.5, 1.0))
        # touching at an open/closed boundary: no shared point
        left = Interval(0.0, 0.5, True, True)
        right = Interval(0.5, 1.0, False, True)
        assert not left.overlaps(right)

    def test_str(self):
        assert str(Interval(0.0, 1.0, True, True)) == "[0, 1]"
        assert str(Interval(-math.inf, 3.0)) == "(-inf, 3]"


@settings(max_examples=100, deadline=None)
@given(
    a=st.floats(-100, 100),
    b=st.floats(-100, 100),
    split=st.floats(-100, 100),
)
def test_interval_split_merge_roundtrip(a, b, split):
    """Property: splitting an interval and merging the halves is identity."""
    lo, hi = min(a, b), max(a, b)
    if not lo < split < hi:
        return
    parent = Interval(lo, hi, True, True)
    left = Interval(lo, split, True, True)
    right = Interval(split, hi, False, True)
    assert left.is_adjacent_to(right)
    assert left.merge_with(right) == parent


@settings(max_examples=100, deadline=None)
@given(
    lo=st.floats(-50, 50),
    width=st.floats(0.001, 50),
    value=st.floats(-100, 100),
)
def test_split_covers_exactly_parent(lo, width, value):
    """Property: the two halves of a split partition the parent's points."""
    hi = lo + width
    split = lo + width / 2
    parent = Interval(lo, hi, True, True)
    left = Interval(lo, split, True, True)
    right = Interval(split, hi, False, True)
    in_parent = parent.contains(value)
    assert (left.contains(value) + right.contains(value)) == (
        1 if in_parent else 0
    )


class TestItems:
    def test_categorical_cover(self):
        ds = _dataset()
        item = CategoricalItem("c", "a")
        assert list(item.cover(ds)) == [True, True, False, False, True]

    def test_numeric_cover(self):
        ds = _dataset()
        item = NumericItem("x", Interval(0.2, 0.8, True, False))
        assert list(item.cover(ds)) == [False, True, True, True, False]

    def test_str_forms(self):
        assert str(CategoricalItem("c", "a")) == "c = a"
        txt = str(NumericItem("x", Interval(1.0, 2.0)))
        assert txt == "1 < x <= 2"


class TestItemset:
    def test_canonical_order_and_equality(self):
        a = CategoricalItem("c", "a")
        b = NumericItem("x", Interval(0.0, 1.0))
        assert Itemset([a, b]) == Itemset([b, a])
        assert hash(Itemset([a, b])) == hash(Itemset([b, a]))

    def test_duplicate_attribute_rejected(self):
        a = CategoricalItem("c", "a")
        b = CategoricalItem("c", "b")
        with pytest.raises(ValueError):
            Itemset([a, b])

    def test_with_item_and_without(self):
        base = Itemset([CategoricalItem("c", "a")])
        bigger = base.with_item(NumericItem("x", Interval(0, 1)))
        assert len(bigger) == 2
        assert bigger.without_attribute("x") == base

    def test_empty_itemset(self):
        empty = Itemset()
        assert len(empty) == 0
        assert not empty
        assert str(empty) == "{}"

    def test_cover_conjunction(self):
        ds = _dataset()
        itemset = Itemset(
            [
                CategoricalItem("c", "a"),
                NumericItem("x", Interval(0.1, 1.0, True, True)),
            ]
        )
        assert list(itemset.cover(ds)) == [False, True, False, False, True]

    def test_empty_cover_is_all(self):
        ds = _dataset()
        assert Itemset().cover(ds).all()

    def test_subset_relations(self):
        a = Itemset([CategoricalItem("c", "a")])
        ab = a.with_item(NumericItem("x", Interval(0, 1)))
        assert a.is_subset_of(ab)
        assert a.is_proper_subset_of(ab)
        assert not ab.is_subset_of(a)
        assert a.is_subset_of(a)
        assert not a.is_proper_subset_of(a)

    def test_proper_subsets_count(self):
        items = [
            CategoricalItem("a", "1"),
            CategoricalItem("b", "1"),
            CategoricalItem("c", "1"),
        ]
        subs = list(Itemset(items).proper_subsets())
        assert len(subs) == 6  # 2^3 - 2

    def test_partitions_cover_all_splits(self):
        items = [
            CategoricalItem("a", "1"),
            CategoricalItem("b", "1"),
            CategoricalItem("c", "1"),
        ]
        itemset = Itemset(items)
        parts = list(itemset.partitions())
        assert len(parts) == 3  # 2^(3-1) - 1
        for left, right in parts:
            assert len(left) + len(right) == 3
            assert left.union(right) == itemset

    def test_region_subsumes_numeric(self):
        wide = Itemset([NumericItem("x", Interval(0.0, 1.0, True, True))])
        narrow = Itemset([NumericItem("x", Interval(0.2, 0.8))])
        assert wide.region_subsumes(narrow)
        assert not narrow.region_subsumes(wide)

    def test_region_subsumes_requires_matching_attrs(self):
        x = Itemset([NumericItem("x", Interval(0.0, 1.0, True, True))])
        y = Itemset([NumericItem("y", Interval(0.2, 0.8))])
        assert not x.region_subsumes(y)

    def test_region_subsumes_with_extra_items(self):
        wide = Itemset([NumericItem("x", Interval(0.0, 1.0, True, True))])
        specialised = Itemset(
            [
                NumericItem("x", Interval(0.2, 0.8)),
                CategoricalItem("c", "a"),
            ]
        )
        assert wide.region_subsumes(specialised)

    def test_region_subsumes_categorical_mismatch(self):
        a = Itemset([CategoricalItem("c", "a")])
        b = Itemset([CategoricalItem("c", "b")])
        assert not a.region_subsumes(b)
        assert a.region_subsumes(a)

    def test_item_for(self):
        item = CategoricalItem("c", "a")
        itemset = Itemset([item])
        assert itemset.item_for("c") == item
        assert itemset.item_for("nope") is None
