"""Fault-tolerance invariants of the parallel scheduler.

The contract under test (see DESIGN.md section 9): the resilience layer
never changes *what* is mined, only *how* failures are survived.

* Deterministic fault drills — a worker crash, a hang past the task
  timeout, a corrupted result, a poison-pill task — all complete at
  ``n_jobs=2`` with patterns byte-identical to the golden serial output,
  and the survived events show up in ``MiningResult.summary()``.
* Checkpoint/resume — a depth-3 Adult run killed between levels and
  resumed from its checkpoint reproduces patterns *and* prune accounting
  exactly.
* A hypothesis property runs random (dataset, fault plan) pairs and
  compares against the fault-free serial run.
"""

from __future__ import annotations

import glob
import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Attribute,
    ContrastSetMiner,
    Dataset,
    MinerConfig,
    ResiliencePolicy,
    Schema,
)
from repro.core.serialize import patterns_to_dicts
from repro.dataset import synthetic, uci
from repro.resilience import FaultKind, FaultPlan, FaultSpec

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_patterns.json"

CONFIG = MinerConfig(max_tree_depth=2)
# Fault drills that exercise the timeout path need a tight budget so the
# suite stays fast: the injected hang (1s) dwarfs any real task here.
TIMEOUT_CONFIG = MinerConfig(
    max_tree_depth=2,
    resilience=ResiliencePolicy(task_timeout_s=0.2, backoff=0.01),
)


@pytest.fixture(scope="module")
def golden_sim2():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)["simulated_dataset_2"]


@pytest.fixture(scope="module")
def sim2():
    return synthetic.simulated_dataset_2()


class TestFaultDrills:
    """Injected faults at n_jobs=2 never change the mined patterns."""

    def test_worker_crash_is_survived(self, sim2, golden_sim2):
        result = ContrastSetMiner(CONFIG).mine(
            sim2, n_jobs=2, fault_plan=FaultPlan.kill_nth(0)
        )
        assert patterns_to_dicts(result.patterns) == golden_sim2
        summary = result.summary()
        assert summary.n_worker_crashes >= 1
        assert summary.n_task_retries >= 1
        assert summary.n_tasks_failed == 0
        assert result.stats.pool_restarts >= 1

    def test_hang_times_out_and_retries(self, sim2, golden_sim2):
        result = ContrastSetMiner(TIMEOUT_CONFIG).mine(
            sim2,
            n_jobs=2,
            fault_plan=FaultPlan.hang_nth(0, hang_s=1.0),
        )
        assert patterns_to_dicts(result.patterns) == golden_sim2
        summary = result.summary()
        assert summary.n_task_timeouts >= 1
        assert summary.n_task_retries >= 1
        assert summary.n_tasks_failed == 0

    def test_corrupt_result_is_rejected_and_retried(
        self, sim2, golden_sim2
    ):
        result = ContrastSetMiner(CONFIG).mine(
            sim2, n_jobs=2, fault_plan=FaultPlan.corrupt_nth(0)
        )
        assert patterns_to_dicts(result.patterns) == golden_sim2
        assert result.stats.corrupt_results == 1
        assert result.stats.tasks_retried >= 1
        assert result.stats.tasks_failed == 0

    def test_poison_pill_falls_back_to_serial(self, sim2, golden_sim2):
        """A task failing every parallel attempt is re-run in the driver."""
        result = ContrastSetMiner(CONFIG).mine(
            sim2, n_jobs=2, fault_plan=FaultPlan.poison_nth(0)
        )
        assert patterns_to_dicts(result.patterns) == golden_sim2
        summary = result.summary()
        assert summary.n_serial_fallbacks == 1
        assert summary.n_tasks_failed == 0
        # initial dispatch + max_retries re-dispatches all errored
        assert (
            result.stats.task_errors
            == CONFIG.resilience.max_retries + 1
        )

    def test_transient_error_recovers_without_fallback(
        self, sim2, golden_sim2
    ):
        """A task that fails once succeeds on its retry — no fallback."""
        result = ContrastSetMiner(CONFIG).mine(
            sim2, n_jobs=2, fault_plan=FaultPlan.error_nth(0, times=1)
        )
        assert patterns_to_dicts(result.patterns) == golden_sim2
        assert result.stats.task_errors == 1
        assert result.stats.tasks_retried == 1
        assert result.stats.serial_fallbacks == 0

    def test_combined_faults_in_one_run(self, sim2, golden_sim2):
        plan = FaultPlan.corrupt_nth(0).merged_with(
            FaultPlan.error_nth(1)
        )
        result = ContrastSetMiner(CONFIG).mine(
            sim2, n_jobs=2, fault_plan=plan
        )
        assert patterns_to_dicts(result.patterns) == golden_sim2
        assert result.stats.corrupt_results == 1
        assert result.stats.task_errors == 1
        assert result.stats.tasks_failed == 0


class TestCheckpointResume:
    """Resuming from a level-boundary checkpoint reproduces the
    uninterrupted run exactly — patterns and prune accounting."""

    @pytest.fixture(scope="class")
    def adult(self):
        return uci.adult(scale=0.15)

    @pytest.fixture(scope="class")
    def adult_config(self):
        return MinerConfig(max_tree_depth=3)

    @pytest.fixture(scope="class")
    def uninterrupted(self, adult, adult_config, tmp_path_factory):
        """A depth-3 run that checkpoints after every level."""
        checkpoint_dir = tmp_path_factory.mktemp("adult-checkpoints")
        result = ContrastSetMiner(adult_config).mine(
            adult, n_jobs=2, checkpoint_dir=checkpoint_dir
        )
        return result, checkpoint_dir

    def test_checkpoints_written_per_level(self, uninterrupted):
        result, checkpoint_dir = uninterrupted
        files = sorted(
            os.path.basename(p)
            for p in glob.glob(str(checkpoint_dir / "checkpoint-*.pkl"))
        )
        assert files == [
            "checkpoint-level-01.pkl",
            "checkpoint-level-02.pkl",
            "checkpoint-level-03.pkl",
        ]
        assert result.summary().n_checkpoints == 3

    @pytest.mark.parametrize("killed_after_level", [1, 2])
    def test_resume_reproduces_run_exactly(
        self, adult, adult_config, uninterrupted, killed_after_level
    ):
        """Simulate a run killed between levels: resume from the last
        checkpoint it managed to write and compare everything."""
        full, checkpoint_dir = uninterrupted
        checkpoint = (
            checkpoint_dir
            / f"checkpoint-level-{killed_after_level:02d}.pkl"
        )
        resumed = ContrastSetMiner(adult_config).resume(
            checkpoint, dataset=adult, n_jobs=2
        )
        assert patterns_to_dicts(resumed.patterns) == patterns_to_dicts(
            full.patterns
        )
        assert resumed.stats.prune_reasons == full.stats.prune_reasons
        assert (
            resumed.stats.prune_rule_checks
            == full.stats.prune_rule_checks
        )
        assert (
            resumed.stats.prune_rule_hits == full.stats.prune_rule_hits
        )
        assert (
            resumed.stats.partitions_evaluated
            == full.stats.partitions_evaluated
        )
        assert (
            resumed.summary().resumed_from_level == killed_after_level
        )

    def test_resume_from_directory_takes_deepest(
        self, adult, adult_config, uninterrupted
    ):
        full, checkpoint_dir = uninterrupted
        resumed = ContrastSetMiner(adult_config).resume(
            checkpoint_dir, dataset=adult
        )
        assert patterns_to_dicts(resumed.patterns) == patterns_to_dicts(
            full.patterns
        )
        assert resumed.summary().resumed_from_level == 3

    def test_resume_under_faults_still_exact(
        self, adult, adult_config, uninterrupted
    ):
        """Fault injection during the resumed half changes nothing."""
        full, checkpoint_dir = uninterrupted
        state_file = checkpoint_dir / "checkpoint-level-01.pkl"
        from repro.resilience import load_checkpoint
        from repro.parallel.scheduler import parallel_search

        state = load_checkpoint(state_file)
        topk, stats, _ = parallel_search(
            state.dataset,
            adult_config,
            state.attributes,
            2,
            resume_from=state,
            fault_plan=FaultPlan.corrupt_nth(0),
        )
        assert patterns_to_dicts(topk.patterns()) == patterns_to_dicts(
            full.patterns
        )
        assert stats.corrupt_results == 1

    def test_serial_checkpointing_matches_parallel(
        self, sim2_checkpoint_runs
    ):
        """n_jobs=1 with a checkpoint_dir routes through a one-worker
        pool and still produces the serial patterns."""
        serial, checkpointed = sim2_checkpoint_runs
        assert patterns_to_dicts(
            checkpointed.patterns
        ) == patterns_to_dicts(serial.patterns)

    @pytest.fixture(scope="class")
    def sim2_checkpoint_runs(self, tmp_path_factory):
        dataset = synthetic.simulated_dataset_2()
        serial = ContrastSetMiner(CONFIG).mine(dataset)
        checkpoint_dir = tmp_path_factory.mktemp("sim2-checkpoints")
        checkpointed = ContrastSetMiner(CONFIG).mine(
            dataset, n_jobs=1, checkpoint_dir=checkpoint_dir
        )
        return serial, checkpointed


# ---------------------------------------------------------------------------
# Property: any fault plan, any dataset — same patterns as fault-free serial
# ---------------------------------------------------------------------------


@st.composite
def fault_datasets(draw):
    """Small random mixed dataset (kept tiny: each example spawns a
    process pool)."""
    n = draw(st.integers(60, 120))
    seed = draw(st.integers(0, 2**31 - 1))
    strength = draw(st.floats(0.0, 1.0))
    rng = np.random.default_rng(seed)
    group = rng.integers(0, 2, n)
    x = rng.uniform(0, 1, n) + strength * group
    cat = rng.integers(0, 2, n)
    schema = Schema.of(
        [
            Attribute.continuous("x"),
            Attribute.categorical("c", ["u", "v"]),
        ]
    )
    return Dataset(schema, {"x": x, "c": cat}, group, ["G0", "G1"])


@st.composite
def fault_plans(draw):
    """Random plan over the first few task sequence numbers.  KILL is
    excluded here — pool rebuilds cost ~1s each and the dedicated drill
    above covers that path deterministically."""
    n_faults = draw(st.integers(1, 3))
    plan = FaultPlan()
    for _ in range(n_faults):
        seq = draw(st.integers(0, 4))
        kind = draw(
            st.sampled_from(
                [FaultKind.ERROR, FaultKind.CORRUPT]
            )
        )
        times = draw(st.sampled_from([1, 2]))
        plan = plan.merged_with(
            FaultPlan({seq: FaultSpec(kind, times=times)})
        )
    return plan


@pytest.mark.slow
@settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(dataset=fault_datasets(), plan=fault_plans())
def test_any_fault_plan_yields_serial_patterns(dataset, plan):
    """Whatever deterministic faults are injected, the mined patterns are
    byte-identical to a fault-free serial run — and every plan completes
    (the serial fallback guarantees it)."""
    serial = ContrastSetMiner(CONFIG).mine(dataset)
    faulted = ContrastSetMiner(CONFIG).mine(
        dataset, n_jobs=2, fault_plan=plan
    )
    assert patterns_to_dicts(faulted.patterns) == patterns_to_dicts(
        serial.patterns
    )
    assert faulted.stats.tasks_failed == 0


@pytest.mark.slow
@settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(dataset=fault_datasets(), level=st.integers(1, 2))
def test_resume_equals_uninterrupted_run(dataset, level):
    """Property: resuming from any level's checkpoint reproduces the
    uninterrupted run (patterns and prune accounting)."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = Path(tmp) / "ckpt"
        full = ContrastSetMiner(CONFIG).mine(
            dataset, n_jobs=2, checkpoint_dir=checkpoint_dir
        )
        checkpoint = (
            checkpoint_dir / f"checkpoint-level-{level:02d}.pkl"
        )
        if not checkpoint.exists():  # search exhausted before this level
            return
        resumed = ContrastSetMiner(CONFIG).resume(
            checkpoint, dataset=dataset, n_jobs=2
        )
    assert patterns_to_dicts(resumed.patterns) == patterns_to_dicts(
        full.patterns
    )
    assert resumed.stats.prune_reasons == full.stats.prune_reasons
