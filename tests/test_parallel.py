"""Tests for the level-parallel mining scheduler."""

import numpy as np
import pytest

from repro import ContrastSetMiner, MinerConfig
from repro.core.items import Itemset
from repro.dataset.manufacturing import scaling_dataset
from repro.parallel import mine_level_tasks, mine_parallel


@pytest.fixture(scope="module")
def small_trace():
    return scaling_dataset(1200, n_features=10, seed=3)


class TestMineParallel:
    def test_matches_serial_results(self, small_trace):
        config = MinerConfig(k=20, max_tree_depth=2)
        serial = ContrastSetMiner(config).mine(small_trace)
        parallel = mine_parallel(small_trace, config, n_workers=2)
        serial_sets = {p.itemset for p in serial.patterns}
        parallel_sets = {p.itemset for p in parallel.patterns}
        # the parallel run loses some cross-subtree pruning, so it may
        # retain extra patterns, but everything serial found must be there
        # and the top pattern must agree
        overlap = serial_sets & parallel_sets
        assert len(overlap) >= 0.8 * len(serial_sets)
        assert serial.patterns[0].itemset == parallel.patterns[0].itemset

    def test_single_worker(self, small_trace):
        config = MinerConfig(k=10, max_tree_depth=1)
        result = mine_parallel(small_trace, config, n_workers=1)
        assert result.patterns
        assert result.n_workers == 1

    def test_stats_recorded(self, small_trace):
        config = MinerConfig(k=10, max_tree_depth=1)
        result = mine_parallel(small_trace, config, n_workers=2)
        assert result.stats.partitions_evaluated > 0
        assert result.stats.elapsed_seconds > 0

    def test_top_helper(self, small_trace):
        config = MinerConfig(k=10, max_tree_depth=1)
        result = mine_parallel(small_trace, config, n_workers=2)
        assert len(result.top(3)) <= 3


class TestLevelTasks:
    def test_level1_tasks_cover_all_attributes(self, small_trace):
        tasks = mine_level_tasks(small_trace, 1, {}, 0.1, [])
        covered = set()
        for task in tasks:
            covered.update(task.categorical)
            covered.update(task.continuous)
        assert covered == set(small_trace.schema.names)

    def test_level2_requires_viable_prefixes(self, small_trace):
        # no viable level-1 categorical itemsets -> categorical pairs and
        # mixed combos with categorical context are skipped
        tasks = mine_level_tasks(small_trace, 2, {}, 0.1, [])
        for task in tasks:
            if task.continuous and task.categorical:
                raise AssertionError(
                    "mixed combo without viable context should be skipped"
                )
            assert task.continuous or not task.categorical or task.contexts

    def test_level2_with_viable_prefix(self, small_trace):
        cat = small_trace.schema.categorical_names[:2]
        from repro.core.items import CategoricalItem

        viable = {
            (cat[0],): [
                Itemset([CategoricalItem(cat[0], "v0")]),
            ]
        }
        tasks = mine_level_tasks(small_trace, 2, viable, 0.1, [])
        mixed = [t for t in tasks if t.continuous and t.categorical]
        assert mixed
        assert all(t.contexts for t in mixed)
