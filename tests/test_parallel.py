"""Tests for the level-parallel mining scheduler and the unified API."""

import numpy as np
import pytest

from repro import ContrastSetMiner, MinerConfig, MiningResult, MiningSummary
from repro.core.items import Itemset
from repro.dataset.manufacturing import scaling_dataset
from repro.parallel import mine_level_tasks, parallel_search


@pytest.fixture(scope="module")
def small_trace():
    return scaling_dataset(1200, n_features=10, seed=3)


class TestUnifiedMine:
    """``ContrastSetMiner.mine(..., n_jobs=N)`` is the one entry point."""

    def test_matches_serial_results(self, small_trace):
        # Workers run the identical PruningPipeline lifecycle with the
        # driver's per-level alpha, so the pattern lists match exactly.
        config = MinerConfig(k=20, max_tree_depth=2)
        serial = ContrastSetMiner(config).mine(small_trace)
        parallel = ContrastSetMiner(config).mine(small_trace, n_jobs=2)
        assert [(p.itemset, p.counts) for p in serial.patterns] == [
            (p.itemset, p.counts) for p in parallel.patterns
        ]

    def test_parallel_returns_mining_result(self, small_trace):
        config = MinerConfig(k=10, max_tree_depth=1)
        result = ContrastSetMiner(config).mine(small_trace, n_jobs=2)
        assert isinstance(result, MiningResult)
        assert result.n_workers == 2
        assert result.interests  # itemset -> interest mapping survives

    def test_serial_n_workers_is_one(self, small_trace):
        config = MinerConfig(k=10, max_tree_depth=1)
        result = ContrastSetMiner(config).mine(small_trace)
        assert result.n_workers == 1

    def test_invalid_n_jobs_rejected(self, small_trace):
        with pytest.raises(ValueError, match="n_jobs"):
            ContrastSetMiner().mine(small_trace, n_jobs=0)

    def test_stats_recorded(self, small_trace):
        config = MinerConfig(k=10, max_tree_depth=1)
        result = ContrastSetMiner(config).mine(small_trace, n_jobs=2)
        assert result.stats.partitions_evaluated > 0
        assert result.stats.elapsed_seconds > 0
        assert result.stats.count_calls > 0

    def test_bitmap_backend_through_workers(self, small_trace):
        config = MinerConfig(
            k=10, max_tree_depth=2, counting_backend="bitmap"
        )
        mask = ContrastSetMiner(
            config.with_(counting_backend="mask")
        ).mine(small_trace, n_jobs=2)
        bitmap = ContrastSetMiner(config).mine(small_trace, n_jobs=2)
        assert [(p.itemset, p.counts) for p in mask.patterns] == [
            (p.itemset, p.counts) for p in bitmap.patterns
        ]
        assert bitmap.stats.counting_backend == "bitmap"

    def test_attribute_restriction(self, small_trace):
        names = small_trace.schema.names[:4]
        config = MinerConfig(k=10, max_tree_depth=2)
        result = ContrastSetMiner(config).mine(
            small_trace, attributes=names, n_jobs=2
        )
        for pattern in result.patterns:
            assert set(pattern.itemset.attributes) <= set(names)

    def test_summary(self, small_trace):
        config = MinerConfig(k=10, max_tree_depth=1)
        result = ContrastSetMiner(config).mine(small_trace, n_jobs=2)
        summary = result.summary()
        assert isinstance(summary, MiningSummary)
        assert summary.n_patterns == len(result)
        assert summary.n_rows == small_trace.n_rows
        assert summary.n_workers == 2
        assert summary.counting_backend == "mask"


class TestPruneParity:
    """Serial and parallel runs agree on prune *accounting*, not just
    patterns — the rule-ordering drift between the two paths is gone."""

    @pytest.mark.parametrize("dataset_number", [1, 2, 3, 4])
    def test_reason_counts_match_serial(self, dataset_number):
        from repro.dataset import synthetic

        dataset = getattr(
            synthetic, f"simulated_dataset_{dataset_number}"
        )()
        config = MinerConfig(max_tree_depth=2)
        serial = ContrastSetMiner(config).mine(dataset, n_jobs=1)
        parallel = ContrastSetMiner(config).mine(dataset, n_jobs=2)
        assert serial.stats.prune_reasons == parallel.stats.prune_reasons
        assert (
            serial.stats.prune_rule_hits == parallel.stats.prune_rule_hits
        )
        assert (
            serial.stats.prune_rule_checks
            == parallel.stats.prune_rule_checks
        )
        assert [p.itemset for p in serial.patterns] == [
            p.itemset for p in parallel.patterns
        ]


class TestRemovedShims:
    """The PR-7 deprecation shims are gone: the unified mine() is the
    only entry point, and the module namespace says so."""

    def test_mine_parallel_removed(self):
        import repro.parallel
        import repro.parallel.scheduler

        with pytest.raises(ImportError):
            from repro.parallel import mine_parallel  # noqa: F401
        assert not hasattr(repro.parallel.scheduler, "mine_parallel")
        assert "mine_parallel" not in repro.parallel.__all__

    def test_parallel_mining_result_removed(self):
        import repro.parallel
        import repro.parallel.scheduler

        with pytest.raises(ImportError):
            from repro.parallel import ParallelMiningResult  # noqa: F401
        with pytest.raises(AttributeError):
            repro.parallel.scheduler.ParallelMiningResult


class TestParallelSearch:
    def test_returns_topk_stats_workers(self, small_trace):
        config = MinerConfig(k=10, max_tree_depth=1)
        topk, stats, n_workers = parallel_search(
            small_trace, config, n_workers=2
        )
        assert topk.patterns()
        assert stats.partitions_evaluated > 0
        assert n_workers == 2


class TestLevelTasks:
    def test_level1_tasks_cover_all_attributes(self, small_trace):
        tasks = mine_level_tasks(small_trace, 1, {}, 0.1, [])
        covered = set()
        for task in tasks:
            covered.update(task.categorical)
            covered.update(task.continuous)
        assert covered == set(small_trace.schema.names)

    def test_attributes_restrict_tasks(self, small_trace):
        names = small_trace.schema.names[:3]
        tasks = mine_level_tasks(
            small_trace, 1, {}, 0.1, [], attributes=names
        )
        covered = set()
        for task in tasks:
            covered.update(task.categorical)
            covered.update(task.continuous)
        assert covered == set(names)

    def test_level2_requires_viable_prefixes(self, small_trace):
        # no viable level-1 categorical itemsets -> categorical pairs and
        # mixed combos with categorical context are skipped
        tasks = mine_level_tasks(small_trace, 2, {}, 0.1, [])
        for task in tasks:
            if task.continuous and task.categorical:
                raise AssertionError(
                    "mixed combo without viable context should be skipped"
                )
            assert task.continuous or not task.categorical or task.contexts

    def test_level2_with_viable_prefix(self, small_trace):
        cat = small_trace.schema.categorical_names[:2]
        from repro.core.items import CategoricalItem

        viable = {
            (cat[0],): [
                Itemset([CategoricalItem(cat[0], "v0")]),
            ]
        }
        tasks = mine_level_tasks(small_trace, 2, viable, 0.1, [])
        mixed = [t for t in tasks if t.continuous and t.categorical]
        assert mixed
        assert all(t.contexts for t in mixed)
