"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.dataset.io import write_csv


@pytest.fixture
def csv_path(tmp_path, mixed_dataset):
    path = tmp_path / "data.csv"
    write_csv(mixed_dataset, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_measure_rejected(self, csv_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", csv_path, "--group", "group",
                 "--measure", "bogus"]
            )


class TestInfo:
    def test_describes_dataset(self, csv_path, capsys):
        assert main(["info", csv_path, "--group", "group"]) == 0
        out = capsys.readouterr().out
        assert "600 rows" in out
        assert "x: continuous" in out
        assert "color: categorical" in out


class TestMine:
    def test_meaningful_by_default(self, csv_path, capsys):
        code = main(
            ["mine", csv_path, "--group", "group", "--k", "20",
             "--depth", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Meaningful contrasts" in out
        assert "x" in out
        assert "partitions evaluated" in out

    def test_all_flag_prints_raw(self, csv_path, capsys):
        code = main(
            ["mine", csv_path, "--group", "group", "--k", "10",
             "--depth", "1", "--all", "--top", "5"]
        )
        assert code == 0
        assert "raw" in capsys.readouterr().out

    def test_attribute_restriction(self, csv_path, capsys):
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "1",
             "--attributes", "noise"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "x <=" not in out

    def test_group_selection(self, csv_path, capsys):
        code = main(
            ["mine", csv_path, "--group", "group", "--groups", "A", "B",
             "--depth", "1"]
        )
        assert code == 0

    def test_measure_option(self, csv_path, capsys):
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "1",
             "--measure", "surprising"]
        )
        assert code == 0

    def test_validate_flag(self, csv_path, capsys):
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "1",
             "--validate", "0.3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "survived holdout" in out

    def test_briefing_flag(self, csv_path, capsys):
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "1",
             "--briefing"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Characteristic of" in out


class TestMineCheckpoints:
    def test_checkpoint_dir_writes_and_reports(
        self, csv_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "2",
             "--checkpoint-dir", str(ckpt)]
        )
        assert code == 0
        assert sorted(p.name for p in ckpt.glob("*.pkl"))
        out = capsys.readouterr().out
        assert "checkpoints written" in out

    def test_resume_completes_run(self, csv_path, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(
            ["mine", csv_path, "--group", "group", "--depth", "2",
             "--checkpoint-dir", str(ckpt)]
        ) == 0
        first = capsys.readouterr().out
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "2",
             "--resume", str(ckpt / "checkpoint-level-01.pkl")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed after level 1" in out
        # same table of contrasts as the uninterrupted run
        assert out.splitlines()[0] == first.splitlines()[0]

    def test_resume_with_wrong_config_fails_cleanly(
        self, csv_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        assert main(
            ["mine", csv_path, "--group", "group", "--depth", "2",
             "--checkpoint-dir", str(ckpt)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "3",
             "--resume", str(ckpt)]
        )
        assert code == 2
        assert "checkpoint error" in capsys.readouterr().err

    def test_resume_missing_checkpoint_fails_cleanly(
        self, csv_path, tmp_path, capsys
    ):
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "2",
             "--resume", str(tmp_path / "nope.pkl")]
        )
        assert code == 2
        assert "checkpoint error" in capsys.readouterr().err

    def test_resume_conflicts_with_validate(
        self, csv_path, tmp_path, capsys
    ):
        code = main(
            ["mine", csv_path, "--group", "group",
             "--resume", str(tmp_path / "any.pkl"),
             "--validate", "0.3"]
        )
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_retry_flags_accepted(self, csv_path, capsys):
        code = main(
            ["mine", csv_path, "--group", "group", "--depth", "1",
             "--max-retries", "1", "--task-timeout", "30",
             "--retry-backoff", "0.05"]
        )
        assert code == 0
        assert "partitions evaluated" in capsys.readouterr().out


class TestCompare:
    def test_two_algorithms(self, csv_path, capsys):
        code = main(
            [
                "compare", csv_path, "--group", "group",
                "--algorithms", "sdad_np", "entropy",
                "--depth", "2", "--k", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sdad_np" in out and "entropy" in out
        assert "WMW" in out


class TestGenerate:
    def test_generate_simulated(self, tmp_path, capsys):
        out_path = tmp_path / "sim.csv"
        code = main(
            ["generate", "simulated_dataset_3", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_uci_with_scale(self, tmp_path):
        out_path = tmp_path / "tr.csv"
        code = main(
            ["generate", "transfusion", str(out_path), "--seed", "1"]
        )
        assert code == 0
        text = out_path.read_text()
        assert "recency_months" in text.splitlines()[0]

    def test_generate_unknown(self, tmp_path, capsys):
        code = main(["generate", "nope", str(tmp_path / "x.csv")])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_generated_csv_roundtrips_through_mine(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "sim.csv"
        main(["generate", "simulated_dataset_3", str(out_path)])
        code = main(
            ["mine", str(out_path), "--group", "group", "--depth", "1"]
        )
        assert code == 0
        assert "Attribute 1" in capsys.readouterr().out


class TestStoreCommands:
    @pytest.fixture
    def store_dir(self, tmp_path, csv_path):
        store = str(tmp_path / "store")
        code = main(
            ["store", "put", csv_path, "--group", "group",
             "--store", store, "--depth", "1", "--tags", "ci", "smoke"]
        )
        assert code == 0
        return store

    def test_put_reports_run_id(self, tmp_path, csv_path, capsys):
        store = str(tmp_path / "store")
        code = main(
            ["store", "put", csv_path, "--group", "group",
             "--store", store, "--depth", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stored run run-" in out

    def test_ls_lists_runs_with_tags(self, store_dir, capsys):
        assert main(["store", "ls", store_dir]) == 0
        out = capsys.readouterr().out
        assert "run-" in out
        assert "[ci, smoke]" in out

    def test_ls_empty_store_message(self, tmp_path, capsys):
        from repro.serve.store import PatternStore

        empty = tmp_path / "empty"
        PatternStore(empty)
        assert main(["store", "ls", str(empty)]) == 0
        assert "(store is empty)" in capsys.readouterr().out

    def test_gc_reports_removals(self, store_dir, capsys):
        from pathlib import Path

        orphan = Path(store_dir) / "runs" / ".tmp-dead"
        orphan.mkdir()
        assert main(["store", "gc", store_dir]) == 0
        out = capsys.readouterr().out
        assert "removed 1 unreferenced entries" in out
        assert ".tmp-dead" in out
        assert not orphan.exists()

    def test_query_latest(self, store_dir, capsys):
        code = main(
            ["query", store_dir, "--min-diff", "0.1", "--limit", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Query results (run-" in out
        assert "patterns selected" in out

    def test_query_json_round_trips(self, store_dir, capsys):
        import json as _json

        assert main(["query", store_dir, "--json", "--limit", "2"]) == 0
        payload = _json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert all("pattern" in entry for entry in payload)
        assert len(payload) <= 2

    def test_query_row_lookup(self, store_dir, capsys):
        code = main(
            ["query", store_dir, "--row", "x=0.1", "color=red",
             "noise=0.5"]
        )
        assert code == 0
        assert "Patterns covering the record" in capsys.readouterr().out

    def test_serve_parser_accepts_options(self, store_dir):
        args = build_parser().parse_args(
            ["serve", store_dir, "--port", "0", "--cache-size", "16"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.cache_size == 16


class TestErrorExitCodes:
    """Every anticipated failure exits 2 with a one-line stderr message."""

    def test_missing_csv(self, capsys):
        assert main(["info", "/nonexistent/nope.csv",
                     "--group", "group"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_store(self, capsys):
        assert main(["store", "ls", "/nonexistent/store"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "no pattern store" in err

    def test_query_empty_store(self, tmp_path, capsys):
        from repro.serve.store import PatternStore

        empty = tmp_path / "empty"
        PatternStore(empty)
        assert main(["query", str(empty)]) == 2
        assert "holds no runs" in capsys.readouterr().err

    def test_query_unknown_run(self, tmp_path, capsys):
        from repro.serve.store import PatternStore

        empty = tmp_path / "empty"
        PatternStore(empty)
        assert main(
            ["query", str(empty), "--run", "run-000042-cafecafecafe"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_row_syntax(self, tmp_path, csv_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["store", "put", csv_path, "--group", "group",
             "--store", store, "--depth", "1"]
        ) == 0
        capsys.readouterr()
        assert main(["query", store, "--row", "justaname"]) == 2
        assert "ATTR=VALUE" in capsys.readouterr().err

    def test_serve_missing_store(self, capsys):
        assert main(["serve", "/nonexistent/store"]) == 2
        assert "error:" in capsys.readouterr().err
