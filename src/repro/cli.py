"""Command-line interface.

Four subcommands cover the operational loop a downstream user needs:

* ``repro info data.csv --group outcome`` — describe a dataset;
* ``repro mine data.csv --group outcome`` — mine and print contrasts;
* ``repro compare data.csv --group outcome`` — run the Table 4 protocol;
* ``repro generate adult out.csv`` — materialise a built-in dataset.

All commands read/write plain CSV and print plain text, so the tool
drops into shell pipelines.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .analysis import (
    compare_algorithms,
    comparison_table,
    pattern_table,
    ALGORITHMS,
)
from .core import measures
from .core.config import MinerConfig
from .core.miner import ContrastSetMiner
from .dataset.io import read_csv, write_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SDAD-CS contrast pattern mining for quantitative data "
            "(Khade, Lin & Patel, EDBT 2019)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_io(p: argparse.ArgumentParser) -> None:
        p.add_argument("csv", help="input CSV file")
        p.add_argument(
            "--group", required=True, help="name of the group column"
        )
        p.add_argument(
            "--groups",
            nargs=2,
            metavar=("G1", "G2"),
            help="restrict to two group labels",
        )
        p.add_argument(
            "--delimiter", default=",", help="CSV delimiter (default ,)"
        )

    def add_miner_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--delta", type=float, default=0.1,
                       help="minimum support difference (default 0.1)")
        p.add_argument("--alpha", type=float, default=0.05,
                       help="significance level (default 0.05)")
        p.add_argument("--k", type=int, default=100,
                       help="top-k patterns to keep (default 100)")
        p.add_argument("--depth", type=int, default=5,
                       help="max itemset size (default 5)")
        p.add_argument(
            "--measure",
            default="support_difference",
            choices=measures.available_measures(),
            help="interest measure to optimise",
        )
        p.add_argument(
            "--attributes",
            nargs="+",
            help="restrict the search to these attributes",
        )
        p.add_argument(
            "--backend",
            default="mask",
            choices=("mask", "bitmap"),
            help=(
                "support-counting backend: 'mask' (boolean masks) or "
                "'bitmap' (packed bit-vectors, faster on "
                "categorical-heavy data)"
            ),
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=2,
            help=(
                "parallel dispatches a failed task gets before the "
                "serial fallback (default 2)"
            ),
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help=(
                "per-task wall-clock budget; a task running longer is "
                "abandoned and retried (default: no timeout)"
            ),
        )
        p.add_argument(
            "--retry-backoff",
            type=float,
            default=0.1,
            metavar="SECONDS",
            help=(
                "base of the exponential retry backoff "
                "(attempt n waits backoff * 2^(n-1) s; default 0.1)"
            ),
        )

    info = sub.add_parser("info", help="describe a dataset")
    add_io(info)

    mine = sub.add_parser("mine", help="mine contrast patterns")
    add_io(mine)
    add_miner_options(mine)
    def positive_int(value: str) -> int:
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return n

    mine.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes (>1 uses the level-parallel scheduler)",
    )
    mine.add_argument(
        "--all",
        action="store_true",
        dest="show_all",
        help="print the raw top-k instead of only the meaningful patterns",
    )
    mine.add_argument(
        "--top", type=int, default=20, help="rows to print (default 20)"
    )
    mine.add_argument(
        "--validate",
        type=float,
        metavar="FRACTION",
        help=(
            "hold out this fraction of rows, mine on the rest, and "
            "report only patterns that re-validate on the holdout"
        ),
    )
    mine.add_argument(
        "--briefing",
        action="store_true",
        help="print a plain-language briefing instead of the table",
    )
    mine.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the patterns as JSON (for pipelines/dashboards)",
    )
    mine.add_argument(
        "--explain-prunes",
        action="store_true",
        dest="explain_prunes",
        help=(
            "print the per-rule pruning report (checks, hits, wall time "
            "per pipeline rule)"
        ),
    )
    mine.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help=(
            "persist the mining state here after every completed search "
            "level, so an interrupted run can be continued with --resume"
        ),
    )
    mine.add_argument(
        "--resume",
        metavar="CHECKPOINT",
        help=(
            "continue an interrupted run from a checkpoint file or "
            "directory (deepest level wins); requires the same miner "
            "flags the original run used"
        ),
    )

    compare = sub.add_parser(
        "compare", help="compare algorithms (Table 4 protocol)"
    )
    add_io(compare)
    add_miner_options(compare)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["sdad_np", "mvd", "entropy", "cortana"],
        choices=sorted(ALGORITHMS),
        help="algorithms to run (first is the WMW reference)",
    )

    generate = sub.add_parser(
        "generate", help="write a built-in dataset to CSV"
    )
    generate.add_argument(
        "name",
        help=(
            "dataset name: a UCI stand-in (adult, spambase, ...), "
            "'manufacturing', or simulated_dataset_1..4"
        ),
    )
    generate.add_argument("out", help="output CSV path")
    generate.add_argument(
        "--scale", type=float, help="row-count scale for UCI stand-ins"
    )
    generate.add_argument("--seed", type=int, help="generator seed")
    return parser


def _load(args) -> "object":
    dataset = read_csv(
        args.csv, group_column=args.group, delimiter=args.delimiter
    )
    if args.groups:
        dataset = dataset.select_groups(args.groups)
    return dataset


def _config(args) -> MinerConfig:
    from .resilience import ResiliencePolicy

    return MinerConfig(
        delta=args.delta,
        alpha=args.alpha,
        k=args.k,
        max_tree_depth=args.depth,
        interest_measure=args.measure,
        counting_backend=args.backend,
        resilience=ResiliencePolicy(
            max_retries=args.max_retries,
            task_timeout_s=args.task_timeout,
            backoff=args.retry_backoff,
        ),
    )


def _cmd_info(args) -> int:
    dataset = _load(args)
    print(dataset.describe())
    for attr in dataset.schema:
        if attr.is_categorical:
            print(
                f"  {attr.name}: categorical "
                f"({attr.cardinality} values)"
            )
        else:
            col = dataset.column(attr.name)
            print(
                f"  {attr.name}: continuous "
                f"[{col.min():g}, {col.max():g}]"
            )
    return 0


def _cmd_mine(args) -> int:
    from .resilience import CheckpointError

    dataset = _load(args)
    config = _config(args)

    if args.resume and args.validate is not None:
        print(
            "--resume continues the original run's exact state and "
            "cannot be combined with --validate",
            file=sys.stderr,
        )
        return 2

    holdout = None
    mine_on = dataset
    if args.validate is not None:
        from .dataset.sampling import train_holdout_split

        mine_on, holdout = train_holdout_split(dataset, args.validate)

    miner = ContrastSetMiner(config)
    try:
        if args.resume:
            result = miner.resume(
                args.resume,
                dataset=mine_on,
                n_jobs=args.jobs,
                checkpoint_dir=args.checkpoint_dir,
            )
        else:
            result = miner.mine(
                mine_on,
                attributes=args.attributes,
                n_jobs=args.jobs,
                checkpoint_dir=args.checkpoint_dir,
            )
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    if args.show_all:
        patterns = result.top(args.top)
        title = f"Top {len(patterns)} contrasts (raw)"
    else:
        patterns = result.meaningful()[: args.top]
        title = f"Meaningful contrasts (top {len(patterns)})"

    if holdout is not None:
        from .analysis.validation import validate_patterns

        validation = validate_patterns(
            patterns, holdout, delta=config.delta, alpha=config.alpha
        )
        patterns = validation.survivors()
        title += f" — {validation.formatted()}"

    if args.as_json:
        import json

        from .core.serialize import patterns_to_dicts

        print(json.dumps(patterns_to_dicts(patterns), indent=2))
        return 0
    if args.briefing:
        from .analysis.explain import briefing

        print(briefing(patterns, max_items=args.top, title=title))
    else:
        print(pattern_table(patterns, title=title))
    stats = result.stats
    line = (
        f"\n{len(result)} patterns; "
        f"{stats.partitions_evaluated} partitions evaluated, "
        f"{stats.spaces_pruned} pruned, {stats.elapsed_seconds:.2f}s "
        f"[{stats.counting_backend} backend, "
        f"{stats.count_calls} count calls"
    )
    if stats.counting_backend == "bitmap":
        line += (
            f", cache {stats.cache_hits} hits / "
            f"{stats.cache_misses} misses"
        )
    line += "]"
    if result.n_workers > 1:
        line += f" ({result.n_workers} workers)"
    print(line)
    events = [
        (stats.tasks_retried, "task retries"),
        (stats.task_timeouts, "timeouts"),
        (stats.worker_crashes, "worker crashes"),
        (stats.serial_fallbacks, "serial fallbacks"),
        (stats.tasks_failed, "permanent task failures"),
        (stats.checkpoints_written, "checkpoints written"),
    ]
    fired = [f"{count} {label}" for count, label in events if count]
    if stats.resumed_from_level:
        fired.insert(0, f"resumed after level {stats.resumed_from_level}")
    if fired:
        print("resilience: " + ", ".join(fired))
    if args.explain_prunes:
        print()
        print(result.explain_prunes())
    return 0


def _cmd_compare(args) -> int:
    dataset = _load(args)
    comparison = compare_algorithms(
        dataset,
        dataset_name=args.csv,
        algorithms=tuple(args.algorithms),
        config=_config(args),
    )
    print(comparison_table([comparison], args.algorithms))
    print(f"\n(k = {comparison.k_used}; '*' = WMW-indistinguishable "
          f"from {args.algorithms[0]})")
    return 0


def _cmd_generate(args) -> int:
    from .dataset import synthetic, uci
    from .dataset.manufacturing import manufacturing

    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.name in uci.DATASET_REGISTRY:
        if args.scale is not None:
            kwargs["scale"] = args.scale
        dataset = uci.load(args.name, **kwargs)
    elif args.name == "manufacturing":
        dataset = manufacturing(**kwargs)
    elif hasattr(synthetic, args.name):
        dataset = getattr(synthetic, args.name)(**kwargs)
    else:
        known = sorted(uci.DATASET_REGISTRY) + [
            "manufacturing",
            "simulated_dataset_1",
            "simulated_dataset_2",
            "simulated_dataset_3",
            "simulated_dataset_4",
            "figure2_example",
        ]
        print(
            f"unknown dataset {args.name!r}; known: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2
    write_csv(dataset, args.out)
    print(f"wrote {dataset.n_rows} rows to {args.out}")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "mine": _cmd_mine,
    "compare": _cmd_compare,
    "generate": _cmd_generate,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
