"""Command-line interface.

Eight subcommands cover the operational loop a downstream user needs:

* ``repro info data.csv --group outcome`` — describe a dataset;
* ``repro mine data.csv --group outcome`` — mine and print contrasts;
* ``repro compare data.csv --group outcome`` — run the Table 4 protocol;
* ``repro generate adult out.csv`` — materialise a built-in dataset;
* ``repro dataset {pack,append,info}`` — manage chunked on-disk
  datasets for out-of-core mining;
* ``repro store {put,ls,gc}`` — manage a durable pattern store;
* ``repro query STORE`` — query/match against a stored run;
* ``repro serve STORE`` — run the HTTP pattern server.

All commands read/write plain CSV and print plain text, so the tool
drops into shell pipelines.  Commands that take a CSV also accept a
chunked dataset directory (``repro dataset pack`` output) and then mine
out of core.  Every failure path prints to stderr and exits non-zero
(2 for usage/data errors), never a bare traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .analysis import (
    compare_algorithms,
    comparison_table,
    pattern_table,
    ALGORITHMS,
)
from .core import measures
from .core.config import MinerConfig
from .core.miner import ContrastSetMiner
from .dataset.io import read_csv, write_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SDAD-CS contrast pattern mining for quantitative data "
            "(Khade, Lin & Patel, EDBT 2019)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def positive_int(value: str) -> int:
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return n

    def add_io(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "csv",
            help=(
                "input CSV file, or a chunked dataset directory "
                "(see 'repro dataset pack')"
            ),
        )
        p.add_argument(
            "--group",
            help=(
                "name of the group column (required for CSV input; a "
                "chunked dataset directory already knows its group)"
            ),
        )
        p.add_argument(
            "--groups",
            nargs=2,
            metavar=("G1", "G2"),
            help="restrict to two group labels",
        )
        p.add_argument(
            "--delimiter", default=",", help="CSV delimiter (default ,)"
        )

    def add_miner_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--delta", type=float, default=0.1,
                       help="minimum support difference (default 0.1)")
        p.add_argument("--alpha", type=float, default=0.05,
                       help="significance level (default 0.05)")
        p.add_argument("--k", type=int, default=100,
                       help="top-k patterns to keep (default 100)")
        p.add_argument("--depth", type=int, default=5,
                       help="max itemset size (default 5)")
        p.add_argument(
            "--measure",
            default="support_difference",
            choices=measures.available_measures(),
            help="interest measure to optimise",
        )
        p.add_argument(
            "--attributes",
            nargs="+",
            help="restrict the search to these attributes",
        )
        p.add_argument(
            "--backend",
            default="mask",
            choices=("mask", "bitmap"),
            help=(
                "support-counting backend: 'mask' (boolean masks) or "
                "'bitmap' (packed bit-vectors, faster on "
                "categorical-heavy data)"
            ),
        )
        p.add_argument(
            "--cache-size",
            type=int,
            default=None,
            dest="backend_cache_size",
            metavar="N",
            help=(
                "capacity of the counting backend's memo cache "
                "(bitmap context-coverage LRU, or the per-chunk counts "
                "LRU when mining a chunked dataset); requires "
                "--backend bitmap"
            ),
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=2,
            help=(
                "parallel dispatches a failed task gets before the "
                "serial fallback (default 2)"
            ),
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help=(
                "per-task wall-clock budget; a task running longer is "
                "abandoned and retried (default: no timeout)"
            ),
        )
        p.add_argument(
            "--retry-backoff",
            type=float,
            default=0.1,
            metavar="SECONDS",
            help=(
                "base of the exponential retry backoff "
                "(attempt n waits backoff * 2^(n-1) s; default 0.1)"
            ),
        )

    info = sub.add_parser("info", help="describe a dataset")
    add_io(info)

    mine = sub.add_parser("mine", help="mine contrast patterns")
    add_io(mine)
    add_miner_options(mine)
    mine.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes (>1 uses the level-parallel scheduler)",
    )
    mine.add_argument(
        "--all",
        action="store_true",
        dest="show_all",
        help="print the raw top-k instead of only the meaningful patterns",
    )
    mine.add_argument(
        "--top", type=int, default=20, help="rows to print (default 20)"
    )
    mine.add_argument(
        "--validate",
        type=float,
        metavar="FRACTION",
        help=(
            "hold out this fraction of rows, mine on the rest, and "
            "report only patterns that re-validate on the holdout"
        ),
    )
    mine.add_argument(
        "--briefing",
        action="store_true",
        help="print a plain-language briefing instead of the table",
    )
    mine.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the patterns as JSON (for pipelines/dashboards)",
    )
    mine.add_argument(
        "--explain-prunes",
        action="store_true",
        dest="explain_prunes",
        help=(
            "print the per-rule pruning report (checks, hits, wall time "
            "per pipeline rule)"
        ),
    )
    mine.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help=(
            "persist the mining state here after every completed search "
            "level, so an interrupted run can be continued with --resume"
        ),
    )
    mine.add_argument(
        "--resume",
        metavar="CHECKPOINT",
        help=(
            "continue an interrupted run from a checkpoint file or "
            "directory (deepest level wins); requires the same miner "
            "flags the original run used"
        ),
    )

    compare = sub.add_parser(
        "compare", help="compare algorithms (Table 4 protocol)"
    )
    add_io(compare)
    add_miner_options(compare)
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["sdad_np", "mvd", "entropy", "cortana"],
        choices=sorted(ALGORITHMS),
        help="algorithms to run (first is the WMW reference)",
    )

    def add_query_filters(p: argparse.ArgumentParser) -> None:
        p.add_argument("--min-diff", type=float,
                       help="minimum support difference")
        p.add_argument("--min-pr", type=float, help="minimum purity ratio")
        p.add_argument("--min-surprising", type=float,
                       help="minimum Surprising Measure")
        p.add_argument("--max-p", type=float, dest="max_p_value",
                       help="maximum significance p-value")
        p.add_argument("--max-level", type=int,
                       help="maximum pattern size (attributes)")
        p.add_argument("--pattern-attributes", nargs="+", metavar="ATTR",
                       help="only patterns using all of these attributes")
        p.add_argument("--dominant", metavar="GROUP",
                       help="only patterns dominated by this group")
        p.add_argument(
            "--sort",
            default="interest",
            choices=(
                "interest", "support_difference", "purity_ratio",
                "surprising", "p_value", "level",
            ),
            help="measure to sort by (default interest)",
        )
        p.add_argument("--asc", action="store_true",
                       help="sort ascending instead of descending")
        p.add_argument("--limit", type=int, help="print at most this many")

    store_p = sub.add_parser(
        "store", help="manage a durable pattern store"
    )
    store_sub = store_p.add_subparsers(dest="store_command", required=True)

    store_put = store_sub.add_parser(
        "put", help="mine a CSV and persist the run into a store"
    )
    add_io(store_put)
    add_miner_options(store_put)
    store_put.add_argument(
        "--store", required=True, metavar="DIR", help="store directory"
    )
    store_put.add_argument(
        "--tags", nargs="*", default=[], help="tags recorded with the run"
    )
    store_put.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the mining run",
    )

    store_ls = store_sub.add_parser("ls", help="list a store's runs")
    store_ls.add_argument("store", metavar="DIR", help="store directory")

    store_gc = store_sub.add_parser(
        "gc", help="delete run files the manifest no longer references"
    )
    store_gc.add_argument("store", metavar="DIR", help="store directory")

    query = sub.add_parser(
        "query", help="query patterns of a stored run"
    )
    query.add_argument("store", metavar="DIR", help="store directory")
    query.add_argument(
        "--run",
        default="latest",
        help="run id to query (default: the latest run)",
    )
    add_query_filters(query)
    query.add_argument(
        "--row",
        nargs="+",
        metavar="ATTR=VALUE",
        help=(
            "point lookup instead of a query: print the patterns "
            "covering this record"
        ),
    )
    query.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit results as JSON",
    )

    serve = sub.add_parser(
        "serve", help="serve a pattern store over HTTP"
    )
    serve.add_argument("store", metavar="DIR", help="store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--run",
        default="latest",
        help="run id to activate (default: the latest run)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="query responses kept in the LRU cache (default 256)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help=(
            "serving processes sharing the port via SO_REUSEPORT "
            "(default 1: single in-process server)"
        ),
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.25,
        help=(
            "seconds between store polls in multi-worker mode; new runs "
            "appearing in the store hot-swap automatically (default 0.25)"
        ),
    )

    dataset_p = sub.add_parser(
        "dataset",
        help="manage chunked on-disk datasets (out-of-core mining)",
    )
    ds_sub = dataset_p.add_subparsers(dest="dataset_command", required=True)

    ds_pack = ds_sub.add_parser(
        "pack", help="pack a CSV into a new chunked dataset directory"
    )
    add_io(ds_pack)
    ds_pack.add_argument(
        "--store", required=True, metavar="DIR",
        help="directory to create the chunked dataset in",
    )
    ds_pack.add_argument(
        "--chunk-size", type=positive_int, default=None, metavar="ROWS",
        help="rows per chunk (default 262144)",
    )

    ds_append = ds_sub.add_parser(
        "append",
        help="append a CSV's rows to an existing chunked dataset",
    )
    add_io(ds_append)
    ds_append.add_argument(
        "--store", required=True, metavar="DIR",
        help="existing chunked dataset directory",
    )
    ds_append.add_argument(
        "--chunk-size", type=positive_int, default=None, metavar="ROWS",
        help="rows per new chunk (default: one chunk for all rows)",
    )

    ds_info = ds_sub.add_parser(
        "info", help="describe a chunked dataset directory"
    )
    ds_info.add_argument("store", metavar="DIR", help="chunked dataset")
    ds_info.add_argument(
        "--verify",
        action="store_true",
        help="re-hash every chunk file against the manifest digests",
    )

    ds_verify = ds_sub.add_parser(
        "verify",
        help=(
            "re-hash every chunk against the manifest digests; exits 2 "
            "if any chunk is corrupt"
        ),
    )
    ds_verify.add_argument("store", metavar="DIR", help="chunked dataset")

    generate = sub.add_parser(
        "generate", help="write a built-in dataset to CSV"
    )
    generate.add_argument(
        "name",
        help=(
            "dataset name: a UCI stand-in (adult, spambase, ...), "
            "'manufacturing', or simulated_dataset_1..4"
        ),
    )
    generate.add_argument("out", help="output CSV path")
    generate.add_argument(
        "--scale", type=float, help="row-count scale for UCI stand-ins"
    )
    generate.add_argument("--seed", type=int, help="generator seed")
    return parser


def _load(args) -> "object":
    from pathlib import Path

    from .dataset.table import DatasetError

    if Path(args.csv).is_dir():
        # A chunked dataset directory: mine out of core through the lazy
        # view (columns materialise on demand; counting is chunk-aware).
        from .dataset.chunked import ChunkedDataset

        store = ChunkedDataset(args.csv)
        if args.group and args.group != store.group_name:
            raise DatasetError(
                f"chunked dataset {args.csv} groups rows by "
                f"{store.group_name!r}, not {args.group!r}"
            )
        dataset = store.view()
    else:
        if not args.group:
            raise DatasetError("--group is required for CSV input")
        dataset = read_csv(
            args.csv, group_column=args.group, delimiter=args.delimiter
        )
    if args.groups:
        dataset = dataset.select_groups(args.groups)
    return dataset


def _config(args) -> MinerConfig:
    from .resilience import ResiliencePolicy

    return MinerConfig(
        delta=args.delta,
        alpha=args.alpha,
        k=args.k,
        max_tree_depth=args.depth,
        interest_measure=args.measure,
        counting_backend=args.backend,
        backend_cache_size=args.backend_cache_size,
        resilience=ResiliencePolicy(
            max_retries=args.max_retries,
            task_timeout_s=args.task_timeout,
            backoff=args.retry_backoff,
        ),
    )


def _cmd_info(args) -> int:
    dataset = _load(args)
    print(dataset.describe())
    for attr in dataset.schema:
        if attr.is_categorical:
            print(
                f"  {attr.name}: categorical "
                f"({attr.cardinality} values)"
            )
        else:
            col = dataset.column(attr.name)
            print(
                f"  {attr.name}: continuous "
                f"[{col.min():g}, {col.max():g}]"
            )
    return 0


def _cmd_mine(args) -> int:
    from .resilience import CheckpointError

    dataset = _load(args)
    config = _config(args)

    if args.resume and args.validate is not None:
        print(
            "--resume continues the original run's exact state and "
            "cannot be combined with --validate",
            file=sys.stderr,
        )
        return 2

    holdout = None
    mine_on = dataset
    if args.validate is not None:
        from .dataset.sampling import train_holdout_split

        mine_on, holdout = train_holdout_split(dataset, args.validate)

    miner = ContrastSetMiner(config)
    try:
        if args.resume:
            result = miner.resume(
                args.resume,
                dataset=mine_on,
                n_jobs=args.jobs,
                checkpoint_dir=args.checkpoint_dir,
            )
        else:
            result = miner.mine(
                mine_on,
                attributes=args.attributes,
                n_jobs=args.jobs,
                checkpoint_dir=args.checkpoint_dir,
            )
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    if args.show_all:
        patterns = result.top(args.top)
        title = f"Top {len(patterns)} contrasts (raw)"
    else:
        patterns = result.meaningful()[: args.top]
        title = f"Meaningful contrasts (top {len(patterns)})"

    if holdout is not None:
        from .analysis.validation import validate_patterns

        validation = validate_patterns(
            patterns, holdout, delta=config.delta, alpha=config.alpha
        )
        patterns = validation.survivors()
        title += f" — {validation.formatted()}"

    if args.as_json:
        import json

        from .core.serialize import patterns_to_dicts

        print(json.dumps(patterns_to_dicts(patterns), indent=2))
        return 0
    if args.briefing:
        from .analysis.explain import briefing

        print(briefing(patterns, max_items=args.top, title=title))
    else:
        print(pattern_table(patterns, title=title))
    stats = result.stats
    line = (
        f"\n{len(result)} patterns; "
        f"{stats.partitions_evaluated} partitions evaluated, "
        f"{stats.spaces_pruned} pruned, {stats.elapsed_seconds:.2f}s "
        f"[{stats.counting_backend} backend, "
        f"{stats.count_calls} count calls"
    )
    if stats.cache_hits or stats.cache_misses:
        line += (
            f", cache {stats.cache_hits} hits / "
            f"{stats.cache_misses} misses"
        )
    line += "]"
    if result.n_workers > 1:
        line += f" ({result.n_workers} workers)"
    print(line)
    events = [
        (stats.tasks_retried, "task retries"),
        (stats.task_timeouts, "timeouts"),
        (stats.worker_crashes, "worker crashes"),
        (stats.serial_fallbacks, "serial fallbacks"),
        (stats.tasks_failed, "permanent task failures"),
        (stats.checkpoints_written, "checkpoints written"),
    ]
    fired = [f"{count} {label}" for count, label in events if count]
    if stats.resumed_from_level:
        fired.insert(0, f"resumed after level {stats.resumed_from_level}")
    if fired:
        print("resilience: " + ", ".join(fired))
    if args.explain_prunes:
        print()
        print(result.explain_prunes())
    return 0


def _cmd_compare(args) -> int:
    dataset = _load(args)
    comparison = compare_algorithms(
        dataset,
        dataset_name=args.csv,
        algorithms=tuple(args.algorithms),
        config=_config(args),
    )
    print(comparison_table([comparison], args.algorithms))
    print(f"\n(k = {comparison.k_used}; '*' = WMW-indistinguishable "
          f"from {args.algorithms[0]})")
    return 0


def _cmd_generate(args) -> int:
    from .dataset import synthetic, uci
    from .dataset.manufacturing import manufacturing

    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.name in uci.DATASET_REGISTRY:
        if args.scale is not None:
            kwargs["scale"] = args.scale
        dataset = uci.load(args.name, **kwargs)
    elif args.name == "manufacturing":
        dataset = manufacturing(**kwargs)
    elif hasattr(synthetic, args.name):
        dataset = getattr(synthetic, args.name)(**kwargs)
    else:
        known = sorted(uci.DATASET_REGISTRY) + [
            "manufacturing",
            "simulated_dataset_1",
            "simulated_dataset_2",
            "simulated_dataset_3",
            "simulated_dataset_4",
            "figure2_example",
        ]
        print(
            f"unknown dataset {args.name!r}; known: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2
    write_csv(dataset, args.out)
    print(f"wrote {dataset.n_rows} rows to {args.out}")
    return 0


def _align_groups(dataset, store):
    """Re-code a dataset's group column onto a store's label order.

    Append sources routinely arrive with labels in a different discovery
    order (or with only a subset of the groups present); the rows are
    still appendable as long as every label is one the store knows.
    """
    if tuple(dataset.group_labels) == store.group_labels:
        return dataset
    import numpy as np

    from .dataset.table import Dataset, DatasetError

    recode = []
    for label in dataset.group_labels:
        if label not in store.group_labels:
            raise DatasetError(
                f"group {label!r} is not among the store's groups "
                f"{list(store.group_labels)}"
            )
        recode.append(store.group_labels.index(label))
    table = np.asarray(recode, dtype=np.int64)
    return Dataset(
        dataset.schema,
        {name: dataset.column(name) for name in dataset.schema.names},
        table[np.asarray(dataset.group_codes)],
        store.group_labels,
        store.group_name,
    )


def _cmd_dataset(args) -> int:
    from .dataset.chunked import DEFAULT_CHUNK_SIZE, ChunkedDataset
    from .dataset.table import DatasetError

    if args.dataset_command == "info":
        store = ChunkedDataset(args.store)
        print(store.describe())
        if args.verify:
            store.verify()
            print(f"verified {store.n_chunks} chunks: all digests match")
        for meta in store.chunks:
            print(
                f"  {meta.chunk_id}  {meta.n_rows:8d} rows  "
                f"digest {meta.digest[:12]}"
            )
        return 0

    if args.dataset_command == "verify":
        store = ChunkedDataset(args.store)
        bad = 0
        for meta, error in store.verify_chunks():
            status = "ok" if error is None else f"CORRUPT  {error}"
            print(
                f"{meta.chunk_id}  {meta.n_rows:8d} rows  "
                f"digest {meta.digest[:12]}  {status}"
            )
            if error is not None:
                bad += 1
        if bad:
            print(
                f"error: {bad} of {store.n_chunks} chunks corrupt",
                file=sys.stderr,
            )
            return 2
        print(f"verified {store.n_chunks} chunks: all digests match")
        return 0

    if args.dataset_command == "pack":
        if not args.group:
            raise DatasetError("--group is required to pack a CSV")
        dataset = read_csv(
            args.csv, group_column=args.group, delimiter=args.delimiter
        )
        if args.groups:
            dataset = dataset.select_groups(args.groups)
        store = ChunkedDataset.pack(
            args.store,
            dataset,
            chunk_size=args.chunk_size or DEFAULT_CHUNK_SIZE,
        )
        print(
            f"packed {dataset.n_rows} rows into {store.n_chunks} chunks "
            f"at {args.store}"
        )
        return 0

    if args.dataset_command == "append":
        store = ChunkedDataset(args.store)
        dataset = read_csv(
            args.csv,
            group_column=args.group or store.group_name,
            delimiter=args.delimiter,
            schema=store.schema,
        )
        if args.groups:
            dataset = dataset.select_groups(args.groups)
        dataset = _align_groups(dataset, store)
        new_ids = store.append(dataset, chunk_size=args.chunk_size)
        print(
            f"appended {dataset.n_rows} rows as {len(new_ids)} new "
            f"chunks ({store.n_rows} rows total)"
        )
        return 0
    raise ValueError(f"unknown dataset command {args.dataset_command!r}")


def _query_from_args(args):
    from .serve.query import Query

    return Query(
        attributes=tuple(args.pattern_attributes or ()),
        group=args.dominant,
        min_diff=args.min_diff,
        min_pr=args.min_pr,
        min_surprising=args.min_surprising,
        max_p_value=args.max_p_value,
        max_level=args.max_level,
        sort_by=args.sort,
        descending=not args.asc,
        limit=args.limit,
    )


def _open_run(store_dir: str, run_ref: str):
    from .serve.store import PatternStore, StoreError

    store = PatternStore(store_dir, create=False)
    run_id = store.latest() if run_ref == "latest" else run_ref
    if run_id is None:
        raise StoreError(f"store {store_dir} holds no runs yet")
    return store, store.get(run_id)


def _cmd_store(args) -> int:
    from .serve.store import PatternStore

    if args.store_command == "put":
        dataset = _load(args)
        store = PatternStore(args.store)
        miner = ContrastSetMiner(_config(args))
        result = miner.mine(
            dataset,
            n_jobs=args.jobs,
            attributes=args.attributes,
            store=store,
            store_tags=args.tags,
        )
        print(
            f"stored run {result.run_id}: {len(result)} patterns from "
            f"{dataset.n_rows} rows"
        )
        return 0
    if args.store_command == "ls":
        store = PatternStore(args.store, create=False)
        runs = store.list_runs()
        if not runs:
            print("(store is empty)")
            return 0
        for info in runs:
            tags = f" [{', '.join(info.tags)}]" if info.tags else ""
            print(
                f"{info.run_id}  {info.created}  "
                f"{info.n_patterns:5d} patterns  "
                f"{info.n_rows:7d} rows  "
                f"groups: {', '.join(info.group_labels)}{tags}"
            )
        return 0
    if args.store_command == "gc":
        store = PatternStore(args.store, create=False)
        removed = store.gc()
        print(f"removed {len(removed)} unreferenced entries")
        for name in removed:
            print(f"  {name}")
        return 0
    raise ValueError(f"unknown store command {args.store_command!r}")


def _cmd_query(args) -> int:
    import json as _json

    from .serve.index import PatternIndex
    from .serve.query import apply_query, encode_entry

    _, run = _open_run(args.store, args.run)
    index = PatternIndex(run.patterns, run.interests)

    if args.row:
        row = {}
        for part in args.row:
            name, sep, raw = part.partition("=")
            if not sep or not name:
                raise ValueError(
                    f"--row entries must look like ATTR=VALUE, got {part!r}"
                )
            try:
                row[name] = float(raw)
            except ValueError:
                row[name] = raw
        entries = index.match(row)
        title = f"Patterns covering the record ({run.run_id})"
    else:
        entries = apply_query(index, _query_from_args(args))
        title = f"Query results ({run.run_id})"

    if args.as_json:
        print(_json.dumps([encode_entry(e) for e in entries], indent=2))
        return 0
    print(pattern_table([e.pattern for e in entries], title=title))
    print(f"\n{len(entries)} of {len(run.patterns)} patterns selected")
    return 0


def _cmd_serve(args) -> int:
    from .serve.server import PatternServer, ServeConfig
    from .serve.store import PatternStore, StoreError

    store = PatternStore(args.store, create=False)
    server = PatternServer(
        store,
        ServeConfig(
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            workers=args.workers,
            store_poll_interval=args.poll_interval,
        ),
    )
    run_id = store.latest() if args.run == "latest" else args.run
    if run_id is None:
        raise StoreError(f"store {args.store} holds no runs yet")
    if args.workers <= 1:
        # Multi-worker pools publish inside each worker (they follow the
        # store themselves); pre-publishing here only applies in-process.
        server.publish_run(run_id)
    workers = f", {args.workers} workers" if args.workers > 1 else ""
    print(
        f"serving store {args.store} (active run {run_id}{workers}) "
        f"on http://{args.host}:{args.port} — Ctrl-C to stop"
    )
    server.serve_forever()
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "mine": _cmd_mine,
    "compare": _cmd_compare,
    "generate": _cmd_generate,
    "dataset": _cmd_dataset,
    "store": _cmd_store,
    "query": _cmd_query,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Parse and run; every failure exits non-zero with a stderr line.

    Anticipated errors (missing files, malformed CSVs, store/checkpoint
    problems, bad values) exit 2 with a one-line message; only a genuine
    bug escapes as a traceback.
    """
    args = build_parser().parse_args(argv)
    from .core.serialize import SerializationError
    from .dataset.table import DatasetError
    from .resilience import CheckpointError
    from .serve.store import StoreError

    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        return 130
    except (
        DatasetError,
        StoreError,
        CheckpointError,
        SerializationError,
        OSError,
        ValueError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
