"""Fault-tolerant task execution over a process pool.

:class:`ResilientExecutor` is the dispatch loop behind
``ContrastSetMiner.mine(..., n_jobs=N)``: it submits task envelopes to a
``ProcessPoolExecutor``, watches per-task deadlines, classifies failures
(worker crash / raised exception / timeout / corrupt result), retries
with exponential backoff, rebuilds a broken pool, and — once a task has
exhausted its parallel retries — re-executes it serially in the parent
process so a run always completes.

The executor is generic over the work it runs: the scheduler supplies a
picklable module-level ``worker_fn`` (which also applies the fault
injection plan, see :mod:`repro.resilience.inject`), a parent-process
``serial_fn`` fallback, and a ``validate`` predicate that rejects
corrupted results.  Results are returned **in task order**, whatever
order attempts completed in, so retries and crashes never change how the
driver folds outcomes into the shared top-k and prune state.
"""

from __future__ import annotations

import enum
import heapq
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.instrumentation import MiningStats
from .policy import ResiliencePolicy

__all__ = [
    "FailureKind",
    "TaskFailure",
    "TaskEnvelope",
    "ResilientExecutor",
]


class FailureKind(enum.Enum):
    """Classification of a failed task attempt."""

    CRASH = "worker crash (broken process pool)"
    TIMEOUT = "task exceeded its wall-clock budget"
    ERROR = "task raised an exception"
    CORRUPT = "task returned a corrupt result"


@dataclass(frozen=True)
class TaskFailure:
    """One failed attempt, as recorded by the executor."""

    seq: int
    kind: FailureKind
    attempt: int
    message: str = ""


@dataclass(frozen=True)
class TaskEnvelope:
    """What actually travels to a worker: the task plus its identity.

    ``seq`` is the global task sequence number (stable across retries,
    used by the fault-injection plan); ``attempt`` is the 0-based dispatch
    count, so injected faults can be configured to fire only on the first
    N attempts.
    """

    seq: int
    attempt: int
    payload: Any


class ResilientExecutor:
    """Retry/timeout/fallback dispatch over a rebuildable process pool.

    Parameters
    ----------
    pool_factory:
        Zero-argument callable building a fresh ``ProcessPoolExecutor``
        (with initializer/initargs); invoked lazily and again after every
        pool-breaking worker crash.
    worker_fn:
        Picklable function executed in workers: ``worker_fn(envelope) ->
        result``.
    serial_fn:
        Parent-process fallback: ``serial_fn(payload) -> result``.  Runs
        without fault injection.
    policy:
        The :class:`~repro.resilience.policy.ResiliencePolicy` in force.
    stats:
        Driver-side :class:`MiningStats`; retry/timeout/crash/fallback
        counters accrue here.
    validate:
        Optional predicate on worker results; a falsy verdict classifies
        the attempt as ``CORRUPT`` and schedules a retry.
    """

    def __init__(
        self,
        pool_factory: Callable[[], Any],
        worker_fn: Callable[[TaskEnvelope], Any],
        serial_fn: Callable[[Any], Any],
        policy: ResiliencePolicy | None = None,
        stats: MiningStats | None = None,
        validate: Callable[[Any], bool] | None = None,
    ) -> None:
        self._pool_factory = pool_factory
        self._worker_fn = worker_fn
        self._serial_fn = serial_fn
        self._policy = policy or ResiliencePolicy()
        self._stats = stats if stats is not None else MiningStats()
        self._validate = validate
        self._pool = None
        self.failures: list[TaskFailure] = []
        """Every failed attempt observed, in detection order."""

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_factory()
        return self._pool

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._stats.pool_restarts += 1
        self._pool = self._pool_factory()

    def shutdown(self) -> None:
        """Release the pool (hung injected tasks are abandoned, not joined)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ResilientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def run(self, payloads: Sequence[Any], seq_base: int = 0) -> list[Any]:
        """Execute every payload, returning results in task order.

        A task that failed every parallel attempt *and* its serial
        fallback (or has fallback disabled) yields ``None`` in its slot;
        the permanent failure is recorded in :attr:`failures` and in the
        stats counters.
        """
        n = len(payloads)
        results: list[Any] = [None] * n
        completed = [False] * n
        attempts = [0] * n  # dispatches made so far, per task
        pending: dict[Future, tuple[int, float | None]] = {}
        retry_heap: list[tuple[float, int]] = []  # (ready_time, idx)
        fallback: list[int] = []
        timeout_s = self._policy.task_timeout_s

        def submit(idx: int) -> None:
            envelope = TaskEnvelope(
                seq_base + idx, attempts[idx], payloads[idx]
            )
            attempts[idx] += 1
            pool = self._ensure_pool()
            try:
                future = pool.submit(self._worker_fn, envelope)
            except (BrokenExecutor, RuntimeError):
                # Pool died between our bookkeeping and this submit.
                self._rebuild_pool()
                future = self._pool.submit(self._worker_fn, envelope)
            deadline = (
                None if timeout_s is None else time.monotonic() + timeout_s
            )
            pending[future] = (idx, deadline)

        def record_failure(
            idx: int, kind: FailureKind, message: str = ""
        ) -> None:
            self.failures.append(
                TaskFailure(seq_base + idx, kind, attempts[idx] - 1, message)
            )
            if kind is FailureKind.TIMEOUT:
                self._stats.task_timeouts += 1
            elif kind is FailureKind.ERROR:
                self._stats.task_errors += 1
            elif kind is FailureKind.CORRUPT:
                self._stats.corrupt_results += 1
            if attempts[idx] <= self._policy.max_retries:
                self._stats.tasks_retried += 1
                ready = time.monotonic() + self._policy.retry_delay(
                    attempts[idx]
                )
                heapq.heappush(retry_heap, (ready, idx))
            else:
                fallback.append(idx)

        for idx in range(n):
            submit(idx)

        while pending or retry_heap:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, idx = heapq.heappop(retry_heap)
                submit(idx)
            if not pending:
                if retry_heap:
                    time.sleep(max(0.0, retry_heap[0][0] - time.monotonic()))
                continue

            # Wake up for the earliest of: a completion, a task deadline,
            # a retry becoming ready.
            targets = [
                deadline
                for _, deadline in pending.values()
                if deadline is not None
            ]
            if retry_heap:
                targets.append(retry_heap[0][0])
            wait_for = (
                None
                if not targets
                else max(0.0, min(targets) - time.monotonic())
            )
            done, _ = wait(
                list(pending), timeout=wait_for, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            for future in done:
                idx, _ = pending.pop(future)
                if completed[idx]:
                    continue  # a timed-out attempt completing late
                try:
                    result = future.result()
                except BrokenExecutor as exc:
                    pool_broken = True
                    record_failure(idx, FailureKind.CRASH, str(exc))
                    continue
                except Exception as exc:
                    record_failure(
                        idx,
                        FailureKind.ERROR,
                        f"{type(exc).__name__}: {exc}",
                    )
                    continue
                if self._validate is not None and not self._validate(result):
                    record_failure(
                        idx, FailureKind.CORRUPT, "result failed validation"
                    )
                    continue
                results[idx] = result
                completed[idx] = True

            if pool_broken:
                # The whole pool dies with a crashed worker: classify every
                # in-flight task as a crash victim and start a fresh pool.
                self._stats.worker_crashes += 1
                for future, (idx, _) in list(pending.items()):
                    del pending[future]
                    if not completed[idx]:
                        record_failure(
                            idx,
                            FailureKind.CRASH,
                            "pool broken by a crashed worker",
                        )
                self._rebuild_pool()
                continue

            # Expire deadlines of tasks that are actually running; queued
            # tasks get their clock restarted so a hung sibling does not
            # time them out while they wait for a worker.
            now = time.monotonic()
            for future, (idx, deadline) in list(pending.items()):
                if deadline is None or future.done():
                    continue
                if deadline > now:
                    continue
                if not future.running():
                    if future.cancel():
                        del pending[future]
                        attempts[idx] -= 1  # never dispatched; not a retry
                        submit(idx)
                    else:
                        pending[future] = (idx, now + timeout_s)
                    continue
                del pending[future]
                record_failure(
                    idx,
                    FailureKind.TIMEOUT,
                    f"exceeded {timeout_s}s task budget",
                )

        for idx in sorted(fallback):
            if completed[idx]:
                continue
            if not self._policy.serial_fallback:
                self._stats.tasks_failed += 1
                continue
            self._stats.serial_fallbacks += 1
            try:
                results[idx] = self._serial_fn(payloads[idx])
                completed[idx] = True
            except Exception as exc:
                self.failures.append(
                    TaskFailure(
                        seq_base + idx,
                        FailureKind.ERROR,
                        attempts[idx],
                        f"serial fallback failed: "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                self._stats.tasks_failed += 1
        return results
