"""Retry/timeout/fallback policy for fault-tolerant parallel mining.

The policy is carried by :class:`~repro.core.config.MinerConfig` (the
``resilience`` field) so a single frozen config object still describes a
whole run — including how it behaves when workers crash or hang.  It is
deliberately free of any ``repro`` imports: the config module depends on
it, not the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResiliencePolicy"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the parallel scheduler reacts to failing tasks.

    Attributes
    ----------
    max_retries:
        How many times a failed task (worker crash, timeout, raised
        exception, corrupt result) is re-dispatched to the pool before
        the scheduler gives up on parallel execution of that task.
    task_timeout_s:
        Per-task wall-clock budget, measured from the moment the task
        starts running in a worker.  ``None`` (the default) disables
        timeouts — a hung worker then blocks the level, exactly like the
        pre-resilience scheduler.
    backoff:
        Base of the exponential retry backoff: attempt ``n`` (1-based
        retry count) waits ``backoff * 2**(n - 1)`` seconds before being
        re-submitted.
    serial_fallback:
        After ``max_retries`` parallel attempts, re-execute the task
        serially in the parent process so a run always completes.  When
        disabled an exhausted task is recorded as failed and its
        candidates are skipped.
    """

    max_retries: int = 2
    task_timeout_s: float | None = None
    backoff: float = 0.1
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive or None")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")

    def retry_delay(self, attempt: int) -> float:
        """Backoff before re-submitting the ``attempt``-th retry (1-based)."""
        if attempt < 1:
            raise ValueError("retry attempts are 1-based")
        return self.backoff * (2 ** (attempt - 1))
