"""Level-boundary checkpoints for long mining runs.

The level-wise search has a natural persistence point: between levels the
entire mining state is a handful of driver-side structures (the top-k
list, the viable-itemset index with its patterns, the pure-itemset
registry, the alpha ladder, the accumulated stats and prune table).
:func:`save_checkpoint` snapshots exactly that state after each completed
level; :func:`load_checkpoint` restores it so
``ContrastSetMiner.resume(path)`` reproduces the uninterrupted run's
patterns *and* prune accounting bit-for-bit.

Checkpoints are versioned pickles (the state contains live ``Itemset`` /
``TopKList`` / ``PruneTable`` objects and the dataset's numpy columns —
the same objects already shipped to pool workers, so pickle is the
round-trip-exact format; a JSON envelope would have to re-invent their
encodings).  Every anomaly a loader can meet — truncated file, foreign
pickle, unknown schema version, a checkpoint written under a different
:class:`MinerConfig` or against different data — raises a
:class:`CheckpointError` with a clear message, never a silent wrong
result.  Only load checkpoints you (or your pipeline) wrote: like every
pickle, the format is not safe against adversarial files.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imported lazily to keep config -> resilience acyclic
    from ..core.config import MinerConfig
    from ..core.contrast import ContrastPattern
    from ..core.instrumentation import MiningStats
    from ..core.items import Itemset
    from ..core.pruning import PruneTable
    from ..core.stats import AlphaLadder
    from ..core.topk import TopKList
    from ..dataset.table import Dataset

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "MiningCheckpoint",
    "dataset_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
    "checkpoint_path",
    "ensure_compatible",
]

CHECKPOINT_VERSION = 1
_MAGIC = "repro-mining-checkpoint"
_FILE_PATTERN = "checkpoint-level-*.pkl"


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded or does not match this run."""


def dataset_fingerprint(dataset: "Dataset") -> dict[str, Any]:
    """Identity of a dataset for resume-compatibility checks.

    Shape alone (rows, schema, group sizes) is too coarse — two runs of a
    generator easily collide — so the fingerprint also digests the actual
    column values and group codes.
    """
    import hashlib

    import numpy as np

    digest = hashlib.sha256()
    for name in dataset.schema.names:
        digest.update(np.ascontiguousarray(dataset.column(name)).tobytes())
    digest.update(np.ascontiguousarray(dataset.group_codes).tobytes())
    return {
        "n_rows": int(dataset.n_rows),
        "schema": list(dataset.schema.names),
        "group_labels": list(dataset.group_labels),
        "group_sizes": [int(s) for s in dataset.group_sizes],
        "content": digest.hexdigest(),
    }


@dataclass
class MiningCheckpoint:
    """Complete between-levels state of a level-wise mining run."""

    config: "MinerConfig"
    dataset: "Dataset"
    completed_level: int
    attributes: tuple[str, ...] | None
    topk: "TopKList"
    viable_by_prefix: dict[tuple[str, ...], list["Itemset"]]
    previous_patterns: dict["Itemset", "ContrastPattern"]
    known_pure: list["Itemset"]
    ladder: "AlphaLadder"
    stats: "MiningStats"
    prune_table: "PruneTable"
    fingerprint: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = dataset_fingerprint(self.dataset)


def checkpoint_path(directory: str | os.PathLike, level: int) -> Path:
    """Canonical file name of the checkpoint for a completed level."""
    return Path(directory) / f"checkpoint-level-{level:02d}.pkl"


def save_checkpoint(
    directory: str | os.PathLike, state: MiningCheckpoint
) -> Path:
    """Atomically write a level-boundary checkpoint; returns its path.

    The file appears under its final name only after a complete write
    (temp file + ``os.replace``), so a run killed mid-checkpoint leaves
    the previous level's file intact and never a half-written one under
    a loadable name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = checkpoint_path(directory, state.completed_level)
    payload = {
        "magic": _MAGIC,
        "version": CHECKPOINT_VERSION,
        "state": state,
    }
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=".checkpoint-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def latest_checkpoint(directory: str | os.PathLike) -> Path | None:
    """The deepest-level checkpoint file in a directory, if any."""
    candidates = sorted(Path(directory).glob(_FILE_PATTERN))
    return candidates[-1] if candidates else None


def load_checkpoint(path: str | os.PathLike) -> MiningCheckpoint:
    """Load a checkpoint file (or the latest one in a directory).

    Raises :class:`CheckpointError` for anything that is not a complete,
    current-version repro checkpoint.
    """
    path = Path(path)
    if path.is_dir():
        found = latest_checkpoint(path)
        if found is None:
            raise CheckpointError(
                f"no {_FILE_PATTERN!r} files in directory {path}"
            )
        path = found
    if not path.exists():
        raise CheckpointError(f"checkpoint file not found: {path}")
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except Exception as exc:
        raise CheckpointError(
            f"unreadable checkpoint {path} (truncated or not a pickle): "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise CheckpointError(
            f"{path} is not a repro mining checkpoint"
        )
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    state = payload.get("state")
    if not isinstance(state, MiningCheckpoint):
        raise CheckpointError(
            f"checkpoint {path} payload is malformed "
            f"(expected MiningCheckpoint, got {type(state).__name__})"
        )
    return state


def ensure_compatible(
    state: MiningCheckpoint,
    config: "MinerConfig | None" = None,
    dataset: "Dataset | None" = None,
) -> None:
    """Refuse to resume under a different config or against other data."""
    if config is not None and config != state.config:
        raise CheckpointError(
            "checkpoint was written under a different MinerConfig; "
            "resume with the original configuration "
            f"(checkpoint: {state.config!r})"
        )
    if dataset is not None:
        fingerprint = dataset_fingerprint(dataset)
        if fingerprint != state.fingerprint:
            raise CheckpointError(
                "checkpoint was written against a different dataset "
                f"(checkpoint fingerprint {state.fingerprint}, "
                f"got {fingerprint})"
            )
