"""Deterministic fault injection for the parallel scheduler.

Every failure path of the resilience layer is drivable from a test:
a :class:`FaultPlan` maps global task sequence numbers to a
:class:`FaultSpec`, the plan is shipped to every worker through the pool
initializer, and the worker consults it right before executing a task.
Because the plan is keyed on ``(task sequence, attempt)`` the injected
behaviour is fully deterministic — the same plan against the same dataset
produces the same crashes, hangs, and corrupted results on every run,
which is what lets the property suite assert byte-identical mining
output across fault scenarios.

Supported fault kinds:

``KILL``
    ``os._exit`` the worker process mid-task — the driver sees a
    ``BrokenProcessPool`` (the whole pool dies with the worker).
``HANG``
    Sleep ``hang_s`` seconds before completing, tripping the driver's
    per-task timeout (the worker stays alive and returns a result the
    driver has already abandoned).
``ERROR``
    Raise :class:`InjectedFault` — a "poison pill" task that fails the
    same way on every attempt it is configured to fire.
``CORRUPT``
    Execute the task normally but replace the returned outcome with a
    sentinel the driver's result validation rejects.

Downstream test authors: build a plan with the ``kill_nth`` / ``hang_nth``
/ ``corrupt_nth`` / ``error_nth`` helpers (or combine specs in the
constructor) and pass it to ``ContrastSetMiner.mine(..., fault_plan=plan)``.
"""

from __future__ import annotations

import enum
import math
import os
import time
from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "CORRUPT_SENTINEL",
    "apply_fault",
]


class InjectedFault(RuntimeError):
    """Raised by an ``ERROR`` fault — a deterministic poison-pill task."""


class FaultKind(enum.Enum):
    """What an injected fault does to the task it fires on."""

    KILL = "kill worker process"
    HANG = "hang past the task timeout"
    ERROR = "raise inside the task"
    CORRUPT = "corrupt the task result"


CORRUPT_SENTINEL = "<corrupt-task-result>"
"""What a ``CORRUPT`` fault returns instead of the real task outcome."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to do, and on how many attempts to do it.

    ``times`` is the number of *attempts* the fault fires on: ``1`` fails
    only the first dispatch (the retry then succeeds), ``math.inf`` fails
    every parallel attempt (forcing the serial fallback, which never
    consults the plan).
    """

    kind: FaultKind
    times: float = 1
    hang_s: float = 0.5

    def __post_init__(self) -> None:
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")

    def fires_on(self, attempt: int) -> bool:
        """Whether the fault fires on a 0-based attempt number."""
        return attempt < self.times


class FaultPlan:
    """Deterministic mapping of global task sequence numbers to faults.

    Task sequence numbers are assigned by the scheduler in submission
    order across levels (task 0 is the first task of level 1), so a plan
    written against a known dataset/config pair addresses exact tasks.
    """

    def __init__(self, faults: Mapping[int, FaultSpec] | None = None) -> None:
        self._faults: dict[int, FaultSpec] = dict(faults or {})
        for seq, spec in self._faults.items():
            if seq < 0:
                raise ValueError("task sequence numbers must be >= 0")
            if not isinstance(spec, FaultSpec):
                raise TypeError("fault plan values must be FaultSpec")

    @classmethod
    def kill_nth(cls, n: int, times: float = 1) -> "FaultPlan":
        """Kill the worker running the ``n``-th task (0-based)."""
        return cls({n: FaultSpec(FaultKind.KILL, times=times)})

    @classmethod
    def hang_nth(
        cls, n: int, hang_s: float = 0.5, times: float = 1
    ) -> "FaultPlan":
        """Hang the ``n``-th task for ``hang_s`` seconds."""
        return cls({n: FaultSpec(FaultKind.HANG, times=times, hang_s=hang_s)})

    @classmethod
    def error_nth(cls, n: int, times: float = 1) -> "FaultPlan":
        """Raise :class:`InjectedFault` inside the ``n``-th task."""
        return cls({n: FaultSpec(FaultKind.ERROR, times=times)})

    @classmethod
    def corrupt_nth(cls, n: int, times: float = 1) -> "FaultPlan":
        """Corrupt the result of the ``n``-th task."""
        return cls({n: FaultSpec(FaultKind.CORRUPT, times=times)})

    @classmethod
    def poison_nth(cls, n: int) -> "FaultPlan":
        """A task that fails every parallel attempt (serial fallback path)."""
        return cls({n: FaultSpec(FaultKind.ERROR, times=math.inf)})

    def merged_with(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans (``other`` wins on colliding task numbers)."""
        merged = dict(self._faults)
        merged.update(other._faults)
        return FaultPlan(merged)

    def spec_for(self, seq: int, attempt: int) -> FaultSpec | None:
        """The fault to apply for this (task, attempt), if any."""
        spec = self._faults.get(seq)
        if spec is not None and spec.fires_on(attempt):
            return spec
        return None

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(
            f"{seq}: {spec.kind.name}x{spec.times}"
            for seq, spec in sorted(self._faults.items())
        )
        return f"FaultPlan({{{body}}})"


def apply_fault(spec: FaultSpec, seq: int, attempt: int) -> bool:
    """Execute a fault inside a worker.

    Returns True when the caller should corrupt its result (``CORRUPT``);
    ``KILL`` never returns, ``ERROR`` raises, ``HANG`` returns after
    sleeping.
    """
    if spec.kind is FaultKind.KILL:
        os._exit(17)
    if spec.kind is FaultKind.HANG:
        time.sleep(spec.hang_s)
        return False
    if spec.kind is FaultKind.ERROR:
        raise InjectedFault(
            f"injected fault: task {seq} poisoned on attempt {attempt}"
        )
    if spec.kind is FaultKind.CORRUPT:
        return True
    raise ValueError(f"unknown fault kind: {spec.kind!r}")  # pragma: no cover
