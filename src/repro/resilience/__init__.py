"""Fault tolerance for parallel mining (retry / timeout / fallback,
checkpoint / resume, deterministic fault injection).

The ROADMAP's always-on deployments cannot afford a run that dies with
its first crashed worker or a level-wise search that starts over after an
interruption.  This package gives the scheduler three independent
guarantees:

* **every task completes** — failed dispatches are classified
  (:class:`~repro.resilience.executor.FailureKind`), retried with
  exponential backoff under :class:`ResiliencePolicy`, and finally
  re-executed serially in the parent process;
* **every level persists** — :mod:`~repro.resilience.checkpoint`
  snapshots the between-levels state so ``ContrastSetMiner.resume``
  continues exactly where a killed run stopped;
* **every failure path is testable** — :class:`FaultPlan` injects
  deterministic worker crashes, hangs, poison-pill errors, and corrupt
  results, which the property suite uses to prove that none of this
  machinery ever changes mined patterns.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    MiningCheckpoint,
    dataset_fingerprint,
    ensure_compatible,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .executor import (
    FailureKind,
    ResilientExecutor,
    TaskEnvelope,
    TaskFailure,
)
from .inject import (
    CORRUPT_SENTINEL,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    apply_fault,
)
from .policy import ResiliencePolicy

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "MiningCheckpoint",
    "dataset_fingerprint",
    "ensure_compatible",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "FailureKind",
    "ResilientExecutor",
    "TaskEnvelope",
    "TaskFailure",
    "CORRUPT_SENTINEL",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "apply_fault",
    "ResiliencePolicy",
]
