"""Level-parallel mining (paper Section 6, scaling discussion).

The paper's strategy for data that exceeds one machine: *"find contrast
patterns at each level of the tree in parallel and then use those results
to prune the next level of the tree"*.  Each attribute combination at a
level is an independent task (SDAD-CS calls share nothing but the live
top-k threshold), so a level is a simple parallel map; between levels the
workers' results are folded into the shared top-k list and pure-itemset
set, restoring most of the cross-subtree pruning.

This module implements that strategy with ``multiprocessing`` on one
machine — the paper's cluster stands in for our process pool (DESIGN.md
substitution #4).  Some pruning is lost across subtrees within a level
(the paper notes the same), so the parallel run can evaluate slightly more
partitions than the serial one while producing the same contrasts.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..core import measures
from ..core.config import MinerConfig
from ..core.contrast import ContrastPattern
from ..core.instrumentation import MiningStats, Stopwatch
from ..core.items import CategoricalItem, Itemset
from ..core.pruning import is_pure_space
from ..core.sdad import sdad_cs
from ..core.topk import TopKList
from ..dataset.table import Dataset

__all__ = ["ParallelMiningResult", "mine_parallel", "mine_level_tasks"]

# Worker-global dataset: sent once per worker via the initializer instead
# of pickling the dataset into every task.
_WORKER_DATASET: Dataset | None = None
_WORKER_CONFIG: MinerConfig | None = None


def _init_worker(dataset: Dataset, config: MinerConfig) -> None:
    global _WORKER_DATASET, _WORKER_CONFIG
    _WORKER_DATASET = dataset
    _WORKER_CONFIG = config


@dataclass
class _LevelTask:
    """One attribute combination to mine at the current level."""

    categorical: tuple[str, ...]
    continuous: tuple[str, ...]
    contexts: tuple[Itemset, ...]  # viable categorical contexts
    min_interest: float
    known_pure: tuple[Itemset, ...]


@dataclass
class _TaskOutcome:
    patterns: list[ContrastPattern] = field(default_factory=list)
    pure_itemsets: list[Itemset] = field(default_factory=list)
    viable_contexts: list[Itemset] = field(default_factory=list)
    partitions_evaluated: int = 0


def _run_task(task: _LevelTask) -> _TaskOutcome:
    """Worker body: mine one attribute combination."""
    dataset, config = _WORKER_DATASET, _WORKER_CONFIG
    assert dataset is not None and config is not None
    outcome = _TaskOutcome()
    stats = MiningStats()
    measure = measures.get(config.interest_measure)

    if task.continuous:
        for context in task.contexts:
            result = sdad_cs(
                dataset,
                context,
                task.continuous,
                config,
                min_interest=task.min_interest,
                stats=stats,
                known_pure=task.known_pure,
                base_level=len(context),
            )
            outcome.patterns.extend(result.patterns)
            outcome.pure_itemsets.extend(result.pure_itemsets)
    else:
        # categorical-only combination: evaluate value extensions of the
        # viable contexts over the final attribute
        from ..core.contrast import evaluate_itemset
        from ..core.pruning import (
            expected_count_prunes,
            minimum_deviation_prunes,
        )

        level = len(task.categorical)
        alpha = config.alpha / (2**level)
        last = task.categorical[-1]
        attr = dataset.attribute(last)
        for context in task.contexts:
            for value in attr.categories:
                itemset = context.with_item(CategoricalItem(last, value))
                stats.partitions_evaluated += 1
                pattern = evaluate_itemset(itemset, dataset, level)
                if minimum_deviation_prunes(
                    pattern.counts, pattern.group_sizes, config.delta
                ):
                    continue
                if expected_count_prunes(
                    pattern.counts,
                    pattern.group_sizes,
                    config.min_expected_count,
                ):
                    continue
                outcome.viable_contexts.append(itemset)
                if pattern.is_contrast(config.delta, alpha):
                    outcome.patterns.append(pattern)
                    if is_pure_space(pattern.counts):
                        outcome.pure_itemsets.append(itemset)
    outcome.partitions_evaluated = stats.partitions_evaluated
    return outcome


@dataclass
class ParallelMiningResult:
    patterns: list[ContrastPattern]
    stats: MiningStats
    n_workers: int

    def top(self, n: int | None = None) -> list[ContrastPattern]:
        return self.patterns if n is None else self.patterns[:n]


def mine_level_tasks(
    dataset: Dataset,
    level: int,
    viable_by_prefix: dict[tuple[str, ...], list[Itemset]],
    min_interest: float,
    known_pure: Sequence[Itemset],
) -> list[_LevelTask]:
    """Build the independent tasks for one level of the search tree."""
    names = dataset.schema.names
    tasks: list[_LevelTask] = []
    for combo in itertools.combinations(names, level):
        categorical = tuple(
            a for a in combo if dataset.attribute(a).is_categorical
        )
        continuous = tuple(
            a for a in combo if dataset.attribute(a).is_continuous
        )
        if continuous:
            if categorical:
                contexts = tuple(viable_by_prefix.get(categorical, ()))
                if not contexts:
                    continue
            else:
                contexts = (Itemset(),)
            tasks.append(
                _LevelTask(
                    categorical,
                    continuous,
                    contexts,
                    min_interest,
                    tuple(known_pure),
                )
            )
        else:
            prefix = categorical[:-1]
            contexts = (
                (Itemset(),)
                if not prefix
                else tuple(viable_by_prefix.get(prefix, ()))
            )
            if not contexts:
                continue
            tasks.append(
                _LevelTask(
                    categorical,
                    (),
                    contexts,
                    min_interest,
                    tuple(known_pure),
                )
            )
    return tasks


def mine_parallel(
    dataset: Dataset,
    config: MinerConfig | None = None,
    n_workers: int | None = None,
) -> ParallelMiningResult:
    """Mine contrast patterns level-parallel across a process pool.

    Within a level every attribute-combination task runs independently;
    between levels the shared top-k threshold, the viable categorical
    itemsets, and the pure-itemset list are refreshed from the gathered
    results — the scheme the paper sketches for cluster execution.
    """
    config = config or MinerConfig()
    n_workers = n_workers or max(1, (os.cpu_count() or 2) - 1)
    stats = MiningStats()
    topk = TopKList(config.k, config.delta)
    measure = measures.get(config.interest_measure)
    viable_by_prefix: dict[tuple[str, ...], list[Itemset]] = {}
    known_pure: list[Itemset] = []
    max_depth = min(config.max_tree_depth, len(dataset.schema))

    with Stopwatch(stats):
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(dataset, config),
        ) as pool:
            for level in range(1, max_depth + 1):
                tasks = mine_level_tasks(
                    dataset,
                    level,
                    viable_by_prefix,
                    topk.threshold,
                    known_pure,
                )
                if not tasks:
                    break
                stats.candidates_generated += len(tasks)
                next_viable: dict[tuple[str, ...], list[Itemset]] = {}
                for task, outcome in zip(
                    tasks, pool.map(_run_task, tasks, chunksize=1)
                ):
                    stats.partitions_evaluated += (
                        outcome.partitions_evaluated
                    )
                    for pattern in outcome.patterns:
                        topk.add(pattern, measure(pattern))
                    known_pure.extend(outcome.pure_itemsets)
                    if not task.continuous:
                        next_viable.setdefault(
                            task.categorical, []
                        ).extend(outcome.viable_contexts)
                viable_by_prefix.update(next_viable)
    return ParallelMiningResult(topk.patterns(), stats, n_workers)
