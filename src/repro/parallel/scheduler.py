"""Level-parallel mining (paper Section 6, scaling discussion).

The paper's strategy for data that exceeds one machine: *"find contrast
patterns at each level of the tree in parallel and then use those results
to prune the next level of the tree"*.  Each attribute combination at a
level is an independent task, so a level is a simple parallel map; between
levels the workers' results are folded into the shared top-k list, the
viable-itemset index, and the pure-itemset set, restoring the cross-subtree
pruning for the next level.

Workers run the exact same candidate lifecycle as the serial engine — the
shared :class:`~repro.core.pipeline.PruningPipeline` — with the level's
Bonferroni alpha and a snapshot of the driver's :class:`AlphaLadder`
shipped in each task (ladder registration is value-deterministic given the
driver's prior levels, so worker-local copies reproduce the serial alphas
exactly).  Each worker task returns its own :class:`MiningStats` and
:class:`PruneTable`; the driver merges them, so a parallel run reports the
same per-rule prune accounting as the serial run, not just the same
patterns.

Two per-level snapshots are intentionally frozen for the duration of a
level (the paper notes the same trade-off): the live top-k threshold and
the pure-itemset registry, which the serial engine updates mid-level.
Cross-task effects within one level are not replayed, so a run whose top-k
list saturates mid-level can evaluate slightly more partitions than the
serial one.

This module implements the strategy with ``multiprocessing`` on one
machine — the paper's cluster stands in for our process pool (DESIGN.md
substitution #4).  The public entry point is
:meth:`repro.ContrastSetMiner.mine` with ``n_jobs > 1``.  Workers count
supports through the configured :mod:`counting backend <repro.counting>` —
each worker builds its backend once in the pool initializer, so the bitmap
backend's packed index and context cache persist across the tasks a worker
processes.

Task dispatch is fault-tolerant (DESIGN.md section 9): every task travels
through :class:`~repro.resilience.executor.ResilientExecutor`, which
classifies worker crashes, hangs, raised exceptions, and corrupt results,
retries with exponential backoff under ``config.resilience``, rebuilds a
broken pool, and finally re-executes an exhausted task serially in the
driver so a run always completes.  At every level boundary the driver can
persist the full between-levels state (``checkpoint_dir=``) and later
continue from it (``resume_from=``) with bit-identical patterns and prune
accounting.  A deterministic :class:`~repro.resilience.inject.FaultPlan`
makes each of those failure paths drivable from tests.
"""

from __future__ import annotations

import itertools
import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core import measures
from ..core.batch import BatchEvaluator
from ..core.config import MinerConfig
from ..core.contrast import ContrastPattern
from ..core.instrumentation import MiningStats, Stopwatch
from ..core.items import CategoricalItem, Itemset
from ..core.pipeline import PruningPipeline, process_categorical_candidate
from ..core.pruning import PruneTable
from ..core.sdad import sdad_cs
from ..core.stats import AlphaLadder
from ..core.topk import TopKList
from ..counting import CountingBackend, backend_from_config
from ..dataset.table import Dataset
from ..resilience.checkpoint import (
    MiningCheckpoint,
    save_checkpoint,
)
from ..resilience.executor import ResilientExecutor, TaskEnvelope
from ..resilience.inject import CORRUPT_SENTINEL, FaultPlan, apply_fault

__all__ = ["mine_level_tasks", "parallel_search"]

# Worker-global state: sent once per worker via the initializer instead of
# pickling the dataset (and rebuilding the counting backend) in every task.
_WORKER_DATASET: Dataset | None = None
_WORKER_CONFIG: MinerConfig | None = None
_WORKER_BACKEND: CountingBackend | None = None
_WORKER_FAULT_PLAN: FaultPlan | None = None


def _init_worker(
    dataset: Dataset,
    config: MinerConfig,
    fault_plan: FaultPlan | None = None,
) -> None:
    global _WORKER_DATASET, _WORKER_CONFIG, _WORKER_BACKEND
    global _WORKER_FAULT_PLAN
    # A ChunkedView arrives as a tiny (path, chunk ids) pickle and
    # re-opens the store here — workers share chunk bytes through the
    # page cache instead of receiving the table itself.
    _WORKER_DATASET = dataset
    _WORKER_CONFIG = config
    _WORKER_BACKEND = backend_from_config(config, dataset)
    _WORKER_FAULT_PLAN = fault_plan


@dataclass
class _LevelTask:
    """One attribute combination to mine at the current level."""

    categorical: tuple[str, ...]
    continuous: tuple[str, ...]
    contexts: tuple[Itemset, ...]  # viable categorical contexts
    min_interest: float
    known_pure: tuple[Itemset, ...]
    alpha: float = 0.05
    """The level's Bonferroni-adjusted alpha (driver-computed, so every
    task at a level tests at exactly the serial engine's alpha)."""
    alpha_ladder: AlphaLadder | None = None
    """Snapshot of the driver's ladder; SDAD-CS registers its deeper split
    levels on the (pickled) copy, reproducing the serial values."""
    subset_patterns: dict[Itemset, ContrastPattern] = field(
        default_factory=dict
    )
    """Previous-level patterns for the immediate sub-itemsets of this
    task's candidates (the redundancy rule's lookups, pre-filtered by the
    driver so only the relevant slice is pickled)."""


@dataclass
class _TaskOutcome:
    patterns: list[ContrastPattern] = field(default_factory=list)
    pure_itemsets: list[Itemset] = field(default_factory=list)
    viable_contexts: list[Itemset] = field(default_factory=list)
    viable_patterns: list[ContrastPattern] = field(default_factory=list)
    """Patterns of the viable itemsets, in ``viable_contexts`` order; the
    driver indexes them for the next level's redundancy lookups."""
    stats: MiningStats = field(default_factory=MiningStats)
    prune_table: PruneTable = field(default_factory=PruneTable)


def _execute_task(
    task: _LevelTask,
    dataset: Dataset,
    config: MinerConfig,
    backend: CountingBackend,
) -> _TaskOutcome:
    """Mine one attribute combination (worker body and serial fallback).

    Candidates flow through the same :class:`PruningPipeline` lifecycle as
    the serial engine; the pipeline's stats and prune table travel back in
    the outcome for the driver to merge.  Each call uses a fresh pipeline
    and stats object, so a retried task reports exactly the counters a
    first-attempt execution would.
    """
    outcome = _TaskOutcome()
    stats = MiningStats()
    pipeline = PruningPipeline(config, stats=stats)
    known_pure = list(task.known_pure)

    if task.continuous:
        for context in task.contexts:
            result = sdad_cs(
                dataset,
                context,
                task.continuous,
                config,
                min_interest=task.min_interest,
                alpha_ladder=task.alpha_ladder,
                base_level=len(context),
                known_pure=known_pure,
                backend=backend,
                pipeline=pipeline,
            )
            outcome.patterns.extend(result.patterns)
            outcome.pure_itemsets.extend(result.pure_itemsets)
            # Later contexts of the same task see pures found by earlier
            # ones, mirroring the serial engine's in-level accumulation.
            known_pure.extend(result.pure_itemsets)
    else:
        # Categorical-only combination: evaluate value extensions of the
        # viable contexts over the final attribute.
        level = len(task.categorical)
        last = task.categorical[-1]
        attr = dataset.attribute(last)
        candidates = [
            context.with_item(CategoricalItem(last, value))
            for context in task.contexts
            for value in attr.categories
        ]
        stats.candidates_generated += len(candidates)
        if config.batch_evaluation:
            # One batch per task: a task is exactly one attribute
            # combination, so this mirrors the serial engine's per-combo
            # batching (and its accounting) precisely.
            evaluator = BatchEvaluator(dataset, pipeline, backend)
            results = evaluator.process_categorical_combo(
                candidates,
                alpha=task.alpha,
                level=level,
                subset_patterns=task.subset_patterns,
                known_pure=known_pure,
                threshold=task.min_interest,
            )
        else:
            results = (
                process_categorical_candidate(
                    itemset,
                    dataset,
                    pipeline,
                    alpha=task.alpha,
                    level=level,
                    subset_patterns=task.subset_patterns,
                    known_pure=known_pure,
                    backend=backend,
                    threshold=task.min_interest,
                )
                for itemset in candidates
            )
        for result in results:
            if result is None:
                continue
            outcome.viable_contexts.append(result.itemset)
            outcome.viable_patterns.append(result.pattern)
            if result.is_pure:
                known_pure.append(result.itemset)
                outcome.pure_itemsets.append(result.itemset)
            if result.is_contrast:
                outcome.patterns.append(result.pattern)

    # Workers are long-lived; both publishes use delta semantics, so the
    # outcome carries only the counters accrued by THIS task.
    backend.publish(stats)
    pipeline.publish(stats)
    outcome.stats = stats
    outcome.prune_table = pipeline.prune_table
    return outcome


def _run_task(envelope: TaskEnvelope) -> object:
    """Pool entry point: apply any injected fault, then run the task.

    The envelope carries the task's global sequence number and attempt
    count so the worker-side :class:`FaultPlan` can fire deterministically
    (and stop firing once its configured attempt budget is spent).  The
    serial fallback in the driver bypasses this wrapper entirely — faults
    only ever hit the parallel path.
    """
    dataset, config = _WORKER_DATASET, _WORKER_CONFIG
    backend = _WORKER_BACKEND
    assert dataset is not None and config is not None and backend is not None
    corrupt = False
    if _WORKER_FAULT_PLAN is not None:
        spec = _WORKER_FAULT_PLAN.spec_for(envelope.seq, envelope.attempt)
        if spec is not None:
            corrupt = apply_fault(spec, envelope.seq, envelope.attempt)
    outcome = _execute_task(envelope.payload, dataset, config, backend)
    if corrupt:
        return CORRUPT_SENTINEL
    return outcome


class _SerialFallback:
    """Parent-process task runner used once parallel retries are spent.

    Builds its counting backend lazily (most runs never fall back) and
    keeps it across tasks, mirroring a worker's long-lived backend; the
    per-task pipeline/stats stay fresh so the outcome's counters are
    identical to a worker execution of the same task.
    """

    def __init__(self, dataset: Dataset, config: MinerConfig) -> None:
        self._dataset = dataset
        self._config = config
        self._backend: CountingBackend | None = None

    def __call__(self, task: _LevelTask) -> _TaskOutcome:
        if self._backend is None:
            self._backend = backend_from_config(self._config, self._dataset)
        return _execute_task(task, self._dataset, self._config, self._backend)


def _relevant_subsets(
    contexts: Sequence[Itemset],
    last: str,
    categories: Sequence[str],
    previous_patterns: Mapping[Itemset, ContrastPattern],
) -> dict[Itemset, ContrastPattern]:
    """The previous-level patterns a task's redundancy checks can reach.

    A candidate ``context + {last=value}`` probes its immediate
    sub-itemsets: the context itself, and (for each context attribute
    ``a``) ``context - a + {last=value}``.  Shipping just this slice keeps
    task pickles small while giving the worker the exact lookups the
    serial engine performs.
    """
    if not previous_patterns:
        return {}
    relevant: dict[Itemset, ContrastPattern] = {}
    for context in contexts:
        pattern = previous_patterns.get(context)
        if pattern is not None:
            relevant[context] = pattern
        for attribute in context.attributes:
            base = context.without_attribute(attribute)
            for value in categories:
                key = base.with_item(CategoricalItem(last, value))
                pattern = previous_patterns.get(key)
                if pattern is not None:
                    relevant[key] = pattern
    return relevant


def mine_level_tasks(
    dataset: Dataset,
    level: int,
    viable_by_prefix: dict[tuple[str, ...], list[Itemset]],
    min_interest: float,
    known_pure: Sequence[Itemset],
    attributes: Sequence[str] | None = None,
    *,
    config: MinerConfig | None = None,
    alpha: float | None = None,
    alpha_ladder: AlphaLadder | None = None,
    subset_patterns: Mapping[Itemset, ContrastPattern] | None = None,
) -> list[_LevelTask]:
    """Build the independent tasks for one level of the search tree.

    ``attributes`` optionally restricts the searched attributes (defaults
    to the full schema), mirroring the serial engine.  ``alpha`` is the
    level's test threshold; when omitted it is derived from the ladder
    exactly as the serial engine does (``alpha / 2^level`` split over the
    level's combination count).  ``subset_patterns`` is the previous
    level's itemset→pattern index for the redundancy rule.
    """
    names = (
        tuple(attributes) if attributes is not None else dataset.schema.names
    )
    config = config or MinerConfig()
    combos = list(itertools.combinations(names, level))
    ladder = (
        alpha_ladder
        if alpha_ladder is not None
        else AlphaLadder(config.alpha)
    )
    if alpha is None:
        alpha = (
            ladder.alpha_for_level(level, max(1, len(combos)))
            if config.use_bonferroni
            else config.alpha
        )
    previous_patterns = subset_patterns or {}
    known_pure = tuple(known_pure)
    tasks: list[_LevelTask] = []
    for combo in combos:
        categorical = tuple(
            a for a in combo if dataset.attribute(a).is_categorical
        )
        continuous = tuple(
            a for a in combo if dataset.attribute(a).is_continuous
        )
        if continuous:
            if categorical:
                contexts = tuple(viable_by_prefix.get(categorical, ()))
                if config.prune_pure_space and known_pure:
                    # A context inside a pure region cannot yield anything
                    # but redundant specialisations (serial engine's
                    # pure-context filter).
                    contexts = tuple(
                        c
                        for c in contexts
                        if not any(
                            p.region_subsumes(c) for p in known_pure
                        )
                    )
                if not contexts:
                    continue
            else:
                contexts = (Itemset(),)
            tasks.append(
                _LevelTask(
                    categorical,
                    continuous,
                    contexts,
                    min_interest,
                    known_pure,
                    alpha,
                    ladder,
                )
            )
        else:
            prefix = categorical[:-1]
            contexts = (
                (Itemset(),)
                if not prefix
                else tuple(viable_by_prefix.get(prefix, ()))
            )
            if not contexts:
                continue
            last = categorical[-1]
            tasks.append(
                _LevelTask(
                    categorical,
                    (),
                    contexts,
                    min_interest,
                    known_pure,
                    alpha,
                    ladder,
                    _relevant_subsets(
                        contexts,
                        last,
                        dataset.attribute(last).categories,
                        previous_patterns,
                    ),
                )
            )
    return tasks


def parallel_search(
    dataset: Dataset,
    config: MinerConfig | None = None,
    attributes: Sequence[str] | None = None,
    n_workers: int | None = None,
    *,
    checkpoint_dir: "str | os.PathLike | None" = None,
    resume_from: MiningCheckpoint | None = None,
    fault_plan: FaultPlan | None = None,
) -> tuple[TopKList, MiningStats, int]:
    """Level-parallel search over a fault-tolerant process pool.

    Within a level every attribute-combination task runs independently
    through the shared pruning pipeline; between levels the shared top-k
    threshold, the viable categorical itemsets (with their patterns, for
    the redundancy rule), and the pure-itemset list are refreshed from the
    gathered results — the scheme the paper sketches for cluster
    execution.

    Dispatch runs through :class:`ResilientExecutor` under
    ``config.resilience``: crashed, hung, or poisoned tasks are retried
    with backoff and ultimately re-executed serially in this process, so
    the search completes (with identical patterns — outcomes are merged
    in task order regardless of completion order) even under worker
    failures.  With ``checkpoint_dir`` the full between-levels state is
    persisted after every level; ``resume_from`` restores such a
    checkpoint and continues at the next level.  ``fault_plan`` is the
    deterministic test hook injecting worker faults
    (:mod:`repro.resilience.inject`).

    Returns the top-k list, the accumulated stats (counting-backend
    counters, per-rule prune checks/hits/times, prune-table reason counts
    merged from every worker, and the retry/timeout/crash/fallback
    counters), and the worker count actually used.  Callers normally
    reach this through ``ContrastSetMiner.mine(..., n_jobs=N)``.
    """
    config = config or MinerConfig()
    n_workers = n_workers or max(1, (os.cpu_count() or 2) - 1)
    if attributes is not None:
        for name in attributes:
            dataset.attribute(name)  # validate

    if resume_from is not None:
        attributes = resume_from.attributes
        stats = resume_from.stats
        prune_table = resume_from.prune_table
        ladder = resume_from.ladder
        topk = resume_from.topk
        viable_by_prefix = resume_from.viable_by_prefix
        previous_patterns = resume_from.previous_patterns
        known_pure = resume_from.known_pure
        start_level = resume_from.completed_level + 1
        stats.resumed_from_level = resume_from.completed_level
    else:
        stats = MiningStats()
        from ..dataset.chunked import ChunkedView

        stats.counting_backend = (
            f"chunked+{config.counting_backend}"
            if isinstance(dataset, ChunkedView)
            else config.counting_backend
        )
        prune_table = PruneTable()
        ladder = AlphaLadder(config.alpha)
        topk = TopKList(config.k, config.delta)
        viable_by_prefix = {}
        previous_patterns = {}
        known_pure = []
        start_level = 1
    measure = measures.get(config.interest_measure)
    names = (
        tuple(attributes) if attributes is not None else dataset.schema.names
    )
    max_depth = min(config.max_tree_depth, len(names))

    executor = ResilientExecutor(
        pool_factory=lambda: ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(dataset, config, fault_plan),
        ),
        worker_fn=_run_task,
        serial_fn=_SerialFallback(dataset, config),
        policy=config.resilience,
        stats=stats,
        validate=lambda result: isinstance(result, _TaskOutcome),
    )
    task_seq = 0
    with Stopwatch(stats):
        try:
            for level in range(start_level, max_depth + 1):
                tasks = mine_level_tasks(
                    dataset,
                    level,
                    viable_by_prefix,
                    topk.threshold,
                    known_pure,
                    attributes=attributes,
                    config=config,
                    alpha_ladder=ladder,
                    subset_patterns=previous_patterns,
                )
                if not tasks:
                    break
                stats.nodes_expanded += math.comb(len(names), level)
                outcomes = executor.run(tasks, seq_base=task_seq)
                task_seq += len(tasks)
                next_viable: dict[tuple[str, ...], list[Itemset]] = {}
                next_patterns: dict[Itemset, ContrastPattern] = {}
                # Merge in task order — completion order (retries, pool
                # rebuilds) must never influence top-k tie-breaking.
                for task, outcome in zip(tasks, outcomes):
                    if outcome is None:
                        continue  # permanently failed; recorded in stats
                    stats.merge_from(outcome.stats)
                    prune_table.merge_from(outcome.prune_table)
                    for pattern in outcome.patterns:
                        topk.add(pattern, measure(pattern))
                    known_pure.extend(outcome.pure_itemsets)
                    if not task.continuous:
                        next_viable.setdefault(
                            task.categorical, []
                        ).extend(outcome.viable_contexts)
                        for pattern in outcome.viable_patterns:
                            next_patterns[pattern.itemset] = pattern
                viable_by_prefix.update(next_viable)
                previous_patterns = next_patterns
                if checkpoint_dir is not None:
                    save_checkpoint(
                        checkpoint_dir,
                        MiningCheckpoint(
                            config=config,
                            dataset=dataset,
                            completed_level=level,
                            attributes=(
                                tuple(attributes)
                                if attributes is not None
                                else None
                            ),
                            topk=topk,
                            viable_by_prefix=viable_by_prefix,
                            previous_patterns=previous_patterns,
                            known_pure=known_pure,
                            ladder=ladder,
                            stats=stats,
                            prune_table=prune_table,
                        ),
                    )
                    stats.checkpoints_written += 1
        finally:
            executor.shutdown()
    stats.prune_table_checks = prune_table.checks
    stats.prune_table_hits = prune_table.hits
    return topk, stats, n_workers
