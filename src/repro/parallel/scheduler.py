"""Level-parallel mining (paper Section 6, scaling discussion).

The paper's strategy for data that exceeds one machine: *"find contrast
patterns at each level of the tree in parallel and then use those results
to prune the next level of the tree"*.  Each attribute combination at a
level is an independent task (SDAD-CS calls share nothing but the live
top-k threshold), so a level is a simple parallel map; between levels the
workers' results are folded into the shared top-k list and pure-itemset
set, restoring most of the cross-subtree pruning.

This module implements that strategy with ``multiprocessing`` on one
machine — the paper's cluster stands in for our process pool (DESIGN.md
substitution #4).  Some pruning is lost across subtrees within a level
(the paper notes the same), so the parallel run can evaluate slightly more
partitions than the serial one while producing the same contrasts.

The public entry point is :meth:`repro.ContrastSetMiner.mine` with
``n_jobs > 1``; :func:`mine_parallel` remains as a deprecated shim.
Workers count supports through the configured
:mod:`counting backend <repro.counting>` — each worker builds its backend
once in the pool initializer, so the bitmap backend's packed index and
context cache persist across the tasks a worker processes.
"""

from __future__ import annotations

import itertools
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..core import measures
from ..core.config import MinerConfig
from ..core.contrast import ContrastPattern, evaluate_itemset
from ..core.instrumentation import MiningStats, Stopwatch
from ..core.items import CategoricalItem, Itemset
from ..core.pruning import (
    expected_count_prunes,
    is_pure_space,
    minimum_deviation_prunes,
)
from ..core.sdad import sdad_cs
from ..core.topk import TopKList
from ..counting import CountingBackend, make_backend
from ..dataset.table import Dataset

__all__ = ["mine_parallel", "mine_level_tasks", "parallel_search"]

# Worker-global state: sent once per worker via the initializer instead of
# pickling the dataset (and rebuilding the counting backend) in every task.
_WORKER_DATASET: Dataset | None = None
_WORKER_CONFIG: MinerConfig | None = None
_WORKER_BACKEND: CountingBackend | None = None


def _init_worker(dataset: Dataset, config: MinerConfig) -> None:
    global _WORKER_DATASET, _WORKER_CONFIG, _WORKER_BACKEND
    _WORKER_DATASET = dataset
    _WORKER_CONFIG = config
    _WORKER_BACKEND = make_backend(config.counting_backend, dataset)


@dataclass
class _LevelTask:
    """One attribute combination to mine at the current level."""

    categorical: tuple[str, ...]
    continuous: tuple[str, ...]
    contexts: tuple[Itemset, ...]  # viable categorical contexts
    min_interest: float
    known_pure: tuple[Itemset, ...]


@dataclass
class _TaskOutcome:
    patterns: list[ContrastPattern] = field(default_factory=list)
    pure_itemsets: list[Itemset] = field(default_factory=list)
    viable_contexts: list[Itemset] = field(default_factory=list)
    partitions_evaluated: int = 0
    count_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def _run_task(task: _LevelTask) -> _TaskOutcome:
    """Worker body: mine one attribute combination."""
    dataset, config = _WORKER_DATASET, _WORKER_CONFIG
    backend = _WORKER_BACKEND
    assert dataset is not None and config is not None and backend is not None
    outcome = _TaskOutcome()
    stats = MiningStats()
    before = backend.counters()

    if task.continuous:
        for context in task.contexts:
            result = sdad_cs(
                dataset,
                context,
                task.continuous,
                config,
                min_interest=task.min_interest,
                stats=stats,
                known_pure=task.known_pure,
                base_level=len(context),
                backend=backend,
            )
            outcome.patterns.extend(result.patterns)
            outcome.pure_itemsets.extend(result.pure_itemsets)
    else:
        # categorical-only combination: evaluate value extensions of the
        # viable contexts over the final attribute
        level = len(task.categorical)
        alpha = config.alpha / (2**level)
        last = task.categorical[-1]
        attr = dataset.attribute(last)
        for context in task.contexts:
            for value in attr.categories:
                itemset = context.with_item(CategoricalItem(last, value))
                stats.partitions_evaluated += 1
                pattern = evaluate_itemset(
                    itemset, dataset, level, backend=backend
                )
                if minimum_deviation_prunes(
                    pattern.counts, pattern.group_sizes, config.delta
                ):
                    continue
                if expected_count_prunes(
                    pattern.counts,
                    pattern.group_sizes,
                    config.min_expected_count,
                ):
                    continue
                outcome.viable_contexts.append(itemset)
                if pattern.is_contrast(config.delta, alpha):
                    outcome.patterns.append(pattern)
                    if is_pure_space(pattern.counts):
                        outcome.pure_itemsets.append(itemset)
    outcome.partitions_evaluated = stats.partitions_evaluated
    # Workers are long-lived, so ship only the counters accrued by THIS
    # task; the driver folds the deltas into the run's MiningStats.
    delta = backend.counters() - before
    outcome.count_calls = delta.count_calls
    outcome.cache_hits = delta.cache_hits
    outcome.cache_misses = delta.cache_misses
    return outcome


def mine_level_tasks(
    dataset: Dataset,
    level: int,
    viable_by_prefix: dict[tuple[str, ...], list[Itemset]],
    min_interest: float,
    known_pure: Sequence[Itemset],
    attributes: Sequence[str] | None = None,
) -> list[_LevelTask]:
    """Build the independent tasks for one level of the search tree.

    ``attributes`` optionally restricts the searched attributes (defaults
    to the full schema), mirroring the serial engine.
    """
    names = (
        tuple(attributes) if attributes is not None else dataset.schema.names
    )
    tasks: list[_LevelTask] = []
    for combo in itertools.combinations(names, level):
        categorical = tuple(
            a for a in combo if dataset.attribute(a).is_categorical
        )
        continuous = tuple(
            a for a in combo if dataset.attribute(a).is_continuous
        )
        if continuous:
            if categorical:
                contexts = tuple(viable_by_prefix.get(categorical, ()))
                if not contexts:
                    continue
            else:
                contexts = (Itemset(),)
            tasks.append(
                _LevelTask(
                    categorical,
                    continuous,
                    contexts,
                    min_interest,
                    tuple(known_pure),
                )
            )
        else:
            prefix = categorical[:-1]
            contexts = (
                (Itemset(),)
                if not prefix
                else tuple(viable_by_prefix.get(prefix, ()))
            )
            if not contexts:
                continue
            tasks.append(
                _LevelTask(
                    categorical,
                    (),
                    contexts,
                    min_interest,
                    tuple(known_pure),
                )
            )
    return tasks


def parallel_search(
    dataset: Dataset,
    config: MinerConfig | None = None,
    attributes: Sequence[str] | None = None,
    n_workers: int | None = None,
) -> tuple[TopKList, MiningStats, int]:
    """Level-parallel search over a process pool.

    Within a level every attribute-combination task runs independently;
    between levels the shared top-k threshold, the viable categorical
    itemsets, and the pure-itemset list are refreshed from the gathered
    results — the scheme the paper sketches for cluster execution.

    Returns the top-k list, the accumulated stats (including the counting
    backend's counters), and the worker count actually used.  Callers
    normally reach this through ``ContrastSetMiner.mine(..., n_jobs=N)``.
    """
    config = config or MinerConfig()
    n_workers = n_workers or max(1, (os.cpu_count() or 2) - 1)
    if attributes is not None:
        for name in attributes:
            dataset.attribute(name)  # validate
    stats = MiningStats()
    stats.counting_backend = config.counting_backend
    topk = TopKList(config.k, config.delta)
    measure = measures.get(config.interest_measure)
    viable_by_prefix: dict[tuple[str, ...], list[Itemset]] = {}
    known_pure: list[Itemset] = []
    n_attributes = (
        len(attributes) if attributes is not None else len(dataset.schema)
    )
    max_depth = min(config.max_tree_depth, n_attributes)

    with Stopwatch(stats):
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(dataset, config),
        ) as pool:
            for level in range(1, max_depth + 1):
                tasks = mine_level_tasks(
                    dataset,
                    level,
                    viable_by_prefix,
                    topk.threshold,
                    known_pure,
                    attributes=attributes,
                )
                if not tasks:
                    break
                stats.candidates_generated += len(tasks)
                next_viable: dict[tuple[str, ...], list[Itemset]] = {}
                for task, outcome in zip(
                    tasks, pool.map(_run_task, tasks, chunksize=1)
                ):
                    stats.partitions_evaluated += (
                        outcome.partitions_evaluated
                    )
                    stats.count_calls += outcome.count_calls
                    stats.cache_hits += outcome.cache_hits
                    stats.cache_misses += outcome.cache_misses
                    for pattern in outcome.patterns:
                        topk.add(pattern, measure(pattern))
                    known_pure.extend(outcome.pure_itemsets)
                    if not task.continuous:
                        next_viable.setdefault(
                            task.categorical, []
                        ).extend(outcome.viable_contexts)
                viable_by_prefix.update(next_viable)
    return topk, stats, n_workers


def mine_parallel(
    dataset: Dataset,
    config: MinerConfig | None = None,
    n_workers: int | None = None,
):
    """Deprecated: use ``ContrastSetMiner(config).mine(dataset, n_jobs=N)``.

    Kept for one release as a thin shim over the unified entry point; it
    returns the same :class:`repro.core.miner.MiningResult` the miner does.
    """
    warnings.warn(
        "mine_parallel is deprecated; use "
        "ContrastSetMiner(config).mine(dataset, n_jobs=n_workers) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..core.miner import ContrastSetMiner

    n_workers = n_workers or max(1, (os.cpu_count() or 2) - 1)
    return ContrastSetMiner(config).mine(dataset, n_jobs=n_workers)


def __getattr__(name: str):
    if name == "ParallelMiningResult":
        warnings.warn(
            "ParallelMiningResult is deprecated; parallel runs now return "
            "repro.core.miner.MiningResult",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..core.miner import MiningResult

        return MiningResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
