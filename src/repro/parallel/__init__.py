"""Level-parallel mining on a process pool (Section 6 scaling strategy)."""

from .scheduler import ParallelMiningResult, mine_level_tasks, mine_parallel

__all__ = ["ParallelMiningResult", "mine_level_tasks", "mine_parallel"]
