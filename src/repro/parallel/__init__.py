"""Level-parallel mining on a process pool (Section 6 scaling strategy).

The supported entry point is :meth:`repro.ContrastSetMiner.mine` with
``n_jobs > 1``; :func:`mine_parallel` and ``ParallelMiningResult`` are
deprecated shims kept for one release.
"""

from .scheduler import mine_level_tasks, mine_parallel, parallel_search

__all__ = [
    "ParallelMiningResult",
    "mine_level_tasks",
    "mine_parallel",
    "parallel_search",
]


def __getattr__(name: str):
    if name == "ParallelMiningResult":
        # scheduler.__getattr__ emits the DeprecationWarning
        from . import scheduler

        return scheduler.ParallelMiningResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
