"""Level-parallel mining on a process pool (Section 6 scaling strategy).

The supported entry point is :meth:`repro.ContrastSetMiner.mine` with
``n_jobs > 1``; :func:`parallel_search` is the driver it delegates to,
and :func:`mine_level_tasks` the task builder the scheduler (and the
resilience tests) use directly.
"""

from .scheduler import mine_level_tasks, parallel_search

__all__ = ["mine_level_tasks", "parallel_search"]
