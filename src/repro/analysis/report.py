"""Plain-text rendering of pattern lists and comparison tables.

The benches print these tables so their output can be compared line-by-line
to the paper's Tables 1, 3, 4, 5, 6 and 7.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.contrast import ContrastPattern
from .comparison import AlgorithmComparison

__all__ = [
    "pattern_table",
    "comparison_table",
    "timing_table",
    "supports_histogram",
]


def pattern_table(
    patterns: Sequence[ContrastPattern],
    title: str = "Contrast Sets",
    max_rows: int | None = None,
) -> str:
    """Render patterns like the paper's Tables 1/3/7: an S.No, the
    contrast set, and the per-group supports."""
    rows = list(patterns[:max_rows] if max_rows else patterns)
    lines = [title, "=" * len(title)]
    if not rows:
        lines.append("(no contrasts found)")
        return "\n".join(lines)
    labels = rows[0].group_labels
    header = (
        f"{'S.No':>4}  {'Contrast Set':<70}"
        + "".join(f"  Supp({label[:10]})" for label in labels)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, pattern in enumerate(rows, 1):
        supports = "".join(
            f"  {supp:>10.2f}" + " " * max(0, len(f"Supp({l[:10]})") - 12)
            for supp, l in zip(pattern.supports, labels)
        )
        lines.append(f"{i:>4}  {str(pattern.itemset):<70}{supports}")
    return "\n".join(lines)


def comparison_table(
    comparisons: Sequence[AlgorithmComparison],
    algorithms: Sequence[str] = ("sdad_np", "mvd", "entropy", "cortana"),
) -> str:
    """Render Table 4: one row per dataset, one column per algorithm,
    mean support difference with the WMW ``*`` marker."""
    header = f"{'Dataset':<16}" + "".join(
        f"{name:>14}" for name in algorithms
    )
    lines = ["Mean Support Difference (Table 4 protocol)", header,
             "-" * len(header)]
    for comparison in comparisons:
        cells = []
        for name in algorithms:
            row = comparison.rows.get(name)
            cells.append(f"{row.formatted() if row else '-':>14}")
        lines.append(f"{comparison.dataset_name:<16}" + "".join(cells))
    return "\n".join(lines)


def timing_table(
    comparisons: Sequence[AlgorithmComparison],
    algorithms: Sequence[str] = ("sdad", "mvd", "sdad_np"),
) -> str:
    """Render Table 5: seconds and partitions evaluated per algorithm."""
    header = (
        f"{'Dataset':<16}"
        + "".join(f"{name + ' (s)':>14}" for name in algorithms)
        + "".join(f"{name + ' (parts)':>18}" for name in algorithms)
    )
    lines = [
        "Time and Partitions Evaluated (Table 5 protocol)",
        header,
        "-" * len(header),
    ]
    for comparison in comparisons:
        seconds = []
        partitions = []
        for name in algorithms:
            row = comparison.rows.get(name)
            seconds.append(
                f"{row.elapsed_seconds:>14.2f}" if row else f"{'-':>14}"
            )
            partitions.append(
                f"{row.partitions_evaluated:>18d}" if row else f"{'-':>18}"
            )
        lines.append(
            f"{comparison.dataset_name:<16}"
            + "".join(seconds)
            + "".join(partitions)
        )
    return "\n".join(lines)


def supports_histogram(
    bin_labels: Sequence[str],
    supports_by_group: Mapping[str, Sequence[float]],
    purity: Sequence[float] | None = None,
    title: str = "",
    width: int = 40,
) -> str:
    """ASCII rendering of the Figure 4 histograms: per-bin group supports
    (and optionally the purity ratio) over equal-frequency bins."""
    lines = [title] if title else []
    groups = list(supports_by_group)
    for i, label in enumerate(bin_labels):
        parts = [f"{label:<22}"]
        for group in groups:
            value = supports_by_group[group][i]
            bar = "#" * int(round(value * width))
            parts.append(f" {group[:8]:<8} {value:5.2f} |{bar:<{width}}|")
        if purity is not None:
            parts.append(f" PR={purity[i]:.2f}")
        lines.append("".join(parts))
    return "\n".join(lines)
