"""Experiment harnesses: algorithm adapters, Table 4/5/6 protocols, and
plain-text report rendering."""

from .algorithms import ALGORITHMS, AlgorithmResult, run_algorithm
from .comparison import (
    AlgorithmComparison,
    ComparisonRow,
    compare_algorithms,
    mean_top_k_difference,
)
from .diversity import DiversityReport, diversity_report
from .explain import Explanation, briefing, explain_pattern
from .meaningfulness import MeaningfulnessCensus, census
from .report import (
    comparison_table,
    pattern_table,
    supports_histogram,
    timing_table,
)
from .scatter import ascii_scatter
from .validation import (
    PatternValidation,
    ValidationReport,
    validate_patterns,
)

__all__ = [
    "DiversityReport",
    "diversity_report",
    "Explanation",
    "briefing",
    "explain_pattern",
    "PatternValidation",
    "ValidationReport",
    "validate_patterns",
    "ascii_scatter",
    "ALGORITHMS",
    "AlgorithmResult",
    "run_algorithm",
    "AlgorithmComparison",
    "ComparisonRow",
    "compare_algorithms",
    "mean_top_k_difference",
    "MeaningfulnessCensus",
    "census",
    "comparison_table",
    "pattern_table",
    "supports_histogram",
    "timing_table",
]
