"""Bin-boundary quality metrics.

The Figure 3 experiments are about *where* each algorithm places its bin
boundaries relative to the planted truth.  These helpers quantify that:

* :func:`boundary_errors` — for each true boundary, the distance to the
  nearest discovered cut (recall side);
* :func:`spurious_cuts` — discovered cuts far from every true boundary
  (precision side);
* :func:`pattern_boundaries` — extract the cut points a miner's patterns
  imply for one attribute.

Used by ``bench_boundary_quality.py`` to score SDAD-CS, MVD, Fayyad and
Cortana on the simulated datasets where the truth is known.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.contrast import ContrastPattern
from ..core.items import NumericItem

__all__ = [
    "BoundaryReport",
    "boundary_errors",
    "spurious_cuts",
    "pattern_boundaries",
    "boundary_report",
]


def pattern_boundaries(
    patterns: Sequence[ContrastPattern],
    attribute: str,
    value_range: tuple[float, float] | None = None,
) -> list[float]:
    """Distinct finite cut points the patterns place on one attribute.

    Interval endpoints that coincide with the attribute's observed range
    (no real constraint) are dropped when ``value_range`` is given.
    """
    cuts: set[float] = set()
    for pattern in patterns:
        item = pattern.itemset.item_for(attribute)
        if not isinstance(item, NumericItem):
            continue
        for endpoint in (item.interval.lo, item.interval.hi):
            if math.isinf(endpoint):
                continue
            if value_range is not None:
                lo, hi = value_range
                span = (hi - lo) or 1.0
                if (
                    abs(endpoint - lo) / span < 0.005
                    or abs(endpoint - hi) / span < 0.005
                ):
                    continue
            cuts.add(float(endpoint))
    return sorted(cuts)


def boundary_errors(
    found: Sequence[float], truth: Sequence[float]
) -> list[float]:
    """Distance from each true boundary to the nearest found cut
    (``inf`` when nothing was found)."""
    out = []
    for t in truth:
        if not found:
            out.append(math.inf)
        else:
            out.append(min(abs(t - f) for f in found))
    return out


def spurious_cuts(
    found: Sequence[float],
    truth: Sequence[float],
    tolerance: float,
) -> list[float]:
    """Found cuts farther than ``tolerance`` from every true boundary."""
    return [
        f
        for f in found
        if not truth or min(abs(f - t) for t in truth) > tolerance
    ]


@dataclass(frozen=True)
class BoundaryReport:
    attribute: str
    found: tuple[float, ...]
    truth: tuple[float, ...]
    errors: tuple[float, ...]
    spurious: tuple[float, ...]

    @property
    def worst_error(self) -> float:
        return max(self.errors) if self.errors else 0.0

    @property
    def n_spurious(self) -> int:
        return len(self.spurious)

    @property
    def recovered_all(self) -> bool:
        return all(not math.isinf(e) for e in self.errors)

    def formatted(self, tolerance: float) -> str:
        hits = sum(1 for e in self.errors if e <= tolerance)
        return (
            f"{self.attribute}: {hits}/{len(self.truth)} true boundaries "
            f"within {tolerance:g} (worst error "
            f"{self.worst_error:.3g}), {self.n_spurious} spurious cuts"
        )


def boundary_report(
    patterns: Sequence[ContrastPattern],
    attribute: str,
    truth: Sequence[float],
    tolerance: float = 0.05,
    value_range: tuple[float, float] | None = None,
) -> BoundaryReport:
    """Score a pattern list's boundaries on one attribute against truth."""
    found = pattern_boundaries(patterns, attribute, value_range)
    return BoundaryReport(
        attribute=attribute,
        found=tuple(found),
        truth=tuple(truth),
        errors=tuple(boundary_errors(found, truth)),
        spurious=tuple(spurious_cuts(found, truth, tolerance)),
    )
