"""ASCII scatter plots of 2-D datasets with pattern-box overlays.

The Figure 3 benches and the simulated-survey example use this to render
what the paper shows graphically: the point cloud of the two groups and
the axis-aligned boxes each algorithm discovered.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.contrast import ContrastPattern
from ..core.items import NumericItem
from ..dataset.table import Dataset

__all__ = ["ascii_scatter"]

_GROUP_GLYPHS = ".ox+*"
_BOX_GLYPH = "#"


def ascii_scatter(
    dataset: Dataset,
    x: str,
    y: str,
    patterns: Sequence[ContrastPattern] = (),
    width: int = 64,
    height: int = 24,
    max_boxes: int = 4,
) -> str:
    """Render two continuous attributes as an ASCII scatter plot.

    Each group gets a glyph; the borders of up to ``max_boxes`` pattern
    boxes (patterns with numeric items on both axes, or one axis — the
    missing axis spans the full range) are drawn with ``#``.
    """
    xv = dataset.column(x)
    yv = dataset.column(y)
    if xv.size == 0:
        return "(empty dataset)"
    x_lo, x_hi = float(xv.min()), float(xv.max())
    y_lo, y_hi = float(yv.min()), float(yv.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def col_of(value: float) -> int:
        return min(width - 1, max(0, int((value - x_lo) / x_span
                                         * (width - 1))))

    def row_of(value: float) -> int:
        # y grows upward: row 0 is the top
        return min(
            height - 1,
            max(0, int((y_hi - value) / y_span * (height - 1))),
        )

    codes = np.asarray(dataset.group_codes)
    for xi, yi, gi in zip(xv, yv, codes):
        glyph = _GROUP_GLYPHS[int(gi) % len(_GROUP_GLYPHS)]
        grid[row_of(float(yi))][col_of(float(xi))] = glyph

    for pattern in list(patterns)[:max_boxes]:
        x_item = pattern.itemset.item_for(x)
        y_item = pattern.itemset.item_for(y)
        if not isinstance(x_item, NumericItem):
            x_item = None
        if not isinstance(y_item, NumericItem):
            y_item = None
        if x_item is None and y_item is None:
            continue
        bx_lo = max(x_lo, x_item.interval.lo) if x_item else x_lo
        bx_hi = min(x_hi, x_item.interval.hi) if x_item else x_hi
        by_lo = max(y_lo, y_item.interval.lo) if y_item else y_lo
        by_hi = min(y_hi, y_item.interval.hi) if y_item else y_hi
        c0, c1 = sorted((col_of(bx_lo), col_of(bx_hi)))
        r0, r1 = sorted((row_of(by_hi), row_of(by_lo)))
        for c in range(c0, c1 + 1):
            grid[r0][c] = _BOX_GLYPH
            grid[r1][c] = _BOX_GLYPH
        for r in range(r0, r1 + 1):
            grid[r][c0] = _BOX_GLYPH
            grid[r][c1] = _BOX_GLYPH

    legend = "  ".join(
        f"{_GROUP_GLYPHS[i % len(_GROUP_GLYPHS)]} = {label}"
        for i, label in enumerate(dataset.group_labels)
    )
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    footer = (
        f"{x}: [{x_lo:g}, {x_hi:g}]   {y}: [{y_lo:g}, {y_hi:g}]   "
        f"{legend}"
        + (f"   {_BOX_GLYPH} = pattern box" if patterns else "")
    )
    return "\n".join([border, body, border, footer])
