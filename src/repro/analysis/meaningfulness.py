"""Meaningfulness census (paper Section 5.6, Table 6).

For each dataset the paper takes the top-100 patterns found *without* the
meaningfulness filters and counts how many are redundant, unproductive, or
not independently productive — showing that the overwhelming majority of
unfiltered patterns would mislead the user.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import MinerConfig
from ..core.contrast import ContrastPattern
from ..core.meaningful import MeaningfulnessReport, classify_patterns
from ..dataset.table import Dataset
from .algorithms import run_algorithm

__all__ = ["MeaningfulnessCensus", "census"]


@dataclass
class MeaningfulnessCensus:
    """Aggregated counts for one dataset (one Table 6 row)."""

    dataset_name: str
    n_patterns: int
    n_meaningful: int
    n_redundant: int
    n_unproductive: int
    n_not_independently_productive: int
    report: MeaningfulnessReport

    @property
    def n_meaningless(self) -> int:
        return self.n_patterns - self.n_meaningful

    def formatted(self) -> str:
        return (
            f"{self.dataset_name}: {self.n_meaningful} meaningful / "
            f"{self.n_meaningless} meaningless "
            f"(redundant={self.n_redundant}, "
            f"unproductive={self.n_unproductive}, "
            f"not-indep-productive={self.n_not_independently_productive})"
        )


def census(
    dataset: Dataset,
    dataset_name: str = "dataset",
    algorithm: str = "sdad_np",
    config: MinerConfig | None = None,
    top: int = 100,
    alpha: float = 0.05,
) -> MeaningfulnessCensus:
    """Classify an algorithm's unfiltered top patterns (Table 6 protocol).

    The default algorithm is SDAD-CS NP — the paper analyses the patterns
    that survive *without* the novel pruning/filtering.
    """
    result = run_algorithm(algorithm, dataset, config)
    patterns = result.top(top)
    report = classify_patterns(patterns, dataset, alpha)
    return MeaningfulnessCensus(
        dataset_name=dataset_name,
        n_patterns=len(patterns),
        n_meaningful=report.n_meaningful,
        n_redundant=sum(report.redundant),
        n_unproductive=sum(report.unproductive),
        n_not_independently_productive=sum(
            report.not_independently_productive
        ),
        report=report,
    )
