"""Holdout validation of mined patterns.

The paper controls false discoveries analytically (Bonferroni ladder,
CLT bands, productivity tests).  The empirical counterpart — standard in
production deployments — is to mine on a training split and re-test every
pattern on held-out rows: a real contrast survives, a chance artefact
does not.  :func:`validate_patterns` implements that protocol and the
null-data bench uses it to show the miner's false-discovery behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.contrast import ContrastPattern, evaluate_itemset
from ..dataset.table import Dataset

__all__ = ["PatternValidation", "ValidationReport", "validate_patterns"]


@dataclass(frozen=True)
class PatternValidation:
    """One pattern's train-vs-holdout outcome."""

    pattern: ContrastPattern
    holdout: ContrastPattern
    survived: bool

    @property
    def train_difference(self) -> float:
        return self.pattern.support_difference

    @property
    def holdout_difference(self) -> float:
        return self.holdout.support_difference

    @property
    def shrinkage(self) -> float:
        """How much of the train difference remains on holdout (1 = all,
        0 = none; can exceed 1 when the holdout effect is larger)."""
        if self.train_difference == 0:
            return 0.0
        return self.holdout_difference / self.train_difference


@dataclass
class ValidationReport:
    validations: list[PatternValidation] = field(default_factory=list)

    @property
    def n_patterns(self) -> int:
        return len(self.validations)

    @property
    def n_survived(self) -> int:
        return sum(1 for v in self.validations if v.survived)

    @property
    def survival_rate(self) -> float:
        return (
            self.n_survived / self.n_patterns if self.validations else 0.0
        )

    @property
    def mean_shrinkage(self) -> float:
        if not self.validations:
            return 0.0
        return sum(v.shrinkage for v in self.validations) / len(
            self.validations
        )

    def survivors(self) -> list[ContrastPattern]:
        return [v.pattern for v in self.validations if v.survived]

    def formatted(self) -> str:
        return (
            f"{self.n_survived}/{self.n_patterns} patterns survived "
            f"holdout (mean shrinkage {self.mean_shrinkage:.2f})"
        )


def validate_patterns(
    patterns: Sequence[ContrastPattern],
    holdout: Dataset,
    delta: float = 0.1,
    alpha: float = 0.05,
    same_direction: bool = True,
) -> ValidationReport:
    """Re-test patterns on held-out data.

    A pattern *survives* when it is still a large and significant
    contrast on the holdout (and, by default, with the same dominant
    group).
    """
    report = ValidationReport()
    for pattern in patterns:
        revalidated = evaluate_itemset(pattern.itemset, holdout)
        survived = revalidated.is_contrast(delta, alpha)
        if survived and same_direction:
            survived = (
                revalidated.dominant_group == pattern.dominant_group
            )
        report.validations.append(
            PatternValidation(pattern, revalidated, survived)
        )
    return report
