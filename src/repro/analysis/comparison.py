"""Quantitative comparison harness (paper Section 5.6, Table 4).

The paper compares algorithms by the *mean difference in support* of their
top-k contrasts, where ``k`` is the smallest number of contrasts any
algorithm found (capped at 100), patterns are sorted by decreasing
difference, and a Wilcoxon-Mann-Whitney test marks algorithms whose top-k
distribution is not significantly different from the reference
(SDAD-CS NP) with ``*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.config import MinerConfig
from ..core.contrast import ContrastPattern
from ..core.stats import mann_whitney_u
from ..dataset.table import Dataset
from .algorithms import ALGORITHMS, AlgorithmResult, run_algorithm

__all__ = [
    "mean_top_k_difference",
    "AlgorithmComparison",
    "ComparisonRow",
    "compare_algorithms",
]


def mean_top_k_difference(
    patterns: Sequence[ContrastPattern], k: int
) -> float:
    """Mean support difference of the k best patterns (by difference)."""
    if k < 1 or not patterns:
        return 0.0
    ranked = sorted(patterns, key=lambda p: -p.support_difference)[:k]
    return sum(p.support_difference for p in ranked) / len(ranked)


@dataclass
class ComparisonRow:
    """One algorithm's entry in a Table 4 row."""

    algorithm: str
    mean_difference: float
    n_found: int
    p_value_vs_reference: float
    elapsed_seconds: float
    partitions_evaluated: int

    @property
    def statistically_same_as_reference(self) -> bool:
        """The paper's ``*`` marker (WMW not significant at 0.05)."""
        return self.p_value_vs_reference >= 0.05

    def formatted(self) -> str:
        star = "*" if self.statistically_same_as_reference else ""
        return f"{self.mean_difference:.2f}{star}"


@dataclass
class AlgorithmComparison:
    """All algorithms compared on one dataset."""

    dataset_name: str
    k_used: int
    rows: dict[str, ComparisonRow] = field(default_factory=dict)
    reference: str = "sdad_np"

    def row(self, algorithm: str) -> ComparisonRow:
        return self.rows[algorithm]


def compare_algorithms(
    dataset: Dataset,
    dataset_name: str = "dataset",
    algorithms: Sequence[str] = ("sdad_np", "mvd", "entropy", "cortana"),
    config: MinerConfig | None = None,
    k_cap: int = 100,
    reference: str | None = None,
) -> AlgorithmComparison:
    """Run the Table 4 protocol on one dataset.

    The first algorithm in ``algorithms`` is the WMW reference unless
    ``reference`` names another one.
    """
    if not algorithms:
        raise ValueError("need at least one algorithm")
    reference = reference or algorithms[0]
    if reference not in algorithms:
        raise ValueError("reference must be among the algorithms")

    results: dict[str, AlgorithmResult] = {
        name: run_algorithm(name, dataset, config) for name in algorithms
    }
    counts = [len(r.patterns) for r in results.values() if r.patterns]
    k = min([k_cap, *counts]) if counts else k_cap
    k = max(k, 1)

    def top_diffs(result: AlgorithmResult) -> list[float]:
        ranked = sorted(
            result.patterns, key=lambda p: -p.support_difference
        )[:k]
        return [p.support_difference for p in ranked]

    reference_diffs = top_diffs(results[reference])
    comparison = AlgorithmComparison(dataset_name, k, reference=reference)
    for name, result in results.items():
        diffs = top_diffs(result)
        p_value = (
            1.0
            if name == reference
            else mann_whitney_u(diffs, reference_diffs)
        )
        comparison.rows[name] = ComparisonRow(
            algorithm=result.name,
            mean_difference=(sum(diffs) / len(diffs)) if diffs else 0.0,
            n_found=len(result.patterns),
            p_value_vs_reference=p_value,
            elapsed_seconds=result.elapsed_seconds,
            partitions_evaluated=result.partitions_evaluated,
        )
    return comparison
