"""Pattern-set diversity metrics.

The paper's central quality argument is qualitative: Cortana's top-k "seem
to be redundant and cumbersome to interpret" while SDAD-CS "finds fewer
and more meaningful itemsets".  These metrics quantify that claim so the
ablation bench can print a number instead of an anecdote:

* **mean pairwise Jaccard overlap** of the patterns' covered row sets —
  1 means every pattern covers the same rows (pure redundancy);
* **attribute diversity** — distinct attributes used / total item slots;
* **coverage** — fraction of all rows covered by at least one pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.contrast import ContrastPattern
from ..dataset.table import Dataset

__all__ = ["DiversityReport", "diversity_report", "mean_pairwise_jaccard"]


def mean_pairwise_jaccard(masks: Sequence[np.ndarray]) -> float:
    """Mean Jaccard similarity over all pattern pairs (0 = disjoint,
    1 = identical coverage)."""
    n = len(masks)
    if n < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            union = int((masks[i] | masks[j]).sum())
            if union == 0:
                continue
            inter = int((masks[i] & masks[j]).sum())
            total += inter / union
            pairs += 1
    return total / pairs if pairs else 0.0


@dataclass(frozen=True)
class DiversityReport:
    n_patterns: int
    mean_jaccard: float
    attribute_diversity: float
    coverage: float

    def formatted(self) -> str:
        return (
            f"{self.n_patterns} patterns: "
            f"mean pairwise Jaccard {self.mean_jaccard:.2f}, "
            f"attribute diversity {self.attribute_diversity:.2f}, "
            f"row coverage {self.coverage:.2f}"
        )


def diversity_report(
    patterns: Sequence[ContrastPattern],
    dataset: Dataset,
    top: int | None = None,
) -> DiversityReport:
    """Compute the three diversity metrics for a pattern list."""
    patterns = list(patterns[:top] if top else patterns)
    if not patterns:
        return DiversityReport(0, 0.0, 0.0, 0.0)
    masks = [p.itemset.cover(dataset) for p in patterns]
    distinct_attrs: set[str] = set()
    slots = 0
    for pattern in patterns:
        distinct_attrs.update(pattern.itemset.attributes)
        slots += max(1, len(pattern.itemset))
    union = masks[0].copy()
    for mask in masks[1:]:
        union |= mask
    return DiversityReport(
        n_patterns=len(patterns),
        mean_jaccard=mean_pairwise_jaccard(masks),
        attribute_diversity=len(distinct_attrs) / slots,
        coverage=float(union.mean()) if dataset.n_rows else 0.0,
    )
