"""Plain-language explanations of contrast patterns.

The paper's target user is a process engineer, not a data miner
(Section 6: "The patterns shown here can be easily interpreted by
engineers").  This module turns a :class:`ContrastPattern` into the
sentence that engineer acts on — which rows, how large the effect, how
confident — and ranks a result list into a short briefing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.contrast import ContrastPattern
from ..core.items import CategoricalItem, NumericItem
from ..dataset.table import Dataset

__all__ = ["Explanation", "explain_pattern", "briefing"]


@dataclass(frozen=True)
class Explanation:
    pattern: ContrastPattern
    headline: str
    detail: str
    effect_ratio: float
    """How many times more frequent the covered condition is in the
    dominant group ( inf-safe: capped at 999)."""

    def __str__(self) -> str:
        return f"{self.headline}\n  {self.detail}"


def _condition_phrase(pattern: ContrastPattern) -> str:
    parts = []
    for item in pattern.itemset:
        if isinstance(item, CategoricalItem):
            parts.append(f"{item.attribute} is {item.value}")
        else:
            assert isinstance(item, NumericItem)
            iv = item.interval
            import math

            if math.isinf(iv.lo) and not math.isinf(iv.hi):
                parts.append(f"{item.attribute} is at most {iv.hi:g}")
            elif math.isinf(iv.hi) and not math.isinf(iv.lo):
                parts.append(f"{item.attribute} is above {iv.lo:g}")
            else:
                parts.append(
                    f"{item.attribute} is between {iv.lo:g} and {iv.hi:g}"
                )
    if not parts:
        return "any row"
    return " and ".join(parts)


def explain_pattern(pattern: ContrastPattern) -> Explanation:
    """One pattern -> one explanation."""
    dominant = pattern.dominant_group
    dom_index = pattern.group_labels.index(dominant)
    others = [
        (label, supp)
        for label, supp in zip(pattern.group_labels, pattern.supports)
        if label != dominant
    ]
    other_label, other_supp = max(others, key=lambda t: t[1])
    dom_supp = pattern.supports[dom_index]

    if other_supp > 0:
        ratio = min(dom_supp / other_supp, 999.0)
        ratio_text = f"{ratio:.1f}x more common"
    else:
        ratio = 999.0
        ratio_text = "present exclusively"

    condition = _condition_phrase(pattern)
    headline = (
        f"Where {condition}: {ratio_text} in '{dominant}' "
        f"({dom_supp:.0%} vs {other_supp:.0%} of '{other_label}')"
    )
    detail = (
        f"covers {pattern.total_count} rows; support difference "
        f"{pattern.support_difference:.2f}, purity {pattern.purity_ratio:.2f}, "
        f"p-value {pattern.significance_p_value:.2g}"
    )
    return Explanation(pattern, headline, detail, ratio)


def briefing(
    patterns: Sequence[ContrastPattern],
    max_items: int = 5,
    title: str = "Contrast briefing",
) -> str:
    """A short ranked briefing over a pattern list.

    Patterns are grouped by dominant group so the reader sees "what
    characterises the failures" separately from "what characterises the
    healthy population".
    """
    lines = [title, "=" * len(title)]
    if not patterns:
        lines.append("No significant contrasts were found.")
        return "\n".join(lines)

    by_group: dict[str, list[ContrastPattern]] = {}
    for pattern in patterns:
        by_group.setdefault(pattern.dominant_group, []).append(pattern)

    for group, group_patterns in by_group.items():
        lines.append(f"\nCharacteristic of '{group}':")
        ranked = sorted(
            group_patterns, key=lambda p: -p.support_difference
        )
        for i, pattern in enumerate(ranked[:max_items], 1):
            explanation = explain_pattern(pattern)
            lines.append(f"  {i}. {explanation.headline}")
            lines.append(f"     {explanation.detail}")
    return "\n".join(lines)
