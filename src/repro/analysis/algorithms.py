"""Uniform adapters running each algorithm end-to-end on a dataset.

Every experiment in Section 5 compares the same five pipelines:

* ``sdad``      — SDAD-CS with all pruning strategies,
* ``sdad_np``   — SDAD-CS NP (novel pruning off; the paper's level
  playing field for interest-measure comparisons),
* ``mvd``       — MVD global discretization + STUCCO,
* ``entropy``   — Fayyad-Irani MDLP discretization + STUCCO,
* ``cortana``   — beam-search subgroup discovery (intervals, WRAcc).

Each adapter returns an :class:`AlgorithmResult` whose patterns are
expressed over the *original* continuous attributes (bin-based miners'
patterns are converted back to intervals) and ranked by support
difference, which Table 4 uses as the cross-community comparable measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..baselines.cortana import CortanaConfig, cortana
from ..baselines.fayyad import fayyad_discretize
from ..baselines.mvd import mvd_discretize
from ..baselines.srikant import srikant_discretize
from ..baselines.stucco import StuccoConfig, stucco
from ..core.config import MinerConfig
from ..core.contrast import ContrastPattern
from ..core.instrumentation import MiningStats, Stopwatch
from ..core.miner import ContrastSetMiner
from ..dataset.table import Dataset

__all__ = ["AlgorithmResult", "ALGORITHMS", "run_algorithm"]


@dataclass
class AlgorithmResult:
    """Patterns + cost counters of one algorithm run."""

    name: str
    patterns: list[ContrastPattern]
    stats: MiningStats

    def top(self, n: int | None = None) -> list[ContrastPattern]:
        return self.patterns if n is None else self.patterns[:n]

    @property
    def elapsed_seconds(self) -> float:
        return self.stats.elapsed_seconds

    @property
    def partitions_evaluated(self) -> int:
        return self.stats.partitions_evaluated


def _ranked(patterns: Sequence[ContrastPattern]) -> list[ContrastPattern]:
    return sorted(patterns, key=lambda p: -p.support_difference)


def run_sdad(
    dataset: Dataset, config: MinerConfig | None = None
) -> AlgorithmResult:
    """SDAD-CS with all pruning strategies enabled."""
    config = config or MinerConfig()
    result = ContrastSetMiner(config).mine(dataset)
    return AlgorithmResult("SDAD-CS", _ranked(result.patterns), result.stats)


def run_sdad_np(
    dataset: Dataset, config: MinerConfig | None = None
) -> AlgorithmResult:
    """SDAD-CS NP: the same engine with the novel pruning rules off."""
    config = (config or MinerConfig()).no_pruning()
    result = ContrastSetMiner(config).mine(dataset)
    return AlgorithmResult(
        "SDAD-CS NP", _ranked(result.patterns), result.stats
    )


def _discretize_then_stucco(
    name: str,
    dataset: Dataset,
    discretize: Callable,
    config: MinerConfig | None,
) -> AlgorithmResult:
    config = config or MinerConfig()
    stats = MiningStats()
    with Stopwatch(stats):
        view = discretize(dataset)
        mined = stucco(
            view.dataset,
            StuccoConfig(
                delta=config.delta,
                alpha=config.alpha,
                max_depth=config.max_tree_depth,
                k=config.k,
            ),
        )
        patterns = view.restore_patterns(mined.patterns)
    stats.merge_from(mined.stats)
    return AlgorithmResult(name, _ranked(patterns), stats)


def run_mvd(
    dataset: Dataset, config: MinerConfig | None = None
) -> AlgorithmResult:
    """MVD discretization (100-instance basic bins) + STUCCO."""
    return _discretize_then_stucco("MVD", dataset, mvd_discretize, config)


def run_entropy(
    dataset: Dataset, config: MinerConfig | None = None
) -> AlgorithmResult:
    """Fayyad-Irani MDLP discretization + STUCCO."""
    return _discretize_then_stucco(
        "Entropy", dataset, fayyad_discretize, config
    )


def run_srikant(
    dataset: Dataset, config: MinerConfig | None = None
) -> AlgorithmResult:
    """Srikant-Agrawal equi-depth partitioning + STUCCO (ablation)."""
    return _discretize_then_stucco(
        "Srikant", dataset, srikant_discretize, config
    )


def run_cortana(
    dataset: Dataset, config: MinerConfig | None = None
) -> AlgorithmResult:
    """Cortana-style subgroup discovery with the paper's settings."""
    config = config or MinerConfig()
    result = cortana(
        dataset,
        CortanaConfig(depth=config.max_tree_depth, k=config.k),
    )
    return AlgorithmResult(
        "Cortana-Interval", _ranked(result.patterns), result.stats
    )


ALGORITHMS: dict[str, Callable[..., AlgorithmResult]] = {
    "sdad": run_sdad,
    "sdad_np": run_sdad_np,
    "mvd": run_mvd,
    "entropy": run_entropy,
    "cortana": run_cortana,
    "srikant": run_srikant,
}


def run_algorithm(
    name: str, dataset: Dataset, config: MinerConfig | None = None
) -> AlgorithmResult:
    """Run a registered algorithm by key."""
    try:
        runner = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    return runner(dataset, config)
