"""CSV import/export with schema inference (no pandas dependency).

Real deployments of the miner read operational exports; the examples and
tests round-trip datasets through this module.  Inference rules: a column
parses as continuous if every non-missing value is a float; otherwise it is
categorical.  The group column is named explicitly.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from .schema import Attribute, Schema
from .table import Dataset, DatasetError

__all__ = ["read_csv", "write_csv", "infer_schema"]

_MISSING = {"", "?", "na", "n/a", "nan", "null", "none"}


def _is_missing(token: str) -> bool:
    return token.strip().lower() in _MISSING


def _parse_rows(text: str, delimiter: str) -> tuple[list[str], list[list[str]]]:
    reader = csv.reader(_io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise DatasetError("empty CSV input")
    header, body = rows[0], rows[1:]
    width = len(header)
    for i, row in enumerate(body):
        if len(row) != width:
            raise DatasetError(
                f"row {i + 2} has {len(row)} fields, expected {width}"
            )
    return [h.strip() for h in header], [
        [cell.strip() for cell in row] for row in body
    ]


def infer_schema(
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    group_column: str,
) -> Schema:
    """Infer attribute kinds from string cells.

    A column is continuous when every non-missing cell parses as a float;
    categorical otherwise (categories in first-appearance order).
    """
    if group_column not in header:
        raise DatasetError(f"group column {group_column!r} not in header")
    attributes: list[Attribute] = []
    for j, name in enumerate(header):
        if name == group_column:
            continue
        cells = [row[j] for row in rows if not _is_missing(row[j])]
        continuous = bool(cells)
        for cell in cells:
            try:
                float(cell)
            except ValueError:
                continuous = False
                break
        if continuous:
            attributes.append(Attribute.continuous(name))
        else:
            categories = tuple(dict.fromkeys(cells))
            if not categories:
                raise DatasetError(f"column {name!r} has no usable values")
            attributes.append(Attribute.categorical(name, categories))
    return Schema.of(attributes)


def read_csv(
    path: str | Path,
    group_column: str,
    delimiter: str = ",",
    schema: Schema | None = None,
    drop_missing: bool = True,
    missing: str | None = None,
) -> Dataset:
    """Load a CSV file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        File to read.
    group_column:
        Name of the column holding group membership.
    schema:
        Optional pre-built schema; inferred from the data when omitted.
    drop_missing:
        Legacy toggle: drop rows with any missing cell (True, default) or
        raise on them (False).  Ignored when ``missing`` is given.
    missing:
        Missing-value policy overriding ``drop_missing``:

        * ``"drop"`` — drop incomplete rows;
        * ``"keep"`` — keep them: missing continuous cells become NaN
          (never covered by any numeric item) and missing categorical
          cells become an explicit ``"?"`` category;
        * ``"error"`` — raise on the first missing cell.
    """
    if missing is None:
        missing = "drop" if drop_missing else "error"
    if missing not in ("drop", "keep", "error"):
        raise ValueError("missing must be 'drop', 'keep', or 'error'")

    text = Path(path).read_text()
    header, rows = _parse_rows(text, delimiter)
    if missing == "drop":
        rows = [
            row for row in rows if not any(_is_missing(cell) for cell in row)
        ]
    elif missing == "error":
        for i, row in enumerate(rows):
            if any(_is_missing(cell) for cell in row):
                raise DatasetError(f"missing value in row {i + 2}")
    else:  # keep
        for i, row in enumerate(rows):
            if _is_missing(row[header.index(group_column)]):
                raise DatasetError(
                    f"missing group label in row {i + 2}; the group "
                    "column cannot be missing"
                )
    if not rows:
        raise DatasetError("no complete rows in CSV input")
    if schema is None:
        schema = infer_schema(header, rows, group_column)

    if missing == "keep":
        # rewrite missing cells: NaN for continuous, "?" for categorical
        index = {name: j for j, name in enumerate(header)}
        patched_attrs = []
        for attr in schema:
            j = index[attr.name]
            has_missing = any(_is_missing(row[j]) for row in rows)
            if not has_missing:
                patched_attrs.append(attr)
                continue
            if attr.is_continuous:
                for row in rows:
                    if _is_missing(row[j]):
                        row[j] = "nan"
                patched_attrs.append(attr)
            else:
                categories = attr.categories
                if "?" not in categories:
                    categories = categories + ("?",)
                for row in rows:
                    if _is_missing(row[j]):
                        row[j] = "?"
                patched_attrs.append(
                    Attribute.categorical(attr.name, categories)
                )
        schema = Schema.of(patched_attrs)

    index = {name: j for j, name in enumerate(header)}
    records = (
        {name: row[index[name]] for name in list(schema.names) + [group_column]}
        for row in rows
    )
    # from_records expects the group under its own key name
    return Dataset.from_records(records, schema, group_name=group_column)


def write_csv(
    dataset: Dataset, path: str | Path, delimiter: str = ","
) -> None:
    """Write a dataset (including its group column) to CSV."""
    path = Path(path)
    header = list(dataset.schema.names) + [dataset.group_name]
    codes = dataset.group_codes
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(header)
        columns = []
        for attr in dataset.schema:
            col = dataset.column(attr.name)
            if attr.is_categorical:
                columns.append([attr.label_of(int(c)) for c in col])
            else:
                columns.append([repr(float(v)) for v in col])
        groups = [dataset.group_labels[int(c)] for c in codes]
        for i in range(dataset.n_rows):
            writer.writerow([col[i] for col in columns] + [groups[i]])
