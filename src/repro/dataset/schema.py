"""Schema description for mixed (categorical + continuous) tabular data.

The paper operates on datasets ``DB`` with ``m`` rows and ``n`` attributes,
where each attribute is either *categorical* (finite value domain) or
*continuous* (real-valued), plus one extra *group* attribute assigning each
row to exactly one group (Section 3 of the paper).

This module defines the lightweight, immutable schema objects used by
:class:`repro.dataset.table.Dataset`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

__all__ = ["AttributeKind", "Attribute", "Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised when a schema is internally inconsistent or misused."""


class AttributeKind(enum.Enum):
    """Kind of an attribute: categorical or continuous.

    The group column is modeled as a categorical attribute that is held
    separately by the :class:`~repro.dataset.table.Dataset`, not as a kind.
    """

    CATEGORICAL = "categorical"
    CONTINUOUS = "continuous"

    @property
    def is_continuous(self) -> bool:
        return self is AttributeKind.CONTINUOUS

    @property
    def is_categorical(self) -> bool:
        return self is AttributeKind.CATEGORICAL


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a dataset.

    Parameters
    ----------
    name:
        Unique column name.
    kind:
        Whether the column holds categorical codes or real numbers.
    categories:
        For categorical attributes, the ordered tuple of category labels.
        Values in the column are integer codes indexing this tuple.
        Empty for continuous attributes.
    """

    name: str
    kind: AttributeKind
    categories: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.kind.is_categorical:
            if len(self.categories) == 0:
                raise SchemaError(
                    f"categorical attribute {self.name!r} needs categories"
                )
            if len(set(self.categories)) != len(self.categories):
                raise SchemaError(
                    f"attribute {self.name!r} has duplicate categories"
                )
        elif self.categories:
            raise SchemaError(
                f"continuous attribute {self.name!r} cannot have categories"
            )

    @property
    def is_continuous(self) -> bool:
        return self.kind.is_continuous

    @property
    def is_categorical(self) -> bool:
        return self.kind.is_categorical

    @property
    def cardinality(self) -> int:
        """Number of category labels (0 for continuous attributes)."""
        return len(self.categories)

    def code_of(self, label: str) -> int:
        """Return the integer code of a category label.

        Raises :class:`SchemaError` for continuous attributes or unknown
        labels.
        """
        if self.is_continuous:
            raise SchemaError(f"{self.name!r} is continuous; no categories")
        try:
            return self.categories.index(label)
        except ValueError:
            raise SchemaError(
                f"unknown category {label!r} for attribute {self.name!r}"
            ) from None

    def label_of(self, code: int) -> str:
        """Return the category label for an integer code."""
        if self.is_continuous:
            raise SchemaError(f"{self.name!r} is continuous; no categories")
        if not 0 <= code < len(self.categories):
            raise SchemaError(
                f"code {code} out of range for attribute {self.name!r}"
            )
        return self.categories[code]

    @staticmethod
    def categorical(name: str, categories: Sequence[str]) -> "Attribute":
        """Convenience constructor for a categorical attribute."""
        return Attribute(name, AttributeKind.CATEGORICAL, tuple(categories))

    @staticmethod
    def continuous(name: str) -> "Attribute":
        """Convenience constructor for a continuous attribute."""
        return Attribute(name, AttributeKind.CONTINUOUS)


@dataclass(frozen=True)
class Schema:
    """Ordered collection of :class:`Attribute` objects with name lookup."""

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")

    @staticmethod
    def of(attributes: Iterable[Attribute]) -> "Schema":
        return Schema(tuple(attributes))

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(a.name == name for a in self.attributes)

    def __getitem__(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(name)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def continuous_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.is_continuous)

    @property
    def categorical_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.is_categorical)

    def index_of(self, name: str) -> int:
        """Position of an attribute in the schema order."""
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise KeyError(name)

    def subset(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to the given names, preserving schema order."""
        wanted = set(names)
        missing = wanted - set(self.names)
        if missing:
            raise KeyError(f"unknown attributes: {sorted(missing)}")
        return Schema(tuple(a for a in self.attributes if a.name in wanted))

    def with_attribute(self, attribute: Attribute) -> "Schema":
        """Return a new schema with one more attribute appended."""
        return Schema(self.attributes + (attribute,))
