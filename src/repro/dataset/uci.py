"""Synthetic stand-ins for the UCI datasets of Table 2.

The evaluation machines cannot download the UCI repository (offline
substrate), so each generator below produces a dataset with the *same*
group labels, group-size ratio, and feature counts as Table 2 of the paper,
and with planted group-dependent structure that mirrors what the paper
reports finding on the real data (see DESIGN.md, substitution #1):

* **Adult** reproduces the Figure 4 / Table 1 story: Doctorates are older,
  work longer hours (with an age x hours interaction), are predominantly
  Prof-specialty, more often male, and more often earn >50K (Table 3).
* **Shuttle** plants the near-pure level-1 contrasts the paper quotes
  (``Attr_1 <= 54`` with probabilities 0.91 vs 0.01; ``Attr_9 <= 2`` with
  0.77 vs 0) that make unpruned averages look strong.
* The remaining datasets carry strong (Breast, Ionosphere), moderate
  (Spambase, Mammography, Census, Covtype), or weak (Adult, Transfusion,
  Credit Card) signals so the Table 4 magnitudes line up by band.

Every generator is deterministic given its seed.  Datasets whose real
counterparts exceed ~50k rows accept a ``scale`` factor and default to a
laptop-friendly fraction; pass ``scale=1.0`` to regenerate full Table 2
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .schema import Attribute, Schema
from .table import Dataset

__all__ = [
    "adult",
    "spambase",
    "breast_cancer",
    "mammography",
    "transfusion",
    "shuttle",
    "credit_card",
    "census_income",
    "ionosphere",
    "covtype",
    "DATASET_REGISTRY",
    "load",
    "TABLE2_SHAPES",
]


# (group labels), (rows per group at scale=1), n features, n continuous
TABLE2_SHAPES: dict[str, tuple[tuple[str, str], tuple[int, int], int, int]] = {
    "adult": (("Bachelors", "Doctorate"), (8025, 594), 13, 5),
    "spambase": (("Spam", "No Spam"), (1813, 2788), 57, 57),
    "breast_cancer": (("Benign", "Malignant"), (458, 241), 10, 10),
    "mammography": (("Severe", "Not Severe"), (445, 516), 5, 5),
    "transfusion": (("Donated", "Not Donated"), (570, 178), 4, 4),
    "shuttle": (("Rad Flow", "High"), (45586, 8903), 9, 9),
    "credit_card": (("No", "Yes"), (23363, 6635), 24, 23),
    "census_income": (("Below 50K", "Above 50K"), (187141, 12382), 39, 11),
    "ionosphere": (("g", "b"), (225, 126), 34, 34),
    "covtype": (("Spruce-Fir", "Lodgepole Pine"), (211840, 283301), 54, 10),
}


def _sizes(name: str, scale: float) -> tuple[int, int]:
    (_, (n0, n1), _, _) = TABLE2_SHAPES[name]
    return max(20, int(round(n0 * scale))), max(20, int(round(n1 * scale)))


def _assemble(
    name: str,
    scale: float,
    continuous: dict[str, tuple[np.ndarray, np.ndarray]],
    categorical: dict[
        str, tuple[Sequence[str], np.ndarray, np.ndarray]
    ] = {},
    rng: np.random.Generator | None = None,
) -> Dataset:
    """Stack per-group columns into a shuffled Dataset.

    ``continuous[name] = (values_group0, values_group1)``;
    ``categorical[name] = (categories, codes_group0, codes_group1)``.
    """
    labels, _, _, _ = TABLE2_SHAPES[name]
    rng = rng or np.random.default_rng(0)
    n0 = len(next(iter(continuous.values()))[0]) if continuous else len(
        next(iter(categorical.values()))[1]
    )
    n1 = len(next(iter(continuous.values()))[1]) if continuous else len(
        next(iter(categorical.values()))[2]
    )
    order = rng.permutation(n0 + n1)
    groups = np.concatenate(
        [np.zeros(n0, dtype=np.int64), np.ones(n1, dtype=np.int64)]
    )[order]

    attributes: list[Attribute] = []
    columns: dict[str, np.ndarray] = {}
    for col_name, (g0, g1) in continuous.items():
        attributes.append(Attribute.continuous(col_name))
        columns[col_name] = np.concatenate([g0, g1])[order]
    for col_name, (categories, g0, g1) in categorical.items():
        attributes.append(Attribute.categorical(col_name, categories))
        columns[col_name] = np.concatenate([g0, g1]).astype(np.int64)[order]
    return Dataset(Schema.of(attributes), columns, groups, labels)


def _choice(
    rng: np.random.Generator, n: int, probs: Sequence[float]
) -> np.ndarray:
    probs = np.asarray(probs, dtype=float)
    probs = probs / probs.sum()
    return rng.choice(len(probs), size=n, p=probs)


# ---------------------------------------------------------------------------
# Adult — the paper's main qualitative case study (Tables 1, 3; Figure 4)
# ---------------------------------------------------------------------------

def adult(scale: float = 1.0, seed: int = 101) -> Dataset:
    """Adult census stand-in: Bachelors (8025) vs Doctorate (594).

    13 features, 5 continuous.  Planted structure (matching the paper's
    findings on the real Adult data):

    * ``age``: Bachelors concentrated 19-45 (many under 26); Doctorates
      28-75 with almost nobody under 27 (Figure 4a).
    * ``hours-per-week``: Bachelors centred on 40 with a large <=40 mass;
      Doctorates often 50-99 (Figure 4b).
    * Interaction: Doctorates aged ~49-69 work the longest hours — the
      joint bin the paper highlights as Table 1 contrast #5.
    * ``occupation = Prof-specialty``: 0.76 vs 0.28 (Table 3 anchor);
      ``sex = Male``: 0.81 vs 0.69; ``class = >50K``: 0.73 vs 0.41.
      ``fnlwgt``, ``education-num``, ``capital-gain`` behave as in the
      real data (noise, constant-ish, zero-inflated).
    """
    rng = np.random.default_rng(seed)
    n_b, n_d = _sizes("adult", scale)

    # --- age (Figure 4a): tuned so supp(Bach, 19-26) ~ 0.16 and
    # supp(Bach, 47-90) ~ 0.22, the Table 1 anchor values ------------------
    age_b = np.clip(rng.gamma(2.6, 8.2, n_b) + 17, 18, 90)
    age_d = np.clip(rng.normal(48, 12, n_d), 27, 90)

    # --- hours-per-week (Figure 4b), with the age interaction ------------
    hours_b = np.clip(rng.normal(39, 9, n_b), 1, 99)
    base_d = np.clip(rng.normal(47, 12, n_d), 1, 99)
    prime = (age_d > 47) & (age_d <= 69)
    hours_d = np.where(
        prime & (rng.uniform(0, 1, n_d) < 0.55),
        np.clip(rng.normal(60, 9, n_d), 50, 99),
        base_d,
    )

    # --- other continuous -------------------------------------------------
    fnlwgt_b = rng.lognormal(12.0, 0.45, n_b)
    fnlwgt_d = rng.lognormal(12.0, 0.45, n_d)
    # capital-loss: zero-inflated, mildly group-dependent (the paper's
    # feature set drops education/education-num, whose values define the
    # groups, and keeps capital-loss as the fifth continuous attribute)
    loss_b = np.where(
        rng.uniform(0, 1, n_b) < 0.045, rng.lognormal(7.5, 0.4, n_b), 0.0
    )
    loss_d = np.where(
        rng.uniform(0, 1, n_d) < 0.09, rng.lognormal(7.6, 0.4, n_d), 0.0
    )
    gain_b = np.where(
        rng.uniform(0, 1, n_b) < 0.08, rng.lognormal(8.5, 1.0, n_b), 0.0
    )
    gain_d = np.where(
        rng.uniform(0, 1, n_d) < 0.18, rng.lognormal(9.0, 1.0, n_d), 0.0
    )

    # --- categoricals ------------------------------------------------------
    occupations = (
        "Prof-specialty",
        "Exec-managerial",
        "Sales",
        "Adm-clerical",
        "Tech-support",
        "Other-service",
    )
    occ_b = _choice(rng, n_b, [0.28, 0.24, 0.18, 0.12, 0.10, 0.08])
    occ_d = _choice(rng, n_d, [0.76, 0.10, 0.04, 0.03, 0.05, 0.02])
    sex_b = _choice(rng, n_b, [0.31, 0.69])  # Female, Male
    sex_d = _choice(rng, n_d, [0.19, 0.81])
    klass_b = _choice(rng, n_b, [0.59, 0.41])  # <=50K, >50K
    klass_d = _choice(rng, n_d, [0.27, 0.73])
    marital = ("Married", "Never-married", "Divorced")
    mar_b = _choice(rng, n_b, [0.52, 0.33, 0.15])
    mar_d = _choice(rng, n_d, [0.68, 0.20, 0.12])
    race = ("White", "Black", "Asian-Pac", "Other")
    race_b = _choice(rng, n_b, [0.85, 0.09, 0.04, 0.02])
    race_d = _choice(rng, n_d, [0.82, 0.06, 0.10, 0.02])
    workclass = ("Private", "Gov", "Self-emp")
    wc_b = _choice(rng, n_b, [0.74, 0.14, 0.12])
    wc_d = _choice(rng, n_d, [0.45, 0.35, 0.20])
    relationship = ("Husband", "Wife", "Not-in-family", "Own-child")
    rel_b = _choice(rng, n_b, [0.42, 0.11, 0.33, 0.14])
    rel_d = _choice(rng, n_d, [0.55, 0.13, 0.28, 0.04])
    country = ("United-States", "Other")
    cty_b = _choice(rng, n_b, [0.91, 0.09])
    cty_d = _choice(rng, n_d, [0.86, 0.14])

    return _assemble(
        "adult",
        scale,
        continuous={
            "age": (age_b, age_d),
            "fnlwgt": (fnlwgt_b, fnlwgt_d),
            "capital-loss": (loss_b, loss_d),
            "capital-gain": (gain_b, gain_d),
            "hours-per-week": (hours_b, hours_d),
        },
        categorical={
            "occupation": (occupations, occ_b, occ_d),
            "sex": (("Female", "Male"), sex_b, sex_d),
            "class": (("<=50K", ">50K"), klass_b, klass_d),
            "marital-status": (marital, mar_b, mar_d),
            "race": (race, race_b, race_d),
            "workclass": (workclass, wc_b, wc_d),
            "relationship": (relationship, rel_b, rel_d),
            "native-country": (country, cty_b, cty_d),
        },
        rng=rng,
    )


# ---------------------------------------------------------------------------
# The remaining nine stand-ins
# ---------------------------------------------------------------------------

def _shifted_block(
    rng: np.random.Generator,
    n0: int,
    n1: int,
    n_features: int,
    prefix: str,
    n_informative: int,
    shift: float,
    scale0: float = 1.0,
    scale1: float = 1.0,
    start: int = 1,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """A block of continuous features; the first ``n_informative`` are
    mean-shifted by ``shift`` (alternating sign) in group 1."""
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for i in range(n_features):
        name = f"{prefix}{start + i}"
        sign = 1.0 if i % 2 == 0 else -1.0
        delta = shift * sign if i < n_informative else 0.0
        out[name] = (
            rng.normal(0.0, scale0, n0),
            rng.normal(delta, scale1, n1),
        )
    return out


def spambase(scale: float = 1.0, seed: int = 102) -> Dataset:
    """Spambase stand-in: 57 continuous word/char frequency features.

    A handful of "spam words" have strongly elevated, zero-inflated
    frequencies in the Spam group (real word-frequency columns are mostly
    zero); most columns are noise.  Signal strength tuned to the paper's
    strong-but-not-perfect band (mean top-k diff ~0.6).
    """
    rng = np.random.default_rng(seed)
    n_s, n_n = _sizes("spambase", scale)
    continuous: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def freq(n, p_nonzero, mean):
        nonzero = rng.uniform(0, 1, n) < p_nonzero
        return np.where(nonzero, rng.exponential(mean, n), 0.0)

    informative = [
        ("word_freq_free", 0.70, 0.9, 0.10, 0.2),
        ("word_freq_money", 0.62, 0.8, 0.08, 0.15),
        ("word_freq_credit", 0.55, 0.7, 0.06, 0.1),
        ("word_freq_000", 0.50, 0.6, 0.05, 0.1),
        ("char_freq_dollar", 0.66, 0.5, 0.12, 0.1),
        ("char_freq_bang", 0.72, 1.1, 0.22, 0.3),
        ("capital_run_length_avg", 0.95, 6.0, 0.80, 2.0),
        ("capital_run_length_max", 0.95, 60.0, 0.80, 15.0),
    ]
    for name, p_s, m_s, p_n, m_n in informative:
        continuous[name] = (freq(n_s, p_s, m_s), freq(n_n, p_n, m_n))
    for i in range(57 - len(informative)):
        name = f"word_freq_w{i + 1}"
        p = float(rng.uniform(0.05, 0.4))
        m = float(rng.uniform(0.1, 0.6))
        continuous[name] = (freq(n_s, p, m), freq(n_n, p, m))
    return _assemble("spambase", scale, continuous, rng=rng)


def breast_cancer(scale: float = 1.0, seed: int = 103) -> Dataset:
    """Breast Cancer (Wisconsin) stand-in: 10 cytology scores in [1, 10].

    Benign cases score low on every feature; malignant cases high on most
    — the near-separable structure behind the paper's 0.86 mean diff.
    """
    rng = np.random.default_rng(seed)
    n_b, n_m = _sizes("breast_cancer", scale)
    names = [
        "clump_thickness",
        "cell_size_uniformity",
        "cell_shape_uniformity",
        "marginal_adhesion",
        "epithelial_cell_size",
        "bare_nuclei",
        "bland_chromatin",
        "normal_nucleoli",
        "mitoses",
        "cell_density",
    ]
    continuous = {}
    for i, name in enumerate(names):
        strong = i < 7
        lo = np.clip(rng.gamma(1.6, 0.9, n_b) + 1, 1, 10)
        hi_shape = 6.6 if strong else 3.5
        hi = np.clip(rng.normal(hi_shape, 2.0, n_m), 1, 10)
        continuous[name] = (np.round(lo), np.round(hi))
    return _assemble("breast_cancer", scale, continuous, rng=rng)


def mammography(scale: float = 1.0, seed: int = 104) -> Dataset:
    """Mammographic masses stand-in: 5 continuous features, moderate
    separation (BI-RADS-like score, age, shape, margin, density)."""
    rng = np.random.default_rng(seed)
    n_s, n_n = _sizes("mammography", scale)
    continuous = {
        "birads": (
            np.clip(np.round(rng.normal(4.6, 0.7, n_s)), 1, 6),
            np.clip(np.round(rng.normal(3.9, 0.7, n_n)), 1, 6),
        ),
        "age": (
            np.clip(rng.normal(62, 13, n_s), 20, 95),
            np.clip(rng.normal(52, 14, n_n), 18, 95),
        ),
        "shape": (
            np.clip(np.round(rng.normal(3.3, 0.9, n_s)), 1, 4),
            np.clip(np.round(rng.normal(2.1, 1.0, n_n)), 1, 4),
        ),
        "margin": (
            np.clip(np.round(rng.normal(3.8, 1.1, n_s)), 1, 5),
            np.clip(np.round(rng.normal(2.2, 1.2, n_n)), 1, 5),
        ),
        "density": (
            np.clip(np.round(rng.normal(2.9, 0.5, n_s)), 1, 4),
            np.clip(np.round(rng.normal(2.8, 0.5, n_n)), 1, 4),
        ),
    }
    return _assemble("mammography", scale, continuous, rng=rng)


def transfusion(scale: float = 1.0, seed: int = 105) -> Dataset:
    """Blood transfusion stand-in: 4 continuous RFM-T features with the
    weak signal band of the paper (mean diff ~0.34)."""
    rng = np.random.default_rng(seed)
    n_d, n_n = _sizes("transfusion", scale)
    freq_d = np.clip(rng.gamma(2.4, 2.6, n_d), 1, 50)
    freq_n = np.clip(rng.gamma(1.5, 2.2, n_n), 1, 50)
    continuous = {
        "recency_months": (
            np.clip(rng.gamma(1.7, 3.4, n_d), 0, 74),
            np.clip(rng.gamma(2.8, 4.6, n_n), 0, 74),
        ),
        "frequency_times": (freq_d, freq_n),
        "monetary_blood": (freq_d * 250.0, freq_n * 250.0),
        "time_months": (
            np.clip(rng.gamma(3.2, 11.0, n_d), 2, 98),
            np.clip(rng.gamma(2.6, 11.0, n_n), 2, 98),
        ),
    }
    return _assemble("transfusion", scale, continuous, rng=rng)


def shuttle(scale: float = 0.1, seed: int = 106) -> Dataset:
    """Statlog Shuttle stand-in (default 10% of the 54k rows).

    Plants the paper's quoted near-pure level-1 contrasts:
    ``Attr_1 <= 54`` holds for ~91% of "Rad Flow" vs ~1% of "High", and
    ``Attr_9 <= 2`` for ~77% vs ~0%.
    """
    rng = np.random.default_rng(seed)
    n_r, n_h = _sizes("shuttle", scale)

    low1 = rng.uniform(0, 1, n_r) < 0.91
    attr1_r = np.where(low1, rng.uniform(27, 54, n_r), rng.uniform(55, 126, n_r))
    high1 = rng.uniform(0, 1, n_h) < 0.99
    attr1_h = np.where(high1, rng.uniform(55, 126, n_h), rng.uniform(27, 54, n_h))

    low9 = rng.uniform(0, 1, n_r) < 0.77
    attr9_r = np.where(low9, rng.uniform(0, 2, n_r), rng.uniform(3, 80, n_r))
    attr9_h = rng.uniform(3, 80, n_h)

    continuous = {
        "Attr_1": (attr1_r, attr1_h),
        "Attr_9": (attr9_r, attr9_h),
    }
    continuous.update(
        _shifted_block(
            rng, n_r, n_h, 7, "Attr_", n_informative=3, shift=1.2, start=2
        )
    )
    return _assemble("shuttle", scale, continuous, rng=rng)


def credit_card(scale: float = 0.2, seed: int = 107) -> Dataset:
    """Default-of-credit-card-clients stand-in: 23 continuous + 1
    categorical feature, weak overlapping signals (mean diff ~0.26)."""
    rng = np.random.default_rng(seed)
    n_no, n_yes = _sizes("credit_card", scale)
    continuous: dict[str, tuple[np.ndarray, np.ndarray]] = {
        "limit_bal": (
            rng.lognormal(11.9, 0.8, n_no),
            rng.lognormal(11.5, 0.8, n_yes),
        ),
        "age": (
            np.clip(rng.normal(35, 9, n_no), 21, 75),
            np.clip(rng.normal(36, 9.5, n_yes), 21, 75),
        ),
    }
    for month in range(1, 7):
        # repayment status: defaulters skew into delay (positive values)
        continuous[f"pay_{month}"] = (
            np.round(np.clip(rng.normal(-0.3, 1.0, n_no), -2, 8)),
            np.round(np.clip(rng.normal(0.9, 1.4, n_yes), -2, 8)),
        )
    for month in range(1, 7):
        continuous[f"bill_amt{month}"] = (
            rng.lognormal(9.9, 1.3, n_no),
            rng.lognormal(10.1, 1.3, n_yes),
        )
    for month in range(1, 7):
        continuous[f"pay_amt{month}"] = (
            rng.lognormal(8.4, 1.2, n_no),
            rng.lognormal(7.8, 1.3, n_yes),
        )
    continuous["utilisation"] = (
        np.clip(rng.beta(2.0, 4.0, n_no), 0, 1),
        np.clip(rng.beta(3.2, 2.4, n_yes), 0, 1),
    )
    continuous["months_as_customer"] = (
        np.clip(rng.gamma(2.4, 18, n_no), 1, 240),
        np.clip(rng.gamma(2.2, 16, n_yes), 1, 240),
    )
    continuous["num_cards"] = (
        np.clip(np.round(rng.gamma(2.0, 1.2, n_no)), 1, 12),
        np.clip(np.round(rng.gamma(2.2, 1.3, n_yes)), 1, 12),
    )
    categorical = {
        "sex": (
            ("male", "female"),
            _choice(rng, n_no, [0.39, 0.61]),
            _choice(rng, n_yes, [0.43, 0.57]),
        )
    }
    return _assemble("credit_card", scale, continuous, categorical, rng=rng)


def census_income(scale: float = 0.05, seed: int = 108) -> Dataset:
    """Census-Income (KDD) stand-in: 39 features, 11 continuous, strongly
    imbalanced groups (default 5% of the ~200k rows)."""
    rng = np.random.default_rng(seed)
    n_lo, n_hi = _sizes("census_income", scale)
    continuous = {
        "age": (
            np.clip(rng.gamma(2.6, 13.0, n_lo), 16, 90),
            np.clip(rng.normal(46, 11, n_hi), 22, 90),
        ),
        "wage_per_hour": (
            np.where(
                rng.uniform(0, 1, n_lo) < 0.25,
                rng.lognormal(6.2, 0.6, n_lo),
                0.0,
            ),
            np.where(
                rng.uniform(0, 1, n_hi) < 0.45,
                rng.lognormal(6.9, 0.6, n_hi),
                0.0,
            ),
        ),
        "capital_gains": (
            np.where(
                rng.uniform(0, 1, n_lo) < 0.03,
                rng.lognormal(8.2, 1.1, n_lo),
                0.0,
            ),
            np.where(
                rng.uniform(0, 1, n_hi) < 0.32,
                rng.lognormal(9.4, 1.0, n_hi),
                0.0,
            ),
        ),
        "weeks_worked": (
            np.clip(rng.normal(30, 22, n_lo), 0, 52),
            np.clip(rng.normal(50, 6, n_hi), 0, 52),
        ),
    }
    continuous.update(
        _shifted_block(
            rng, n_lo, n_hi, 7, "num_", n_informative=3, shift=0.9
        )
    )
    categorical: dict[str, tuple[Sequence[str], np.ndarray, np.ndarray]] = {}
    # 28 categorical features; a few informative, the rest background
    categorical["education"] = (
        ("HS", "College", "Bachelors", "Advanced"),
        _choice(rng, n_lo, [0.45, 0.30, 0.18, 0.07]),
        _choice(rng, n_hi, [0.12, 0.18, 0.36, 0.34]),
    )
    categorical["full_time"] = (
        ("yes", "no"),
        _choice(rng, n_lo, [0.52, 0.48]),
        _choice(rng, n_hi, [0.91, 0.09]),
    )
    categorical["sex"] = (
        ("Female", "Male"),
        _choice(rng, n_lo, [0.52, 0.48]),
        _choice(rng, n_hi, [0.23, 0.77]),
    )
    for i in range(25):
        cats = tuple(f"v{j}" for j in range(3))
        probs = rng.dirichlet(np.ones(3))
        categorical[f"cat_{i + 1}"] = (
            cats,
            _choice(rng, n_lo, probs),
            _choice(rng, n_hi, probs),
        )
    return _assemble("census_income", scale, continuous, categorical, rng=rng)


def ionosphere(scale: float = 1.0, seed: int = 109) -> Dataset:
    """Ionosphere stand-in: 34 continuous radar returns in [-1, 1].

    Good returns are coherent — high values on many pulses, with strong
    cross-pulse correlation; bad returns are incoherent, so consecutive
    pulse *pairs* lose their correlation structure (a local multivariate
    interaction that global per-attribute discretizers cannot express).
    Strong signal overall (paper band: mean diff ~0.76).
    """
    rng = np.random.default_rng(seed)
    n_g, n_b = _sizes("ionosphere", scale)
    continuous = {}
    for i in range(0, 8, 2):
        # coherent pairs: good pulses move together, bad anti-correlate
        u_g = rng.uniform(-0.75, 0.75, n_g)
        u_b = rng.uniform(-0.75, 0.75, n_b)
        continuous[f"pulse_{i + 1}"] = (
            np.clip(u_g + rng.normal(0, 0.12, n_g), -1, 1),
            np.clip(u_b + rng.normal(0, 0.12, n_b), -1, 1),
        )
        continuous[f"pulse_{i + 2}"] = (
            np.clip(u_g + rng.normal(0, 0.12, n_g), -1, 1),
            np.clip(-u_b + rng.normal(0, 0.12, n_b), -1, 1),
        )
    for i in range(8, 14):
        # coherence-amplitude pulses: good strong, bad noisy around zero
        g = np.clip(rng.normal(0.72, 0.22, n_g), -1, 1)
        b = np.clip(rng.normal(0.05, 0.50, n_b), -1, 1)
        continuous[f"pulse_{i + 1}"] = (g, b)
    for i in range(14, 34):
        g = np.clip(rng.normal(0.2, 0.5, n_g), -1, 1)
        b = np.clip(rng.normal(0.1, 0.6, n_b), -1, 1)
        continuous[f"pulse_{i + 1}"] = (g, b)
    return _assemble("ionosphere", scale, continuous, rng=rng)


def covtype(scale: float = 0.02, seed: int = 110) -> Dataset:
    """Covertype stand-in (Spruce-Fir vs Lodgepole Pine): 10 continuous
    terrain features + 44 binary indicator columns, moderate signals
    (default 2% of the ~500k rows)."""
    rng = np.random.default_rng(seed)
    n_s, n_l = _sizes("covtype", scale)
    continuous = {
        "elevation": (
            rng.normal(3120, 160, n_s),
            rng.normal(2930, 180, n_l),
        ),
        "aspect": (rng.uniform(0, 360, n_s), rng.uniform(0, 360, n_l)),
        "slope": (
            np.clip(rng.gamma(3.2, 4.0, n_s), 0, 60),
            np.clip(rng.gamma(3.4, 4.4, n_l), 0, 60),
        ),
        "horiz_dist_hydrology": (
            np.clip(rng.gamma(1.6, 170, n_s), 0, 1400),
            np.clip(rng.gamma(1.8, 150, n_l), 0, 1400),
        ),
        "vert_dist_hydrology": (
            rng.normal(45, 60, n_s),
            rng.normal(50, 62, n_l),
        ),
        "horiz_dist_roadways": (
            np.clip(rng.gamma(2.2, 1100, n_s), 0, 7000),
            np.clip(rng.gamma(2.0, 900, n_l), 0, 7000),
        ),
        "hillshade_9am": (
            np.clip(rng.normal(212, 26, n_s), 0, 254),
            np.clip(rng.normal(220, 24, n_l), 0, 254),
        ),
        "hillshade_noon": (
            np.clip(rng.normal(223, 19, n_s), 0, 254),
            np.clip(rng.normal(225, 19, n_l), 0, 254),
        ),
        "hillshade_3pm": (
            np.clip(rng.normal(142, 36, n_s), 0, 254),
            np.clip(rng.normal(135, 38, n_l), 0, 254),
        ),
        "horiz_dist_fire": (
            np.clip(rng.gamma(2.4, 900, n_s), 0, 7000),
            np.clip(rng.gamma(2.2, 820, n_l), 0, 7000),
        ),
    }
    categorical: dict[str, tuple[Sequence[str], np.ndarray, np.ndarray]] = {}
    # wilderness areas: Spruce-Fir favours area 1
    categorical["wilderness"] = (
        ("area1", "area2", "area3", "area4"),
        _choice(rng, n_s, [0.62, 0.05, 0.30, 0.03]),
        _choice(rng, n_l, [0.40, 0.08, 0.44, 0.08]),
    )
    for i in range(43):
        p_s = float(np.clip(rng.beta(1.2, 12), 0.002, 0.6))
        tilt = float(rng.uniform(0.5, 2.0)) if i < 6 else 1.0
        p_l = float(np.clip(p_s * tilt, 0.001, 0.8))
        categorical[f"soil_{i + 1}"] = (
            ("0", "1"),
            _choice(rng, n_s, [1 - p_s, p_s]),
            _choice(rng, n_l, [1 - p_l, p_l]),
        )
    return _assemble("covtype", scale, continuous, categorical, rng=rng)


DATASET_REGISTRY: dict[str, Callable[..., Dataset]] = {
    "adult": adult,
    "spambase": spambase,
    "breast_cancer": breast_cancer,
    "mammography": mammography,
    "transfusion": transfusion,
    "shuttle": shuttle,
    "credit_card": credit_card,
    "census_income": census_income,
    "ionosphere": ionosphere,
    "covtype": covtype,
}


def load(name: str, **kwargs) -> Dataset:
    """Load a UCI stand-in by registry name."""
    try:
        maker = DATASET_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        ) from None
    return maker(**kwargs)
