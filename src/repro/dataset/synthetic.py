"""The paper's simulated datasets (Figure 2 and Figures 3a-3d).

Each generator is deterministic given its seed and reproduces the
*structure* the paper describes; exact point clouds differ because the
paper does not publish its generators.

* :func:`figure2_example` — one continuous attribute, a 2%/98% group mix,
  group "A" concentrated in the upper range (the discretize-then-merge
  walkthrough of Section 4.4).
* :func:`simulated_dataset_1` — two correlated blobs separable by a single
  split on Attribute 1 (Section 5.1: MVD chases the correlation and misses
  the boundary; SDAD-CS finds only the Attribute 1 split).
* :func:`simulated_dataset_2` — two Gaussians crossing in an "X"
  (Section 5.2: no univariate rule exists; the interaction appears only
  when both attributes are combined).
* :func:`simulated_dataset_3` — uniform square split at Attribute 1 = 0.5
  (Section 5.3: only a level-1 contrast; anything deeper is meaningless).
* :func:`simulated_dataset_4` — group-2 mass in two corner boxes
  (Section 5.4: level-2 interactions; the level-1 contrasts are not
  independently productive and SDAD-CS reports 6 contrasts).
"""

from __future__ import annotations

import numpy as np

from .schema import Attribute, Schema
from .table import Dataset

__all__ = [
    "figure2_example",
    "simulated_dataset_1",
    "simulated_dataset_2",
    "simulated_dataset_3",
    "simulated_dataset_4",
    "two_attribute_dataset",
]

GROUPS = ("Group 1", "Group 2")


def two_attribute_dataset(
    attr1: np.ndarray,
    attr2: np.ndarray,
    group_codes: np.ndarray,
    labels: tuple[str, str] = GROUPS,
) -> Dataset:
    """Package two continuous columns + group codes as a Dataset."""
    schema = Schema.of(
        [Attribute.continuous("Attribute 1"), Attribute.continuous("Attribute 2")]
    )
    return Dataset(
        schema,
        {"Attribute 1": attr1, "Attribute 2": attr2},
        group_codes.astype(np.int64),
        labels,
    )


def figure2_example(
    n: int = 1000, minority_fraction: float = 0.02, seed: int = 7
) -> Dataset:
    """Section 4.4 walkthrough data: one attribute ``X``, two groups.

    98% of records belong to group "B" and are spread over the whole
    range; the 2% group "A" sits entirely in the top quarter, so the left
    half is pure "B" (PR = 1) and recursive splitting of the right half
    isolates "A"'s region before merging generalises the rest.
    """
    rng = np.random.default_rng(seed)
    n_a = max(2, int(round(n * minority_fraction)))
    n_b = n - n_a
    x_b = rng.uniform(0.0, 1.0, n_b)
    x_a = rng.uniform(0.78, 0.97, n_a)
    x = np.concatenate([x_b, x_a])
    groups = np.concatenate(
        [np.zeros(n_b, dtype=np.int64), np.ones(n_a, dtype=np.int64)]
    )
    order = rng.permutation(n)
    schema = Schema.of([Attribute.continuous("X")])
    return Dataset(schema, {"X": x[order]}, groups[order], ("B", "A"))


def simulated_dataset_1(n: int = 2000, seed: int = 11) -> Dataset:
    """Two positively-correlated Gaussian blobs separated along
    Attribute 1 (Figure 3a).

    The groups are fully separable with a single vertical boundary near
    Attribute 1 = 0.5; both blobs share the diagonal correlation that
    tempts MVD into splitting where the *joint* distribution changes
    rather than where the groups separate.
    """
    rng = np.random.default_rng(seed)
    half = n // 2
    attr1_g1 = rng.uniform(0.04, 0.46, half)
    attr1_g2 = rng.uniform(0.54, 0.96, n - half)
    # Attribute 2 correlates with Attribute 1 *within* each blob but has
    # the same marginal for both groups, so the only separating boundary
    # is the vertical line on Attribute 1.
    attr2_g1 = 0.5 + 0.8 * (attr1_g1 - 0.25) + rng.normal(0, 0.03, half)
    attr2_g2 = 0.5 + 0.8 * (attr1_g2 - 0.75) + rng.normal(0, 0.03, n - half)
    attr1 = np.concatenate([attr1_g1, attr1_g2])
    attr2 = np.concatenate([attr2_g1, attr2_g2])
    groups = np.concatenate(
        [np.zeros(half, dtype=np.int64), np.ones(n - half, dtype=np.int64)]
    )
    order = rng.permutation(n)
    return two_attribute_dataset(attr1[order], attr2[order], groups[order])


def simulated_dataset_2(n: int = 2000, seed: int = 13) -> Dataset:
    """Two elongated Gaussians crossing like an "X" (Figure 3b).

    Both share the centre (0.5, 0.5); group 1 lies along the main
    diagonal, group 2 along the anti-diagonal.  The univariate marginals
    are identical, so no single-attribute contrast exists — the signal is
    purely a multivariate interaction.
    """
    rng = np.random.default_rng(seed)
    half = n // 2
    main = np.array([[0.035, 0.031], [0.031, 0.035]])
    anti = np.array([[0.035, -0.031], [-0.031, 0.035]])
    blob1 = rng.multivariate_normal([0.5, 0.5], main, half)
    blob2 = rng.multivariate_normal([0.5, 0.5], anti, n - half)
    pts = np.vstack([blob1, blob2])
    groups = np.concatenate(
        [np.zeros(half, dtype=np.int64), np.ones(n - half, dtype=np.int64)]
    )
    order = rng.permutation(n)
    return two_attribute_dataset(
        pts[order, 0], pts[order, 1], groups[order]
    )


def simulated_dataset_3(n: int = 2000, seed: int = 17) -> Dataset:
    """Uniform square; group 2 iff Attribute 1 < 0.5 (Figure 3c).

    The only real structure is the level-1 split at 0.5; any deeper
    "contrast" an algorithm reports (as Cortana does in the paper) is
    meaningless.
    """
    rng = np.random.default_rng(seed)
    attr1 = rng.uniform(0.0, 1.0, n)
    attr2 = rng.uniform(0.0, 1.0, n)
    groups = np.where(attr1 < 0.5, 1, 0).astype(np.int64)
    return two_attribute_dataset(attr1, attr2, groups)


def simulated_dataset_4(n: int = 2000, seed: int = 19) -> Dataset:
    """Level-2 interactions (Figure 3d).

    Group 2 occupies two axis-aligned boxes —
    ``[0, 0.25] x [0, 0.5]`` and ``[0.75, 1] x [0.75, 1]`` — inside an
    otherwise group-1 uniform square.  Marginally this elevates group 2 in
    Attribute 1's ranges [0, 0.25] and [0.75, 1] and Attribute 2's ranges
    [0, 0.5] and [0.75, 1] (the level-1 contrasts the paper mentions), but
    those univariate contrasts are explained entirely by the two boxes and
    are therefore not independently productive.
    """
    rng = np.random.default_rng(seed)
    attr1 = rng.uniform(0.0, 1.0, n)
    attr2 = rng.uniform(0.0, 1.0, n)
    in_box1 = (attr1 <= 0.25) & (attr2 <= 0.5)
    in_box2 = (attr1 >= 0.75) & (attr2 >= 0.75)
    groups = np.where(in_box1 | in_box2, 1, 0).astype(np.int64)
    return two_attribute_dataset(attr1, attr2, groups)
