"""Columnar dataset with a group attribute, backed by numpy arrays.

This is the substrate the miners operate on.  It stores categorical columns
as ``int64`` code arrays (indexing the attribute's category labels) and
continuous columns as ``float64`` arrays.  The group attribute (Section 3 of
the paper: every row belongs to exactly one group) is stored separately.

The class is deliberately small and immutable-ish: miners never mutate a
dataset; they compute boolean coverage masks over it and count group
membership inside the mask with :meth:`Dataset.group_counts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .schema import Attribute, AttributeKind, Schema, SchemaError

__all__ = ["Dataset", "DatasetError", "GroupInfo"]


class DatasetError(ValueError):
    """Raised for inconsistent dataset construction or misuse."""


@dataclass(frozen=True)
class GroupInfo:
    """Summary of the group attribute of a dataset."""

    name: str
    labels: tuple[str, ...]
    sizes: tuple[int, ...]

    @property
    def n_groups(self) -> int:
        return len(self.labels)

    def size_of(self, label: str) -> int:
        return self.sizes[self.labels.index(label)]


class Dataset:
    """A mixed categorical/continuous table with one group column.

    Parameters
    ----------
    schema:
        Describes the ordinary (non-group) attributes.
    columns:
        Mapping from attribute name to a numpy array.  Categorical columns
        must be integer codes into the attribute's categories; continuous
        columns are cast to ``float64``.
    group_codes:
        Integer array of group membership codes, one per row.
    group_labels:
        Ordered labels for the group codes.
    group_name:
        Name of the group attribute (display only).
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        group_codes: np.ndarray,
        group_labels: Sequence[str],
        group_name: str = "group",
    ) -> None:
        self._schema = schema
        self._group_name = group_name
        self._group_labels = tuple(group_labels)
        if len(self._group_labels) < 1:
            raise DatasetError("at least one group label required")
        if len(set(self._group_labels)) != len(self._group_labels):
            raise DatasetError("duplicate group labels")

        group_codes = np.asarray(group_codes)
        if group_codes.ndim != 1:
            raise DatasetError("group_codes must be 1-dimensional")
        if not np.issubdtype(group_codes.dtype, np.integer):
            raise DatasetError("group_codes must be integers")
        n_rows = group_codes.shape[0]
        if n_rows and (
            group_codes.min() < 0 or group_codes.max() >= len(self._group_labels)
        ):
            raise DatasetError("group code out of range")
        self._group_codes = group_codes.astype(np.int64, copy=False)

        self._columns: dict[str, np.ndarray] = {}
        missing = set(schema.names) - set(columns)
        if missing:
            raise DatasetError(f"missing columns: {sorted(missing)}")
        extra = set(columns) - set(schema.names)
        if extra:
            raise DatasetError(f"columns not in schema: {sorted(extra)}")
        for attr in schema:
            col = np.asarray(columns[attr.name])
            if col.ndim != 1:
                raise DatasetError(f"column {attr.name!r} must be 1-d")
            if col.shape[0] != n_rows:
                raise DatasetError(
                    f"column {attr.name!r} has {col.shape[0]} rows, "
                    f"expected {n_rows}"
                )
            if attr.is_categorical:
                if not np.issubdtype(col.dtype, np.integer):
                    raise DatasetError(
                        f"categorical column {attr.name!r} must hold codes"
                    )
                if col.size and (
                    col.min() < 0 or col.max() >= attr.cardinality
                ):
                    raise DatasetError(
                        f"code out of range in column {attr.name!r}"
                    )
                self._columns[attr.name] = col.astype(np.int64, copy=False)
            else:
                self._columns[attr.name] = col.astype(np.float64, copy=False)

        self._group_sizes = tuple(
            int(c)
            for c in np.bincount(
                self._group_codes, minlength=len(self._group_labels)
            )
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_records(
        records: Iterable[Mapping[str, object]],
        schema: Schema,
        group_name: str = "group",
        group_labels: Sequence[str] | None = None,
    ) -> "Dataset":
        """Build a dataset from an iterable of dict-like rows.

        Each record must have a value for every schema attribute plus the
        group column ``group_name``.  Categorical values and group values
        are given as labels, not codes.
        """
        rows = list(records)
        raw_groups = [str(r[group_name]) for r in rows]
        if group_labels is None:
            group_labels = tuple(dict.fromkeys(raw_groups))
        label_index = {g: i for i, g in enumerate(group_labels)}
        try:
            group_codes = np.array(
                [label_index[g] for g in raw_groups], dtype=np.int64
            )
        except KeyError as exc:
            raise DatasetError(f"unknown group label {exc.args[0]!r}") from None

        columns: dict[str, np.ndarray] = {}
        for attr in schema:
            if attr.is_categorical:
                columns[attr.name] = np.array(
                    [attr.code_of(str(r[attr.name])) for r in rows],
                    dtype=np.int64,
                )
            else:
                columns[attr.name] = np.array(
                    [float(r[attr.name]) for r in rows], dtype=np.float64
                )
        return Dataset(schema, columns, group_codes, group_labels, group_name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return int(self._group_codes.shape[0])

    def __len__(self) -> int:
        return self.n_rows

    @property
    def group_name(self) -> str:
        return self._group_name

    @property
    def group_labels(self) -> tuple[str, ...]:
        return self._group_labels

    @property
    def n_groups(self) -> int:
        return len(self._group_labels)

    @property
    def group_codes(self) -> np.ndarray:
        """Read-only view of the group code array."""
        view = self._group_codes.view()
        view.flags.writeable = False
        return view

    @property
    def group_sizes(self) -> tuple[int, ...]:
        return self._group_sizes

    @property
    def group_info(self) -> GroupInfo:
        return GroupInfo(self._group_name, self._group_labels, self._group_sizes)

    def column(self, name: str) -> np.ndarray:
        """Read-only view of a column (codes for categorical attributes)."""
        try:
            view = self._columns[name].view()
        except KeyError:
            raise KeyError(name) from None
        view.flags.writeable = False
        return view

    def attribute(self, name: str) -> Attribute:
        return self._schema[name]

    # ------------------------------------------------------------------
    # Counting primitives used by the miners
    # ------------------------------------------------------------------

    def group_counts(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Per-group row counts, optionally restricted to a boolean mask.

        This is the core counting primitive: ``group_counts(cover(itemset))``
        yields ``count_k(c)`` for every group ``k`` in one pass (Eq. 1).
        """
        if mask is None:
            codes = self._group_codes
        else:
            mask = np.asarray(mask)
            if mask.dtype != np.bool_ or mask.shape != self._group_codes.shape:
                raise DatasetError("mask must be a boolean array over rows")
            codes = self._group_codes[mask]
        return np.bincount(codes, minlength=self.n_groups)

    def supports(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Per-group supports ``supp_k = count_k / |g_k|`` (Eq. 1).

        Groups with zero rows get support 0.
        """
        counts = self.group_counts(mask).astype(np.float64)
        sizes = np.array(self._group_sizes, dtype=np.float64)
        out = np.zeros_like(counts)
        np.divide(counts, sizes, out=out, where=sizes > 0)
        return out

    def group_index(self, label: str) -> int:
        try:
            return self._group_labels.index(label)
        except ValueError:
            raise DatasetError(f"unknown group {label!r}") from None

    def group_mask(self, label: str) -> np.ndarray:
        """Boolean mask of rows belonging to one group."""
        return self._group_codes == self.group_index(label)

    # ------------------------------------------------------------------
    # Restriction / projection
    # ------------------------------------------------------------------

    def restrict(self, mask: np.ndarray) -> "Dataset":
        """New dataset containing only rows where ``mask`` is True.

        Group labels are preserved (groups may become empty).
        """
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != self._group_codes.shape:
            raise DatasetError("mask must be a boolean array over rows")
        columns = {name: col[mask] for name, col in self._columns.items()}
        return Dataset(
            self._schema,
            columns,
            self._group_codes[mask],
            self._group_labels,
            self._group_name,
        )

    def select_groups(self, labels: Sequence[str]) -> "Dataset":
        """Dataset restricted to the named groups, re-coding membership.

        This is how a multi-group dataset is narrowed to the two groups of
        interest before mining (e.g. Doctorate vs Bachelors in the Adult
        experiments).
        """
        labels = tuple(labels)
        if len(labels) < 1:
            raise DatasetError("need at least one group")
        indices = [self.group_index(g) for g in labels]
        keep = np.isin(self._group_codes, indices)
        recode = np.full(self.n_groups, -1, dtype=np.int64)
        for new, old in enumerate(indices):
            recode[old] = new
        columns = {name: col[keep] for name, col in self._columns.items()}
        return Dataset(
            self._schema,
            columns,
            recode[self._group_codes[keep]],
            labels,
            self._group_name,
        )

    def project(self, names: Sequence[str]) -> "Dataset":
        """Dataset keeping only the named attribute columns."""
        sub = self._schema.subset(names)
        columns = {a.name: self._columns[a.name] for a in sub}
        return Dataset(
            sub,
            columns,
            self._group_codes,
            self._group_labels,
            self._group_name,
        )

    # ------------------------------------------------------------------
    # Missing values
    # ------------------------------------------------------------------

    def missing_mask(self) -> np.ndarray:
        """Boolean mask of rows with a missing (NaN) continuous value.

        Continuous columns may hold NaN for missing readings; such rows
        are simply never covered by a numeric item (NaN fails every
        range comparison), which matches the paper's observation that
        real data contains missing values without requiring imputation.
        Categorical missing values should be modelled as an explicit
        category.
        """
        mask = np.zeros(self.n_rows, dtype=bool)
        for attr in self._schema:
            if attr.is_continuous:
                mask |= np.isnan(self._columns[attr.name])
        return mask

    @property
    def has_missing(self) -> bool:
        return bool(self.missing_mask().any())

    def drop_missing_rows(self) -> "Dataset":
        """Dataset without the rows flagged by :meth:`missing_mask`."""
        return self.restrict(~self.missing_mask())

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """One-paragraph human summary (used by examples and reports)."""
        parts = [
            f"{self.n_rows} rows",
            f"{len(self._schema)} attributes "
            f"({len(self._schema.continuous_names)} continuous, "
            f"{len(self._schema.categorical_names)} categorical)",
            "groups: "
            + ", ".join(
                f"{lbl}={size}"
                for lbl, size in zip(self._group_labels, self._group_sizes)
            ),
        ]
        return "; ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dataset({self.describe()})"
