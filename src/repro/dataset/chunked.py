"""Out-of-core chunked columnar dataset store (``repro.dataset.chunked``).

Every miner in this package historically required the whole dataset
resident in RAM as dense numpy columns, capping scale far below the
100M+-row workloads the streaming/serving layers are shaped for (the
Facebook continuous contrast-set mining deployment mines an ever-growing
stream of structured crash events).  This module removes that cap with a
chunked, append-able, on-disk columnar store:

* a dataset lives in a directory: a ``manifest.json`` plus one
  subdirectory per *immutable* chunk, each holding one little-endian
  binary file per column;
* categorical columns are dictionary-encoded (the schema's category
  list is the dictionary) and stored at the narrowest code width that
  fits the cardinality (``<u1`` / ``<u2`` / ``<u4``) — the *codec*;
  continuous columns are stored as ``<f8``;
* every column file carries a sha256 digest in the manifest, and every
  chunk a content digest derived from them (the same content-digest
  idea as the checkpoint/store fingerprints) — so caches keyed by chunk
  digest are never invalidated by appends, and corruption is detectable;
* reads are memory-mapped: a chunk materialises at most chunk-sized
  arrays, and parallel workers share chunk bytes through the page cache
  by opening the same files instead of receiving pickled arrays.

Two read-side facades cover the two access patterns:

:meth:`ChunkedDataset.iter_chunks`
    yields ordinary in-memory :class:`~repro.dataset.table.Dataset`
    views of each chunk (mmap-backed) — the substrate for per-chunk
    support counting, which is embarrassingly additive across row
    chunks (chi-square, PR and diff bounds are exact after a per-chunk
    merge of group-count vectors).
:meth:`ChunkedDataset.view`
    a :class:`ChunkedView` — a lazy :class:`Dataset` subclass over the
    full row range that materialises *columns* on demand (LRU-bounded),
    so the SDAD-CS continuous splits and the meaningfulness filters run
    unchanged with peak memory bounded by a few columns, never the full
    table.  ``ContrastSetMiner.mine`` accepts a :class:`ChunkedDataset`
    directly and mines through this view.

Appends are atomic (chunk directory renamed into place, then the
manifest rewritten via the temp-file + ``os.replace`` idiom shared with
the pattern store); a view pins the chunk list it was created with, so
concurrent appends never change what an in-flight mining run sees.
Single writer, many readers.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from .schema import Attribute, AttributeKind, Schema
from .table import Dataset, DatasetError

__all__ = [
    "CHUNKED_FORMAT",
    "CHUNKED_VERSION",
    "ChunkMeta",
    "ChunkedDataset",
    "ChunkedDatasetError",
    "ChunkedView",
    "DEFAULT_CHUNK_SIZE",
    "GROUP_FILE",
    "categorical_codec",
]

CHUNKED_FORMAT = "repro-chunked-dataset"
CHUNKED_VERSION = 1
MANIFEST_NAME = "manifest.json"
CHUNKS_DIR = "chunks"
#: File name of the group-code column inside a chunk directory (column
#: files are ``<attribute>.bin``; attribute names may not collide with
#: this because it starts with a dot-free reserved prefix).
GROUP_FILE = "__group__"
DEFAULT_CHUNK_SIZE = 262_144

#: Continuous columns are always stored as little-endian float64 — the
#: canonical in-memory dtype, byte-stable across platforms.
CONTINUOUS_CODEC = "<f8"
_CODE_CODECS = ("<u1", "<u2", "<u4")


class ChunkedDatasetError(DatasetError):
    """Raised for malformed stores, incompatible appends, or corruption."""


def categorical_codec(cardinality: int) -> str:
    """Narrowest little-endian unsigned code dtype for a category count."""
    for codec in _CODE_CODECS:
        if cardinality <= np.iinfo(np.dtype(codec)).max + 1:
            return codec
    raise ChunkedDatasetError(
        f"cardinality {cardinality} exceeds the supported code width"
    )


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    """Write a file so it appears complete under its final name or not
    at all (same idiom as the pattern store and checkpoints)."""
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ChunkMeta:
    """Manifest record of one immutable chunk."""

    __slots__ = ("chunk_id", "n_rows", "group_sizes", "column_digests",
                 "group_digest", "digest")

    def __init__(
        self,
        chunk_id: str,
        n_rows: int,
        group_sizes: tuple[int, ...],
        column_digests: dict[str, str],
        group_digest: str,
        digest: str,
    ) -> None:
        self.chunk_id = chunk_id
        self.n_rows = n_rows
        self.group_sizes = group_sizes
        self.column_digests = column_digests
        self.group_digest = group_digest
        self.digest = digest

    def to_payload(self) -> dict:
        return {
            "id": self.chunk_id,
            "n_rows": self.n_rows,
            "group_sizes": list(self.group_sizes),
            "columns": dict(self.column_digests),
            "group_sha256": self.group_digest,
            "digest": self.digest,
        }

    @staticmethod
    def from_payload(payload: dict) -> "ChunkMeta":
        try:
            return ChunkMeta(
                chunk_id=str(payload["id"]),
                n_rows=int(payload["n_rows"]),
                group_sizes=tuple(int(s) for s in payload["group_sizes"]),
                column_digests={
                    str(k): str(v) for k, v in payload["columns"].items()
                },
                group_digest=str(payload["group_sha256"]),
                digest=str(payload["digest"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ChunkedDatasetError(
                f"malformed chunk record in manifest: {exc}"
            ) from None


def _chunk_digest(
    schema_names: Sequence[str],
    codecs: dict[str, str],
    n_rows: int,
    column_digests: dict[str, str],
    group_digest: str,
) -> str:
    """Content digest of a chunk: a stable hash over the per-column
    digests in schema order (plus the group column and the codecs), so
    two chunks holding the same values under the same encoding always
    share a digest regardless of platform."""
    digest = hashlib.sha256()
    digest.update(f"v{CHUNKED_VERSION}\nrows={n_rows}\n".encode())
    for name in schema_names:
        digest.update(
            f"{name}:{codecs[name]}:{column_digests[name]}\n".encode()
        )
    digest.update(
        f"{GROUP_FILE}:{codecs[GROUP_FILE]}:{group_digest}\n".encode()
    )
    return digest.hexdigest()


def _schema_payload(schema: Schema) -> list[dict]:
    return [
        {
            "name": attr.name,
            "kind": attr.kind.value,
            "categories": list(attr.categories),
        }
        for attr in schema
    ]


def _schema_from_payload(payload: list) -> Schema:
    attributes = []
    for entry in payload:
        kind = AttributeKind(entry["kind"])
        attributes.append(
            Attribute(
                str(entry["name"]), kind, tuple(entry.get("categories", ()))
            )
        )
    return Schema.of(attributes)


class ChunkedDataset:
    """A chunked, append-able, on-disk columnar dataset.

    Open an existing store with ``ChunkedDataset(path)``; create one
    with :meth:`create` or :meth:`pack`.  ``cache_chunks`` bounds how
    many chunk :class:`Dataset` views stay materialised at once.
    """

    def __init__(self, path: str | os.PathLike, cache_chunks: int = 4) -> None:
        self.path = Path(path)
        if cache_chunks < 1:
            raise ChunkedDatasetError("cache_chunks must be >= 1")
        self.cache_chunks = cache_chunks
        manifest = self.path / MANIFEST_NAME
        if not manifest.is_file():
            raise ChunkedDatasetError(
                f"{self.path} is not a chunked dataset (no {MANIFEST_NAME})"
            )
        self._chunk_cache: "OrderedDict[str, Dataset]" = OrderedDict()
        self.reload()

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        schema: Schema,
        group_labels: Sequence[str],
        group_name: str = "group",
        cache_chunks: int = 4,
    ) -> "ChunkedDataset":
        """Initialise an empty store for the given row layout."""
        root = Path(path)
        if (root / MANIFEST_NAME).exists():
            raise ChunkedDatasetError(f"{root} already holds a store")
        group_labels = tuple(str(g) for g in group_labels)
        if len(group_labels) < 1:
            raise ChunkedDatasetError("at least one group label required")
        if len(set(group_labels)) != len(group_labels):
            raise ChunkedDatasetError("duplicate group labels")
        codecs = {
            attr.name: (
                categorical_codec(attr.cardinality)
                if attr.is_categorical
                else CONTINUOUS_CODEC
            )
            for attr in schema
        }
        codecs[GROUP_FILE] = categorical_codec(len(group_labels))
        root.mkdir(parents=True, exist_ok=True)
        (root / CHUNKS_DIR).mkdir(exist_ok=True)
        payload = {
            "format": CHUNKED_FORMAT,
            "version": CHUNKED_VERSION,
            "group_name": group_name,
            "group_labels": list(group_labels),
            "schema": _schema_payload(schema),
            "codecs": codecs,
            "chunks": [],
        }
        _atomic_write_text(
            root / MANIFEST_NAME,
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
        )
        return cls(root, cache_chunks=cache_chunks)

    @classmethod
    def pack(
        cls,
        path: str | os.PathLike,
        dataset: Dataset,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cache_chunks: int = 4,
    ) -> "ChunkedDataset":
        """Create a store from an in-memory dataset, split into chunks."""
        store = cls.create(
            path,
            dataset.schema,
            dataset.group_labels,
            dataset.group_name,
            cache_chunks=cache_chunks,
        )
        store.append(dataset, chunk_size=chunk_size)
        return store

    # ------------------------------------------------------------------
    # Manifest state
    # ------------------------------------------------------------------

    def reload(self) -> None:
        """Re-read the manifest (picks up chunks appended elsewhere)."""
        try:
            payload = json.loads((self.path / MANIFEST_NAME).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ChunkedDatasetError(f"unreadable manifest: {exc}") from None
        if payload.get("format") != CHUNKED_FORMAT:
            raise ChunkedDatasetError(
                f"{self.path} is not a {CHUNKED_FORMAT} store"
            )
        if payload.get("version") != CHUNKED_VERSION:
            raise ChunkedDatasetError(
                f"unsupported store version {payload.get('version')!r} "
                f"(this build reads version {CHUNKED_VERSION})"
            )
        self.schema = _schema_from_payload(payload["schema"])
        self.group_name = str(payload["group_name"])
        self.group_labels = tuple(
            str(g) for g in payload["group_labels"]
        )
        self.codecs = {str(k): str(v) for k, v in payload["codecs"].items()}
        self.chunks = tuple(
            ChunkMeta.from_payload(entry) for entry in payload["chunks"]
        )

    def _write_manifest(self) -> None:
        payload = {
            "format": CHUNKED_FORMAT,
            "version": CHUNKED_VERSION,
            "group_name": self.group_name,
            "group_labels": list(self.group_labels),
            "schema": _schema_payload(self.schema),
            "codecs": dict(self.codecs),
            "chunks": [meta.to_payload() for meta in self.chunks],
        }
        _atomic_write_text(
            self.path / MANIFEST_NAME,
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def n_rows(self) -> int:
        return sum(meta.n_rows for meta in self.chunks)

    def __len__(self) -> int:
        return self.n_rows

    @property
    def n_groups(self) -> int:
        return len(self.group_labels)

    @property
    def group_sizes(self) -> tuple[int, ...]:
        sizes = np.zeros(self.n_groups, dtype=np.int64)
        for meta in self.chunks:
            sizes += np.asarray(meta.group_sizes, dtype=np.int64)
        return tuple(int(s) for s in sizes)

    def chunk_digests(self) -> tuple[str, ...]:
        """Content digests of the chunks, in row order."""
        return tuple(meta.digest for meta in self.chunks)

    def describe(self) -> str:
        disk = sum(
            f.stat().st_size
            for f in (self.path / CHUNKS_DIR).glob("*/*")
            if f.is_file()
        )
        parts = [
            f"{self.n_rows} rows in {self.n_chunks} chunks",
            f"{len(self.schema)} attributes "
            f"({len(self.schema.continuous_names)} continuous, "
            f"{len(self.schema.categorical_names)} categorical)",
            "groups: "
            + ", ".join(
                f"{lbl}={size}"
                for lbl, size in zip(self.group_labels, self.group_sizes)
            ),
            f"{disk / 1e6:.1f} MB on disk",
        ]
        return "; ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChunkedDataset({self.path}: {self.describe()})"

    # ------------------------------------------------------------------
    # Appending (the write path)
    # ------------------------------------------------------------------

    def _check_compatible(self, dataset: Dataset) -> None:
        if dataset.schema != self.schema:
            raise ChunkedDatasetError(
                "appended dataset's schema does not match the store "
                "(names, kinds and category lists must be identical)"
            )
        if tuple(dataset.group_labels) != self.group_labels:
            raise ChunkedDatasetError(
                f"appended dataset's group labels "
                f"{list(dataset.group_labels)} do not match the store's "
                f"{list(self.group_labels)}"
            )

    def append(
        self, dataset: Dataset, chunk_size: int | None = None
    ) -> list[str]:
        """Append a dataset's rows as one or more new immutable chunks.

        Existing chunks (and their digests) are never touched — appends
        only add manifest entries, so every cache keyed by chunk digest
        stays valid.  Returns the new chunk ids.
        """
        self._check_compatible(dataset)
        if chunk_size is not None and chunk_size < 1:
            raise ChunkedDatasetError("chunk_size must be >= 1")
        if dataset.n_rows == 0:
            return []
        step = chunk_size or dataset.n_rows
        new_ids: list[str] = []
        metas = list(self.chunks)
        seq = self.n_chunks
        for start in range(0, dataset.n_rows, step):
            stop = min(start + step, dataset.n_rows)
            meta = self._write_chunk(dataset, start, stop, seq)
            metas.append(meta)
            new_ids.append(meta.chunk_id)
            seq += 1
        self.chunks = tuple(metas)
        self._write_manifest()
        return new_ids

    def _write_chunk(
        self, dataset: Dataset, start: int, stop: int, seq: int
    ) -> ChunkMeta:
        chunk_id = f"chunk-{seq:06d}"
        final_dir = self.path / CHUNKS_DIR / chunk_id
        if final_dir.exists():
            raise ChunkedDatasetError(
                f"chunk directory {final_dir} already exists"
            )
        tmp_dir = Path(
            tempfile.mkdtemp(dir=str(self.path / CHUNKS_DIR), prefix=".tmp-")
        )
        try:
            column_digests: dict[str, str] = {}
            for attr in self.schema:
                codec = self.codecs[attr.name]
                values = np.asarray(dataset.column(attr.name))[start:stop]
                encoded = np.ascontiguousarray(
                    values.astype(np.dtype(codec), casting="same_kind")
                    if attr.is_continuous
                    else values.astype(np.dtype(codec), casting="unsafe")
                )
                column_digests[attr.name] = self._write_file(
                    tmp_dir / f"{attr.name}.bin", encoded
                )
            codes = np.asarray(dataset.group_codes)[start:stop]
            encoded = np.ascontiguousarray(
                codes.astype(np.dtype(self.codecs[GROUP_FILE]),
                             casting="unsafe")
            )
            group_digest = self._write_file(
                tmp_dir / f"{GROUP_FILE}.bin", encoded
            )
            os.replace(tmp_dir, final_dir)
        except BaseException:
            shutil.rmtree(tmp_dir, ignore_errors=True)
            raise
        n_rows = stop - start
        group_sizes = tuple(
            int(c) for c in np.bincount(codes, minlength=self.n_groups)
        )
        digest = _chunk_digest(
            self.schema.names, self.codecs, n_rows, column_digests,
            group_digest,
        )
        return ChunkMeta(
            chunk_id, n_rows, group_sizes, column_digests, group_digest,
            digest,
        )

    @staticmethod
    def _write_file(path: Path, encoded: np.ndarray) -> str:
        data = encoded.tobytes()
        with path.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return _sha256(data)

    # ------------------------------------------------------------------
    # Reading (the mmap path)
    # ------------------------------------------------------------------

    def _chunk_meta(self, index: int) -> ChunkMeta:
        try:
            return self.chunks[index]
        except IndexError:
            raise ChunkedDatasetError(
                f"chunk index {index} out of range "
                f"(store holds {self.n_chunks})"
            ) from None

    def _mmap_file(self, meta: ChunkMeta, name: str) -> np.ndarray:
        codec = self.codecs[name]
        path = self.path / CHUNKS_DIR / meta.chunk_id / f"{name}.bin"
        dtype = np.dtype(codec)
        expected = meta.n_rows * dtype.itemsize
        try:
            actual = path.stat().st_size
        except OSError:
            raise ChunkedDatasetError(f"missing chunk file {path}") from None
        if actual != expected:
            raise ChunkedDatasetError(
                f"chunk file {path} is {actual} bytes, expected {expected}"
            )
        if meta.n_rows == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(path, dtype=dtype, mode="r", shape=(meta.n_rows,))

    def chunk_dataset(self, index: int) -> Dataset:
        """In-memory :class:`Dataset` view of one chunk (mmap-backed).

        Continuous columns stay zero-copy memory maps; categorical code
        columns are widened to the canonical ``int64`` (a chunk-sized
        copy).  Views are LRU-cached up to ``cache_chunks``.
        """
        meta = self._chunk_meta(index)
        cached = self._chunk_cache.get(meta.chunk_id)
        if cached is not None:
            self._chunk_cache.move_to_end(meta.chunk_id)
            return cached
        columns = {
            attr.name: self._mmap_file(meta, attr.name)
            for attr in self.schema
        }
        codes = self._mmap_file(meta, GROUP_FILE).astype(np.int64)
        chunk = Dataset(
            self.schema, columns, codes, self.group_labels, self.group_name
        )
        self._chunk_cache[meta.chunk_id] = chunk
        while len(self._chunk_cache) > self.cache_chunks:
            self._chunk_cache.popitem(last=False)
        return chunk

    def iter_chunks(self) -> Iterator[Dataset]:
        """Yield each chunk as an ordinary :class:`Dataset` view."""
        for index in range(self.n_chunks):
            yield self.chunk_dataset(index)

    def gather_column(
        self, name: str, chunk_indices: Sequence[int] | None = None
    ) -> np.ndarray:
        """Materialise one full column (canonical dtype) across chunks."""
        attr = self.schema[name]
        indices = (
            range(self.n_chunks) if chunk_indices is None else chunk_indices
        )
        metas = [self._chunk_meta(i) for i in indices]
        total = sum(m.n_rows for m in metas)
        dtype = np.float64 if attr.is_continuous else np.int64
        out = np.empty(total, dtype=dtype)
        offset = 0
        for meta in metas:
            raw = self._mmap_file(meta, name)
            out[offset:offset + meta.n_rows] = raw
            offset += meta.n_rows
        return out

    def gather_group_codes(
        self, chunk_indices: Sequence[int] | None = None
    ) -> np.ndarray:
        """Materialise the full ``int64`` group-code column."""
        indices = (
            range(self.n_chunks) if chunk_indices is None else chunk_indices
        )
        metas = [self._chunk_meta(i) for i in indices]
        out = np.empty(sum(m.n_rows for m in metas), dtype=np.int64)
        offset = 0
        for meta in metas:
            raw = self._mmap_file(meta, GROUP_FILE)
            out[offset:offset + meta.n_rows] = raw
            offset += meta.n_rows
        return out

    def to_dataset(self) -> Dataset:
        """Fully materialise the store as one in-memory dataset."""
        columns = {
            name: self.gather_column(name) for name in self.schema.names
        }
        return Dataset(
            self.schema,
            columns,
            self.gather_group_codes(),
            self.group_labels,
            self.group_name,
        )

    def view(self, max_resident_columns: int = 2) -> "ChunkedView":
        """Lazy full-range :class:`Dataset` facade (see module docs)."""
        return ChunkedView(
            self, max_resident_columns=max_resident_columns
        )

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def verify_chunks(self):
        """Re-hash every chunk's files against the manifest digests.

        Yields ``(meta, error)`` per chunk in row order, where ``error``
        is ``None`` for an intact chunk or a one-line description of the
        first problem found in it (unreadable file, per-file digest
        mismatch, or stale chunk content digest).  All chunks are always
        visited — callers that want fail-fast semantics use
        :meth:`verify`; the CLI ``dataset verify`` subcommand reports
        every chunk.
        """
        for meta in self.chunks:
            chunk_dir = self.path / CHUNKS_DIR / meta.chunk_id
            error: str | None = None
            for name, expected in list(meta.column_digests.items()) + [
                (GROUP_FILE, meta.group_digest)
            ]:
                path = chunk_dir / f"{name}.bin"
                try:
                    actual = _sha256(path.read_bytes())
                except OSError as exc:
                    error = f"unreadable chunk file {path}: {exc}"
                    break
                if actual != expected:
                    error = (
                        f"digest mismatch in {path}: manifest says "
                        f"{expected[:12]}…, file hashes to {actual[:12]}…"
                    )
                    break
            if error is None:
                recomputed = _chunk_digest(
                    self.schema.names, self.codecs, meta.n_rows,
                    meta.column_digests, meta.group_digest,
                )
                if recomputed != meta.digest:
                    error = f"chunk digest mismatch for {meta.chunk_id}"
            yield meta, error

    def verify(self) -> None:
        """Re-hash every chunk file against the manifest digests.

        Raises :class:`ChunkedDatasetError` on the first mismatch;
        completing silently means the store's bytes are exactly what the
        manifest promised.
        """
        for _meta, error in self.verify_chunks():
            if error is not None:
                raise ChunkedDatasetError(error)


def _reopen_view(
    path: str, chunk_ids: tuple[str, ...], max_resident_columns: int
) -> "ChunkedView":
    """Unpickle hook: re-open the store and pin the pickled chunk list.

    Workers receive (path, chunk ids) — a few hundred bytes — and read
    chunk bytes through the shared page cache, never a pickled table.
    """
    store = ChunkedDataset(path)
    return ChunkedView(
        store,
        chunk_ids=chunk_ids,
        max_resident_columns=max_resident_columns,
    )


class ChunkedView(Dataset):
    """Lazy, mmap-backed :class:`Dataset` over a :class:`ChunkedDataset`.

    The view pins the store's chunk list at construction time, so a
    mining run sees a stable snapshot even while new chunks are being
    appended.  Columns materialise on first access (at canonical dtype,
    so every consumer — SDAD-CS splits, fingerprints, bitmap indexes —
    sees byte-identical values to an in-memory dataset) and at most
    ``max_resident_columns`` stay resident.  Group codes are lazy too:
    row totals and group sizes come from the chunk manifests, the
    chunk-native counting path never widens them to ``int64``, and
    consumers that need the full column (fingerprints, ``restrict``)
    gather it on first access.  Per-chunk column access for the search
    (:meth:`iter_chunk_columns`) reads straight from the chunk files.

    Pickling a view captures only ``(path, chunk ids)``; workers
    re-open the store and share chunk bytes via the page cache.
    """

    def __init__(
        self,
        store: ChunkedDataset,
        chunk_ids: Sequence[str] | None = None,
        max_resident_columns: int = 2,
    ) -> None:
        # Deliberately does NOT call Dataset.__init__: columns are lazy.
        if max_resident_columns < 1:
            raise ChunkedDatasetError("max_resident_columns must be >= 1")
        self._store = store
        if chunk_ids is None:
            self._chunk_ids = tuple(m.chunk_id for m in store.chunks)
        else:
            known = {m.chunk_id: m for m in store.chunks}
            missing = [c for c in chunk_ids if c not in known]
            if missing:
                raise ChunkedDatasetError(
                    f"store {store.path} no longer holds chunks {missing}"
                )
            self._chunk_ids = tuple(chunk_ids)
        by_id = {m.chunk_id: i for i, m in enumerate(store.chunks)}
        self._chunk_indices = tuple(by_id[c] for c in self._chunk_ids)
        self.max_resident_columns = max_resident_columns
        self._schema = store.schema
        self._group_name = store.group_name
        self._group_labels = store.group_labels
        # Group codes are lazy: row totals and group sizes come from the
        # chunk manifests, and the chunk-native counting path (packed
        # covers + per-chunk group bit-stacks) never reads the int64
        # column at all.  Consumers that do (fingerprints, restrict)
        # trigger a one-off gather through the ``_group_codes`` property.
        self._resident_codes: np.ndarray | None = None
        metas = [store._chunk_meta(i) for i in self._chunk_indices]
        self._n_rows = sum(m.n_rows for m in metas)
        sizes = np.zeros(len(self._group_labels), dtype=np.int64)
        for meta in metas:
            sizes += np.asarray(meta.group_sizes, dtype=np.int64)
        self._group_sizes = tuple(int(c) for c in sizes)
        self._columns: dict[str, np.ndarray] = {}  # unused; lazy instead
        self._column_cache: "OrderedDict[str, np.ndarray]" = OrderedDict()

    # -- chunk-level surface (used by the chunk-aware counting backend)

    @property
    def chunk_store(self) -> ChunkedDataset:
        return self._store

    @property
    def chunk_ids(self) -> tuple[str, ...]:
        return self._chunk_ids

    @property
    def chunk_indices(self) -> tuple[int, ...]:
        return self._chunk_indices

    @property
    def n_chunks(self) -> int:
        return len(self._chunk_ids)

    def chunk_metas(self) -> tuple[ChunkMeta, ...]:
        return tuple(
            self._store._chunk_meta(i) for i in self._chunk_indices
        )

    def iter_chunks(self) -> Iterator[Dataset]:
        for index in self._chunk_indices:
            yield self._store.chunk_dataset(index)

    def iter_chunk_columns(self, name: str) -> Iterator[np.ndarray]:
        """Yield one canonical-dtype array per chunk for ``name``.

        Continuous columns are stored at canonical ``float64`` width, so
        each yield is the chunk's memory-mapped file directly — nothing
        full-length (and for continuous data nothing at all) is
        materialised.  Concatenating the yields equals
        :meth:`column` exactly.
        """
        if name not in self._schema:
            raise KeyError(name)
        attr = self._schema[name]
        dtype = np.float64 if attr.is_continuous else np.int64
        for index in self._chunk_indices:
            meta = self._store._chunk_meta(index)
            raw = self._store._mmap_file(meta, name)
            yield raw if raw.dtype == dtype else raw.astype(dtype)

    def resident_columns(self) -> tuple[str, ...]:
        """Names of the currently materialised columns (oldest first)."""
        return tuple(self._column_cache)

    # -- Dataset overrides ------------------------------------------------

    @property
    def _group_codes(self) -> np.ndarray:
        """Lazily gathered ``int64`` group codes (8 bytes/row — only
        consumers outside the chunk-native counting path pay for it)."""
        codes = self._resident_codes
        if codes is None:
            codes = self._store.gather_group_codes(self._chunk_indices)
            self._resident_codes = codes
        return codes

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def group_counts(self, mask: np.ndarray | None = None) -> np.ndarray:
        if mask is None:
            # Manifest-derived totals; no reason to touch the codes.
            return np.asarray(self._group_sizes, dtype=np.int64)
        return super().group_counts(mask)

    def column(self, name: str) -> np.ndarray:
        cached = self._column_cache.get(name)
        if cached is None:
            if name not in self._schema:
                raise KeyError(name)
            cached = self._store.gather_column(name, self._chunk_indices)
            self._column_cache[name] = cached
            while len(self._column_cache) > self.max_resident_columns:
                self._column_cache.popitem(last=False)
        else:
            self._column_cache.move_to_end(name)
        view = cached.view()
        view.flags.writeable = False
        return view

    def _materialised(self) -> dict[str, np.ndarray]:
        return {name: self.column(name) for name in self._schema.names}

    def restrict(self, mask: np.ndarray) -> Dataset:
        """Materialising restriction: the kept rows become an ordinary
        in-memory dataset (callers narrow *before* going out of core)."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != self._group_codes.shape:
            raise DatasetError("mask must be a boolean array over rows")
        columns = {
            name: self.column(name)[mask] for name in self._schema.names
        }
        return Dataset(
            self._schema,
            columns,
            self._group_codes[mask],
            self._group_labels,
            self._group_name,
        )

    def select_groups(self, labels: Sequence[str]) -> Dataset:
        labels = tuple(labels)
        if len(labels) < 1:
            raise DatasetError("need at least one group")
        indices = [self.group_index(g) for g in labels]
        keep = np.isin(self._group_codes, indices)
        recode = np.full(self.n_groups, -1, dtype=np.int64)
        for new, old in enumerate(indices):
            recode[old] = new
        columns = {
            name: self.column(name)[keep] for name in self._schema.names
        }
        return Dataset(
            self._schema,
            columns,
            recode[self._group_codes[keep]],
            labels,
            self._group_name,
        )

    def project(self, names: Sequence[str]) -> "ChunkedView":
        """Projection stays lazy: a new view over the same chunks."""
        sub = self._schema.subset(names)
        view = ChunkedView(
            self._store,
            chunk_ids=self._chunk_ids,
            max_resident_columns=self.max_resident_columns,
        )
        view._schema = sub
        return view

    def missing_mask(self) -> np.ndarray:
        mask = np.zeros(self.n_rows, dtype=bool)
        for attr in self._schema:
            if attr.is_continuous:
                mask |= np.isnan(self.column(attr.name))
        return mask

    # -- pickling ---------------------------------------------------------

    def __reduce__(self):
        return (
            _reopen_view,
            (
                str(self._store.path),
                self._chunk_ids,
                self.max_resident_columns,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChunkedView({self._store.path}: {self.n_rows} rows, "
            f"{self.n_chunks} chunks)"
        )
