"""Tabular data substrate: schema, columnar storage, I/O and generators."""

from .chunked import ChunkedDataset, ChunkedDatasetError, ChunkedView
from .schema import Attribute, AttributeKind, Schema, SchemaError
from .table import Dataset, DatasetError, GroupInfo

__all__ = [
    "Attribute",
    "AttributeKind",
    "Schema",
    "SchemaError",
    "Dataset",
    "DatasetError",
    "GroupInfo",
    "ChunkedDataset",
    "ChunkedDatasetError",
    "ChunkedView",
]
