"""Synthetic semiconductor packaging/test data (paper Section 6, Table 7).

The paper's case study uses proprietary Intel data: per-package records
from the segment between wafer test and final test, with ~148 attributes
(~30 continuous) covering equipment routing (chip-attach modules, placement
tools, tray positions, test heads...), process sensor readings (reflow
temperatures, times above solder liquidus), and test outcomes.  The
comparison is a random *population sample* vs the *parts failing one
specific test*.

This generator plants the exact failure mechanism Table 7 reports: the
**rear lane of one chip-attach module (CAM entity "SCE", fed by placement
tool "JVF") runs hot**, so impacted parts spend longer above the solder
liquidus temperature and see higher peak reflow temperatures; failures
concentrate on that equipment path and on the rear tray row.  Everything
else is process noise.

Planted supports mirror Table 7 (population vs failing sample):

=====================================  ==========  =======
contrast                               population  failing
=====================================  ==========  =======
CAM entity = SCE                       0.28        0.55
Placement tool = JVF                   0.28        0.55
CAM row location = Rear                0.34        0.50
CAM time above liquidus in hot window  0.04        0.21
CAM peak temperature in hot window     0.24        0.37
Die temp above std in hot window       0.13        0.30
=====================================  ==========  =======
"""

from __future__ import annotations

import numpy as np

from .schema import Attribute, Schema
from .table import Dataset

__all__ = ["manufacturing", "scaling_dataset"]

GROUPS = ("Population", "Failed")


def manufacturing(
    n_population: int = 3000,
    n_failed: int = 420,
    seed: int = 2019,
    n_noise_categorical: int = 118,
    n_noise_continuous: int = 24,
    missing_rate: float = 0.0,
) -> Dataset:
    """Generate the Section 6 case-study dataset.

    Defaults give 148 attributes (30 continuous, 118 categorical) like the
    paper's limited test extract.  The failure signals are planted on the
    first few named attributes; the ``tool_*`` and ``sensor_*`` columns are
    group-independent noise mimicking the bulk of the trace data.
    """
    rng = np.random.default_rng(seed)
    n = n_population + n_failed
    failed = np.concatenate(
        [
            np.zeros(n_population, dtype=np.int64),
            np.ones(n_failed, dtype=np.int64),
        ]
    )

    def pick(pop_probs, fail_probs):
        pop = rng.choice(len(pop_probs), n_population, p=pop_probs)
        bad = rng.choice(len(fail_probs), n_failed, p=fail_probs)
        return np.concatenate([pop, bad])

    attributes: list[Attribute] = []
    columns: dict[str, np.ndarray] = {}

    # --- the planted equipment path (Table 7 rows 1, 2, 5) ---------------
    cams = ("SCA", "SCB", "SCC", "SCE")
    cam = pick([0.26, 0.24, 0.22, 0.28], [0.17, 0.15, 0.13, 0.55])
    attributes.append(Attribute.categorical("CAM entity", cams))
    columns["CAM entity"] = cam

    # placement tool is tied to the CAM (JVF feeds SCE)
    tools = ("JVA", "JVB", "JVC", "JVF")
    tool = np.where(
        cam == 3,
        np.where(rng.uniform(0, 1, n) < 0.97, 3, rng.integers(0, 3, n)),
        rng.integers(0, 3, n),
    ).astype(np.int64)
    attributes.append(Attribute.categorical("Placement tool", tools))
    columns["Placement tool"] = tool

    rows_ = ("Front", "Middle", "Rear")
    row = pick([0.33, 0.33, 0.34], [0.26, 0.24, 0.50])
    attributes.append(Attribute.categorical("CAM row location", rows_))
    columns["CAM row location"] = row

    # --- thermal signals (Table 7 rows 3, 4, 6, 7) ------------------------
    # The hot rear lane of SCE: failing parts drawn from shifted windows.
    hot = (failed == 1) & (
        rng.uniform(0, 1, n) < 0.45
    )  # subset of failures actually caused by the lane

    time_liq = rng.normal(88.0, 2.4, n)
    time_liq[hot] = rng.normal(92.4, 0.6, int(hot.sum()))
    attributes.append(Attribute.continuous("CAM time above liquidus"))
    columns["CAM time above liquidus"] = time_liq

    peak = rng.normal(251.0, 3.1, n)
    peak[hot] = rng.normal(255.4, 1.2, int(hot.sum()))
    attributes.append(Attribute.continuous("CAM Peak temperature"))
    columns["CAM Peak temperature"] = peak

    peak_std = rng.normal(10.35, 0.22, n)
    peak_std[hot] = rng.normal(10.58, 0.05, int(hot.sum()))
    attributes.append(Attribute.continuous("CAM peak temp std"))
    columns["CAM peak temp std"] = peak_std

    die_above = rng.normal(66.9, 0.35, n)
    die_above[hot] = rng.normal(67.22, 0.03, int(hot.sum()))
    attributes.append(Attribute.continuous("Die temp above std"))
    columns["Die temp above std"] = die_above

    # --- other process context (group-independent) ------------------------
    attributes.append(
        Attribute.categorical("Test head", ("TH1", "TH2", "TH3"))
    )
    columns["Test head"] = rng.integers(0, 3, n)
    attributes.append(
        Attribute.categorical("Oven lane", ("L1", "L2", "L3", "L4"))
    )
    columns["Oven lane"] = rng.integers(0, 4, n)
    attributes.append(
        Attribute.categorical("Bond head", ("BH1", "BH2"))
    )
    columns["Bond head"] = rng.integers(0, 2, n)

    for i in range(n_noise_categorical - 6):
        name = f"tool_{i + 1:03d}"
        levels = int(rng.integers(2, 6))
        cats = tuple(f"E{j}" for j in range(levels))
        attributes.append(Attribute.categorical(name, cats))
        columns[name] = rng.integers(0, levels, n)

    for i in range(n_noise_continuous):
        name = f"sensor_{i + 1:03d}"
        loc = float(rng.uniform(-2, 2))
        scale = float(rng.uniform(0.5, 3.0))
        attributes.append(Attribute.continuous(name))
        columns[name] = rng.normal(loc, scale, n)

    # two mildly correlated sensors to exercise redundancy pruning
    attributes.append(Attribute.continuous("sensor_dup_a"))
    attributes.append(Attribute.continuous("sensor_dup_b"))
    base = rng.normal(0, 1, n)
    columns["sensor_dup_a"] = base
    columns["sensor_dup_b"] = base + rng.normal(0, 0.05, n)

    if missing_rate > 0:
        # sensor dropouts: real trace data has gaps (Section 4.3 notes
        # missing values are common in practice)
        for attr in attributes:
            if attr.is_continuous:
                dropout = rng.uniform(0, 1, n) < missing_rate
                columns[attr.name] = np.where(
                    dropout, np.nan, columns[attr.name]
                )

    order = rng.permutation(n)
    columns = {k: v[order] for k, v in columns.items()}
    return Dataset(Schema.of(attributes), columns, failed[order], GROUPS)


def scaling_dataset(
    n_rows: int, n_features: int = 120, seed: int = 7
) -> Dataset:
    """Large synthetic trace for the Section 6 scaling experiment
    (100k/500k/1M rows x 120 features in the paper; pass laptop-sized
    ``n_rows`` here).

    Half the features are continuous, half categorical; a handful carry
    weak signals so mining does real work instead of pruning everything at
    level 1.
    """
    rng = np.random.default_rng(seed)
    n_cont = n_features // 2
    n_cat = n_features - n_cont
    group = (rng.uniform(0, 1, n_rows) < 0.15).astype(np.int64)

    attributes: list[Attribute] = []
    columns: dict[str, np.ndarray] = {}
    for i in range(n_cont):
        name = f"m_{i + 1:03d}"
        shift = 0.8 if i < 5 else 0.0
        values = rng.normal(0, 1, n_rows) + shift * group
        attributes.append(Attribute.continuous(name))
        columns[name] = values
    for i in range(n_cat):
        name = f"e_{i + 1:03d}"
        levels = 4
        cats = tuple(f"v{j}" for j in range(levels))
        base = rng.integers(0, levels, n_rows)
        if i < 3:
            skew = rng.uniform(0, 1, n_rows) < 0.3
            base = np.where((group == 1) & skew, 0, base)
        attributes.append(Attribute.categorical(name, cats))
        columns[name] = base.astype(np.int64)
    return Dataset(
        Schema.of(attributes), columns, group, ("pass", "fail")
    )
