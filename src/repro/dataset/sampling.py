"""Sampling utilities for large datasets (paper Section 6).

The manufacturing case study "took a sample of the entire population and
compared it with parts that failed a particular test" — the standard
recipe when the healthy population dwarfs the anomaly group.  These
helpers implement that recipe plus plain stratified subsampling for
bringing cluster-scale data down to workstation scale while preserving
group ratios (the convention all scaled benches follow).
"""

from __future__ import annotations

import numpy as np

from .table import Dataset, DatasetError

__all__ = [
    "stratified_sample",
    "population_vs_group",
    "train_holdout_split",
]


def stratified_sample(
    dataset: Dataset,
    fraction: float | None = None,
    n_rows: int | None = None,
    seed: int = 0,
) -> Dataset:
    """Random subsample preserving per-group proportions.

    Exactly one of ``fraction`` and ``n_rows`` must be given.  Every group
    retains at least one row (when it had any).
    """
    if (fraction is None) == (n_rows is None):
        raise ValueError("give exactly one of fraction or n_rows")
    if fraction is not None:
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
    else:
        if n_rows < 1 or n_rows > dataset.n_rows:
            raise ValueError("n_rows out of range")
        fraction = n_rows / dataset.n_rows

    rng = np.random.default_rng(seed)
    codes = np.asarray(dataset.group_codes)
    keep = np.zeros(dataset.n_rows, dtype=bool)
    for g in range(dataset.n_groups):
        indices = np.nonzero(codes == g)[0]
        if indices.size == 0:
            continue
        take = max(1, int(round(indices.size * fraction)))
        chosen = rng.choice(indices, size=min(take, indices.size),
                            replace=False)
        keep[chosen] = True
    return dataset.restrict(keep)


def population_vs_group(
    dataset: Dataset,
    anomaly_group: str,
    sample_ratio: float = 5.0,
    seed: int = 0,
    labels: tuple[str, str] = ("Population", "Anomaly"),
) -> Dataset:
    """Build the Section 6 comparison: a random *population sample*
    (drawn from every group) vs the full anomaly group.

    Parameters
    ----------
    anomaly_group:
        Label of the group of interest (e.g. the parts failing one test).
    sample_ratio:
        Population sample size as a multiple of the anomaly group's size
        (capped at the available rows).
    labels:
        Output group labels.
    """
    if labels[0] == labels[1]:
        raise DatasetError("output labels must differ")
    anomaly_index = dataset.group_index(anomaly_group)
    codes = np.asarray(dataset.group_codes)
    anomaly_rows = np.nonzero(codes == anomaly_index)[0]
    if anomaly_rows.size == 0:
        raise DatasetError(f"group {anomaly_group!r} is empty")

    rng = np.random.default_rng(seed)
    want = int(round(anomaly_rows.size * sample_ratio))
    pool = np.arange(dataset.n_rows)
    sample = rng.choice(
        pool, size=min(want, pool.size), replace=False
    )

    keep = np.zeros(dataset.n_rows, dtype=bool)
    keep[sample] = True
    keep[anomaly_rows] = True
    restricted = dataset.restrict(keep)

    # relabel: anomaly rows -> group 1, sampled others -> group 0
    new_codes = np.where(
        np.asarray(restricted.group_codes) == anomaly_index, 1, 0
    ).astype(np.int64)
    return Dataset(
        restricted.schema,
        {
            name: restricted.column(name)
            for name in restricted.schema.names
        },
        new_codes,
        labels,
        dataset.group_name,
    )


def train_holdout_split(
    dataset: Dataset, holdout_fraction: float = 0.3, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """Stratified train/holdout split.

    Patterns are mined on the train part and *validated* on the holdout —
    the standard guard against the spurious-discovery risk the paper's
    statistical machinery addresses analytically.
    """
    if not 0 < holdout_fraction < 1:
        raise ValueError("holdout_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    codes = np.asarray(dataset.group_codes)
    holdout = np.zeros(dataset.n_rows, dtype=bool)
    for g in range(dataset.n_groups):
        indices = np.nonzero(codes == g)[0]
        take = int(round(indices.size * holdout_fraction))
        if indices.size and take:
            chosen = rng.choice(indices, size=take, replace=False)
            holdout[chosen] = True
    return dataset.restrict(~holdout), dataset.restrict(holdout)
