"""Bitmap index over categorical (or pre-binned) data.

Related work [29] (SciCSM) accelerates contrast set mining with bitmap
indices: one packed bit-vector per (attribute, value), itemset coverage by
bitwise AND, counting by popcount.  This module provides that substrate
for categorical datasets (bin continuous attributes first, e.g. with
:mod:`repro.baselines.discretizers`), including per-group popcounts so an
itemset's full contingency row costs ``|items| + |groups|`` vectorised
word operations.

The ablation bench ``bench_ablation_bitmap.py`` compares this counting
path against the boolean-mask path used elsewhere.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.items import CategoricalItem, Itemset
from .table import Dataset

__all__ = ["BitmapIndex", "popcount"]


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount(bits: np.ndarray) -> int:
        """Number of set bits in a packed ``uint8`` vector."""
        return int(np.bitwise_count(bits).sum())

    def popcount_rows(bits: np.ndarray) -> np.ndarray:
        """Per-row popcounts of a 2-d packed array (one row per group)."""
        return np.bitwise_count(bits).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT_TABLE = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def popcount(bits: np.ndarray) -> int:
        """Number of set bits in a packed ``uint8`` vector."""
        return int(_POPCOUNT_TABLE[bits].sum(dtype=np.int64))

    def popcount_rows(bits: np.ndarray) -> np.ndarray:
        """Per-row popcounts of a 2-d packed array (one row per group)."""
        return _POPCOUNT_TABLE[bits].sum(axis=1, dtype=np.int64)


class BitmapIndex:
    """Packed-bit coverage index for the categorical attributes of a
    dataset."""

    def __init__(
        self, dataset: Dataset, attributes: Sequence[str] | None = None
    ) -> None:
        names = (
            tuple(attributes)
            if attributes is not None
            else dataset.schema.categorical_names
        )
        for name in names:
            if not dataset.attribute(name).is_categorical:
                raise ValueError(
                    f"bitmap index needs categorical attributes; "
                    f"{name!r} is continuous (bin it first)"
                )
        self.dataset = dataset
        self.attributes = names
        self.n_rows = dataset.n_rows
        self._n_words = (self.n_rows + 7) // 8

        self._bitmaps: dict[tuple[str, str], np.ndarray] = {}
        for name in names:
            attr = dataset.attribute(name)
            column = dataset.column(name)
            for code, label in enumerate(attr.categories):
                self._bitmaps[(name, label)] = np.packbits(
                    column == code
                )

        self._group_bitmaps: list[np.ndarray] = []
        codes = np.asarray(dataset.group_codes)
        for g in range(dataset.n_groups):
            self._group_bitmaps.append(np.packbits(codes == g))

        self._full = np.packbits(np.ones(self.n_rows, dtype=bool))

    # ------------------------------------------------------------------

    @property
    def full_bits(self) -> np.ndarray:
        """Packed all-ones vector (coverage of the empty itemset)."""
        return self._full

    @property
    def group_bitmaps(self) -> tuple[np.ndarray, ...]:
        """One packed membership vector per group, in group order."""
        return tuple(self._group_bitmaps)

    def item_bitmap(self, item: CategoricalItem) -> np.ndarray:
        """The packed coverage bits of one item."""
        try:
            return self._bitmaps[(item.attribute, item.value)]
        except KeyError:
            raise KeyError(
                f"no bitmap for {item}; index covers {self.attributes}"
            ) from None

    def cover_bits(self, itemset: Itemset) -> np.ndarray:
        """Packed coverage of an itemset (AND of its item bitmaps)."""
        bits = self._full
        for item in itemset:
            if not isinstance(item, CategoricalItem):
                raise ValueError(
                    "bitmap index covers categorical items only"
                )
            bits = bits & self.item_bitmap(item)
        return bits

    @staticmethod
    def popcount(bits: np.ndarray) -> int:
        """Number of set bits in a packed vector."""
        return popcount(bits)

    def count(self, itemset: Itemset) -> int:
        """Total rows covered by an itemset."""
        return self.popcount(self.cover_bits(itemset))

    def group_counts(self, itemset: Itemset) -> np.ndarray:
        """Per-group covered counts — the miner's core statistic."""
        bits = self.cover_bits(itemset)
        return np.array(
            [
                self.popcount(bits & group_bits)
                for group_bits in self._group_bitmaps
            ],
            dtype=np.int64,
        )

    def supports(self, itemset: Itemset) -> np.ndarray:
        counts = self.group_counts(itemset).astype(float)
        sizes = np.array(self.dataset.group_sizes, dtype=float)
        out = np.zeros_like(counts)
        np.divide(counts, sizes, out=out, where=sizes > 0)
        return out

    def memory_bytes(self) -> int:
        """Bytes held by all bitmaps (the space-efficiency argument)."""
        total = sum(b.nbytes for b in self._bitmaps.values())
        total += sum(b.nbytes for b in self._group_bitmaps)
        return total + self._full.nbytes
