"""Streaming contrast-set mining over a sliding window.

The monitoring loop the paper motivates (Section 1: "deliver timely
feedback to the engineers"): rows stream in, the miner periodically
re-mines the current window, and reports *drift* — contrasts that newly
emerged, strengthened, or vanished since the previous refresh.  This
follows the authors' companion work on mixed streaming data ([17]).

Emergence/disappearance is decided statistically, not by exact itemset
identity: a new pattern whose region is subsumed by (or subsumes) an old
pattern with a statistically-equal support difference is the *same*
finding, not news.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.config import MinerConfig
from ..core.contrast import ContrastPattern
from ..core.miner import ContrastSetMiner
from ..dataset.schema import Schema
from ..dataset.table import Dataset
from .window import SlidingWindow

__all__ = ["StreamUpdate", "StreamingContrastMiner"]


@dataclass
class StreamUpdate:
    """What changed at a refresh."""

    refreshed: bool
    rows_seen: int
    window_rows: int
    patterns: list[ContrastPattern] = field(default_factory=list)
    emerged: list[ContrastPattern] = field(default_factory=list)
    vanished: list[ContrastPattern] = field(default_factory=list)
    prune_counts: dict[str, int] = field(default_factory=dict)
    """Prune-reason counts from the refresh's mining run (empty when the
    update did not refresh).  The refresh mines through the same
    :class:`~repro.core.pipeline.PruningPipeline` as batch runs, so these
    are directly comparable with ``MiningResult.summary().prune_reasons``
    — a window whose pruning profile shifts (e.g. redundancy suddenly
    dominating) is an early drift signal alongside emerged/vanished."""
    degraded: bool = False
    """True when a parallel refresh failed outright and the window was
    re-mined serially instead — the monitoring loop kept its cadence, but
    this refresh ran without workers (see ``fallback_refreshes``)."""

    @property
    def drifted(self) -> bool:
        return bool(self.emerged or self.vanished)


def _regions_overlap(a: ContrastPattern, b: ContrastPattern) -> bool:
    """Same attribute set, equal categorical items, overlapping numeric
    intervals — the window's observed bounds jitter between refreshes, so
    strict containment would call every refresh a drift."""
    from ..core.items import CategoricalItem, NumericItem

    if a.itemset.attributes != b.itemset.attributes:
        return False
    for item in a.itemset:
        other = b.itemset.item_for(item.attribute)
        if isinstance(item, CategoricalItem):
            if item != other:
                return False
        else:
            assert isinstance(other, NumericItem)
            if not item.interval.overlaps(other.interval):
                return False
    return True


def _same_finding(
    a: ContrastPattern, b: ContrastPattern, alpha: float
) -> bool:
    """Are two patterns the same finding (region-wise and statistically)?"""
    if a.itemset == b.itemset:
        return True
    if not _regions_overlap(a, b):
        return False
    hi = max(range(len(a.supports)), key=a.supports.__getitem__)
    lo = min(range(len(a.supports)), key=a.supports.__getitem__)

    def adjusted(support: float, size: int) -> float:
        # Laplace/continuity correction: supports of exactly 0 or 1 have
        # zero estimated sampling variance, collapsing the CLT band and
        # flagging every refresh as drift.
        return (support * size + 1.0) / (size + 2.0)

    # Both differences are estimates from (partially) different windows,
    # so the band combines both sampling variances.
    import math

    from ..core.stats import clt_difference_bound

    band_a = clt_difference_bound(
        adjusted(a.supports[hi], a.group_sizes[hi]),
        adjusted(a.supports[lo], a.group_sizes[lo]),
        a.group_sizes[hi],
        a.group_sizes[lo],
        alpha,
    )
    band_b = clt_difference_bound(
        adjusted(b.supports[hi], b.group_sizes[hi]),
        adjusted(b.supports[lo], b.group_sizes[lo]),
        b.group_sizes[hi],
        b.group_sizes[lo],
        alpha,
    )
    diff_a = a.supports[hi] - a.supports[lo]
    diff_b = b.supports[hi] - b.supports[lo]
    return abs(diff_a - diff_b) <= math.hypot(band_a, band_b)


class StreamingContrastMiner:
    """Windowed re-mining with drift reporting.

    Parameters
    ----------
    schema / group_labels:
        Stream row layout (categorical columns arrive as codes).
    config:
        Miner configuration used at every refresh.
    window_size:
        Rows kept in the sliding window.
    refresh_every:
        Re-mine after this many new rows (a refresh also happens on the
        first update once the window has ``min_rows`` rows).
    min_rows:
        Do not mine before the window holds at least this many rows.
    n_jobs:
        Worker processes per refresh (``> 1`` routes each refresh through
        the fault-tolerant parallel scheduler).  An always-on monitoring
        loop must outlive any single bad refresh: if a parallel refresh
        still fails — pool creation itself failing, resource exhaustion —
        the window is re-mined serially and the update is flagged
        ``degraded`` rather than killing the stream.
    publish_to:
        Optional :class:`~repro.serve.PatternServer` (anything with a
        ``publish_result`` method).  Each successful refresh is published
        as the server's new active run — the server's atomic reference
        swap means the monitoring loop can keep a query/match front end
        current without ever taking it down.  Publication failures are
        counted (``failed_publishes``) but never interrupt the stream.
    """

    def __init__(
        self,
        schema: Schema,
        group_labels: Sequence[str],
        config: MinerConfig | None = None,
        window_size: int = 5000,
        refresh_every: int = 1000,
        min_rows: int = 200,
        n_jobs: int = 1,
        publish_to=None,
    ) -> None:
        if refresh_every < 1:
            raise ValueError("refresh_every must be positive")
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.config = config or MinerConfig()
        self.window = SlidingWindow(schema, group_labels, window_size)
        self.refresh_every = refresh_every
        self.min_rows = min_rows
        self.n_jobs = n_jobs
        self.fallback_refreshes = 0
        """Refreshes that fell back to serial mining after a parallel
        failure (the stream-level graceful-degradation counter)."""
        self.publish_to = publish_to
        self.failed_publishes = 0
        """Refreshes whose publication to ``publish_to`` raised (the
        refresh itself still counts; the stream keeps running)."""
        self._refresh_count = 0
        self._since_refresh = 0
        self._patterns: list[ContrastPattern] = []
        self._ever_refreshed = False
        self._chunk_cursors: dict[str, int] = {}

    @property
    def current_patterns(self) -> list[ContrastPattern]:
        """Patterns from the most recent refresh."""
        return list(self._patterns)

    def update(
        self,
        columns: Mapping[str, np.ndarray],
        group_codes: np.ndarray,
    ) -> StreamUpdate:
        """Feed a chunk of rows; re-mine if the refresh interval passed."""
        group_codes = np.asarray(group_codes)
        self.window.append(columns, group_codes)
        self._since_refresh += int(group_codes.shape[0])

        window_ready = len(self.window) >= self.min_rows
        due = (
            self._since_refresh >= self.refresh_every
            or not self._ever_refreshed
        )
        if not (window_ready and due):
            return StreamUpdate(
                refreshed=False,
                rows_seen=self.window.total_seen,
                window_rows=len(self.window),
                patterns=self.current_patterns,
            )
        return self._refresh()

    def update_dataset(self, dataset: Dataset) -> StreamUpdate:
        """Feed a chunk given as a Dataset with a compatible schema."""
        return self.update(
            {name: dataset.column(name) for name in
             self.window.schema.names},
            np.asarray(dataset.group_codes),
        )

    def consume_chunks(self, store) -> list[StreamUpdate]:
        """Feed every not-yet-consumed chunk of a
        :class:`~repro.dataset.chunked.ChunkedDataset` into the window.

        The natural pairing for the out-of-core layer: a producer
        appends immutable chunks to the store, and the monitoring loop
        periodically calls ``consume_chunks`` — each new chunk becomes
        one :meth:`update` call, triggering refreshes on the usual
        cadence.  Progress is tracked per store path, so interleaving
        several stores works; chunks already fed are never re-fed
        (chunk immutability makes the cursor a plain index).  Returns
        the updates in chunk order (empty if nothing new appeared).
        """
        store.reload()
        cursor = self._chunk_cursors.get(str(store.path), 0)
        updates: list[StreamUpdate] = []
        for index in range(cursor, store.n_chunks):
            updates.append(self.update_dataset(store.chunk_dataset(index)))
        self._chunk_cursors[str(store.path)] = store.n_chunks
        return updates

    def _refresh(self) -> StreamUpdate:
        snapshot = self.window.snapshot()
        mineable = all(size > 0 for size in snapshot.group_sizes)
        new_patterns: list[ContrastPattern] = []
        prune_counts: dict[str, int] = {}
        degraded = False
        if mineable:
            miner = ContrastSetMiner(self.config)
            try:
                result = miner.mine(snapshot, n_jobs=self.n_jobs)
            except Exception:
                if self.n_jobs == 1:
                    raise
                # The scheduler already retries and falls back per task;
                # reaching here means the parallel run itself could not
                # start or finish.  Degrade to a serial refresh so the
                # monitoring loop never drops a beat.
                self.fallback_refreshes += 1
                degraded = True
                result = miner.mine(snapshot)
            new_patterns = result.patterns
            prune_counts = dict(result.stats.prune_reasons)
            self._refresh_count += 1
            if self.publish_to is not None:
                try:
                    self.publish_to.publish_result(
                        result,
                        run_id=f"stream-{self._refresh_count:06d}",
                    )
                except Exception:
                    self.failed_publishes += 1

        alpha = self.config.alpha
        emerged = [
            p
            for p in new_patterns
            if not any(_same_finding(p, old, alpha) for old in self._patterns)
        ]
        vanished = [
            old
            for old in self._patterns
            if not any(_same_finding(old, p, alpha) for p in new_patterns)
        ]
        previous_existed = self._ever_refreshed
        self._patterns = new_patterns
        self._since_refresh = 0
        self._ever_refreshed = True
        return StreamUpdate(
            refreshed=True,
            rows_seen=self.window.total_seen,
            window_rows=len(self.window),
            patterns=list(new_patterns),
            emerged=emerged if previous_existed else list(new_patterns),
            vanished=vanished if previous_existed else [],
            prune_counts=prune_counts,
            degraded=degraded,
        )
