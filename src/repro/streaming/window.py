"""Sliding window over a row stream (streaming extension).

The paper closes by noting that manufacturing data arrives continuously
and cites the authors' companion work on contrast patterns for *mixed
streaming data* (reference [17], EDBT 2018).  This module provides the
substrate for that extension: a bounded sliding window of the most recent
rows, kept in columnar numpy buffers so a :class:`~repro.dataset.table.
Dataset` snapshot is cheap to materialise for re-mining.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Mapping, Sequence

import numpy as np

from ..dataset.schema import Schema
from ..dataset.table import Dataset, DatasetError

__all__ = ["SlidingWindow"]


class SlidingWindow:
    """A bounded FIFO of rows with columnar storage.

    Rows are appended in chunks; when the window exceeds ``capacity``, the
    oldest rows fall out.  ``snapshot()`` materialises the current
    contents as a regular :class:`Dataset`.
    """

    def __init__(
        self,
        schema: Schema,
        group_labels: Sequence[str],
        capacity: int,
        group_name: str = "group",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.schema = schema
        self.group_labels = tuple(group_labels)
        self.capacity = capacity
        self.group_name = group_name
        self._chunks: Deque[dict[str, np.ndarray]] = deque()
        self._group_chunks: Deque[np.ndarray] = deque()
        self._size = 0
        self.total_seen = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity

    def append(
        self,
        columns: Mapping[str, np.ndarray],
        group_codes: np.ndarray,
    ) -> None:
        """Append a chunk of rows (columnar, already coded)."""
        group_codes = np.asarray(group_codes)
        n = group_codes.shape[0]
        if n == 0:
            return
        chunk: dict[str, np.ndarray] = {}
        for attr in self.schema:
            try:
                col = np.asarray(columns[attr.name])
            except KeyError:
                raise DatasetError(f"missing column {attr.name!r}") from None
            if col.shape[0] != n:
                raise DatasetError(
                    f"column {attr.name!r} has {col.shape[0]} rows, "
                    f"expected {n}"
                )
            chunk[attr.name] = col
        self._chunks.append(chunk)
        self._group_chunks.append(group_codes)
        self._size += n
        self.total_seen += n
        self._evict()

    def append_dataset(self, dataset: Dataset) -> None:
        """Append all rows of a dataset with a compatible schema."""
        if dataset.schema.names != self.schema.names:
            raise DatasetError("schema mismatch")
        if dataset.group_labels != self.group_labels:
            raise DatasetError("group labels mismatch")
        self.append(
            {name: dataset.column(name) for name in self.schema.names},
            np.asarray(dataset.group_codes),
        )

    def _evict(self) -> None:
        while self._size > self.capacity and self._chunks:
            overflow = self._size - self.capacity
            head = self._group_chunks[0]
            if head.shape[0] <= overflow:
                self._chunks.popleft()
                self._group_chunks.popleft()
                self._size -= head.shape[0]
            else:
                # trim the front of the oldest chunk
                chunk = self._chunks[0]
                self._chunks[0] = {
                    name: col[overflow:] for name, col in chunk.items()
                }
                self._group_chunks[0] = head[overflow:]
                self._size -= overflow

    def snapshot(self) -> Dataset:
        """Materialise the window contents as a Dataset."""
        if self._size == 0:
            columns = {
                attr.name: np.array(
                    [], dtype=np.int64 if attr.is_categorical else float
                )
                for attr in self.schema
            }
            return Dataset(
                self.schema,
                columns,
                np.array([], dtype=np.int64),
                self.group_labels,
                self.group_name,
            )
        columns = {
            name: np.concatenate([c[name] for c in self._chunks])
            for name in self.schema.names
        }
        groups = np.concatenate(list(self._group_chunks))
        return Dataset(
            self.schema, columns, groups, self.group_labels, self.group_name
        )
