"""Streaming contrast mining over sliding windows (the companion-work
extension the paper cites as [17])."""

from .miner import StreamingContrastMiner, StreamUpdate
from .window import SlidingWindow

__all__ = ["StreamingContrastMiner", "StreamUpdate", "SlidingWindow"]
