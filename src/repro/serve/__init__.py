"""``repro.serve`` — durable pattern store + online query/serving layer.

The offline side of the system (search, counting, parallel scheduling)
produces a :class:`~repro.core.miner.MiningResult`; this package is the
inference side that keeps it alive:

* :class:`PatternStore` — append-only, versioned on-disk store of runs
  (atomic writes, content-digest fingerprints, corruption detection);
* :class:`PatternIndex` / :class:`Query` — in-memory indexes and the
  declarative query engine, including the per-record point lookup
  :meth:`PatternIndex.match`;
* :class:`PatternServer` — a threaded, stdlib-only REST front with an
  LRU query cache, per-endpoint metrics, and downtime-free hot swap of
  the active run.

Quickstart::

    from repro.serve import PatternStore, PatternServer, ServeConfig

    store = PatternStore("patterns/")
    run_id = store.put(miner.mine(dataset), tags=("nightly",))

    server = PatternServer(store, ServeConfig(port=8765))
    server.publish_run(run_id)
    server.serve_forever()
"""

from .index import IndexedPattern, MatchError, PatternIndex, row_from_dataset
from .plan import MatcherPlan
from .query import Query, QueryError, apply_query, encode_entry
from .server import HTTPError, PatternServer, ServeConfig
from .workers import WorkerPool, reuseport_available
from .store import (
    CorruptRunError,
    PatternStore,
    RunInfo,
    StoreError,
    StoredRun,
    UnknownRunError,
)

__all__ = [
    "PatternStore",
    "StoredRun",
    "RunInfo",
    "StoreError",
    "UnknownRunError",
    "CorruptRunError",
    "PatternIndex",
    "IndexedPattern",
    "MatchError",
    "MatcherPlan",
    "row_from_dataset",
    "Query",
    "QueryError",
    "apply_query",
    "encode_entry",
    "PatternServer",
    "ServeConfig",
    "HTTPError",
    "WorkerPool",
    "reuseport_available",
]
