"""Durable, append-only store of mining runs.

A :class:`PatternStore` turns a :class:`~repro.core.miner.MiningResult`
into a versioned on-disk artifact the serving layer (and tomorrow's
pipeline run) can load back bit-for-bit.  Layout::

    store/
      manifest.json            # the only mutable file; atomically replaced
      runs/
        run-000001-<digest>/
          meta.json            # envelope: versions, fingerprint, summary
          patterns.jsonl       # one JSON pattern record per line
      quarantine/              # corrupt runs moved aside, never deleted

Design rules:

* **Append-only + atomic visibility.**  ``put`` materialises a complete
  run directory under a temporary name, renames it into place, and only
  then rewrites the manifest (temp file + ``os.replace``).  A process
  killed at any point leaves either the previous manifest (the new run
  is invisible garbage ``gc`` collects) or the new one — never a
  manifest pointing at a half-written run.
* **Versioned content.**  ``meta.json`` embeds the store layout version
  and the pattern-schema envelope from :mod:`repro.core.serialize`, so a
  store written by an incompatible build is rejected with a clear error
  instead of mis-parsed.
* **Corruption is detected, not propagated.**  ``patterns.jsonl`` is
  checksummed in ``meta.json``; truncation, bit flips, foreign files and
  malformed JSON all raise :class:`StoreError` subclasses the server
  maps to client-visible statuses — a broken file can never take the
  serving process down or silently serve wrong patterns.
* **Single writer.**  Readers are safe from any number of processes;
  concurrent writers would race the manifest rewrite and must be
  serialised by the caller (one publishing pipeline per store).

JSON-lines over :mod:`repro.core.serialize` keeps the artifact
greppable, diffable, and dependency-free; Python's ``repr``-based float
encoding makes the round trip exact.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..core.contrast import ContrastPattern
from ..core.items import Itemset
from ..core.miner import MiningSummary
from ..core.serialize import (
    SerializationError,
    check_header,
    pattern_from_dict,
    pattern_to_dict,
    serialization_header,
)
from ..resilience.checkpoint import dataset_fingerprint

if TYPE_CHECKING:
    from ..core.config import MinerConfig
    from ..core.miner import MiningResult

__all__ = [
    "STORE_VERSION",
    "StoreError",
    "UnknownRunError",
    "CorruptRunError",
    "RunInfo",
    "StoredRun",
    "PatternStore",
]

STORE_VERSION = 1
_STORE_MAGIC = "repro-pattern-store"
_RUN_MAGIC = "repro-pattern-store-run"
_MANIFEST = "manifest.json"
_RUNS_DIR = "runs"
_QUARANTINE_DIR = "quarantine"
_META = "meta.json"
_PATTERNS = "patterns.jsonl"
_TMP_PREFIX = ".tmp-"


class StoreError(RuntimeError):
    """A pattern store or one of its runs cannot be used."""


class UnknownRunError(StoreError):
    """The requested run id is not in the store manifest."""


class CorruptRunError(StoreError):
    """A run's files are truncated, altered, or from another writer."""


@dataclass(frozen=True)
class RunInfo:
    """Manifest-level summary of one stored run."""

    run_id: str
    created: str
    tags: tuple[str, ...]
    n_patterns: int
    n_rows: int
    group_labels: tuple[str, ...]
    content_digest: str
    """SHA-256 of the source dataset (the checkpoint fingerprint digest)."""

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "created": self.created,
            "tags": list(self.tags),
            "n_patterns": self.n_patterns,
            "n_rows": self.n_rows,
            "group_labels": list(self.group_labels),
            "content_digest": self.content_digest,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunInfo":
        try:
            return cls(
                run_id=str(payload["run_id"]),
                created=str(payload["created"]),
                tags=tuple(payload.get("tags", ())),
                n_patterns=int(payload["n_patterns"]),
                n_rows=int(payload["n_rows"]),
                group_labels=tuple(payload["group_labels"]),
                content_digest=str(payload["content_digest"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(
                f"malformed run entry in manifest: {exc}"
            ) from exc


@dataclass
class StoredRun:
    """A fully loaded run: everything ``put`` persisted."""

    run_id: str
    patterns: list[ContrastPattern]
    interests: dict[Itemset, float]
    summary: MiningSummary
    config: dict[str, Any]
    tags: tuple[str, ...]
    created: str
    fingerprint: dict[str, Any]
    library_version: str

    def miner_config(self) -> "MinerConfig":
        """Rebuild the :class:`MinerConfig` the run was mined under."""
        from ..core.config import MinerConfig
        from ..resilience.policy import ResiliencePolicy

        payload = dict(self.config)
        resilience = payload.pop("resilience", None)
        if resilience is not None:
            payload["resilience"] = ResiliencePolicy(**resilience)
        return MinerConfig(**payload)

    def __len__(self) -> int:
        return len(self.patterns)


def _atomic_write_json(path: Path, payload: Any) -> None:
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=_TMP_PREFIX, suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class PatternStore:
    """Append-only, versioned on-disk store of mining runs."""

    def __init__(self, root: str | os.PathLike, create: bool = True) -> None:
        self.root = Path(root)
        self._manifest_path = self.root / _MANIFEST
        self._runs_dir = self.root / _RUNS_DIR
        self._quarantine_dir = self.root / _QUARANTINE_DIR
        if not self._manifest_path.exists():
            if not create:
                raise StoreError(f"no pattern store at {self.root}")
            if self.root.exists() and not self.root.is_dir():
                raise StoreError(f"{self.root} exists and is not a directory")
            self._runs_dir.mkdir(parents=True, exist_ok=True)
            self._write_manifest({"next_seq": 1, "runs": {}})
        else:
            self._read_manifest()  # validate eagerly: fail at open time

    # -- manifest -------------------------------------------------------

    def _read_manifest(self) -> dict[str, Any]:
        try:
            with self._manifest_path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError as exc:
            raise StoreError(f"no pattern store at {self.root}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"unreadable store manifest {self._manifest_path}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("magic") != _STORE_MAGIC:
            raise StoreError(
                f"{self._manifest_path} is not a repro pattern store manifest"
            )
        version = payload.get("version")
        if version != STORE_VERSION:
            raise StoreError(
                f"store {self.root} has layout version {version!r}; "
                f"this build reads version {STORE_VERSION}"
            )
        if not isinstance(payload.get("runs"), dict):
            raise StoreError(f"store manifest {self._manifest_path} is malformed")
        return payload

    def _write_manifest(self, body: dict[str, Any]) -> None:
        payload = {"magic": _STORE_MAGIC, "version": STORE_VERSION, **body}
        _atomic_write_json(self._manifest_path, payload)

    # -- writing --------------------------------------------------------

    def put(
        self,
        result: "MiningResult",
        tags: Sequence[str] = (),
    ) -> str:
        """Persist a mining run; returns its new immutable run id.

        The run becomes visible (in ``list_runs`` and to servers) only
        once its files are completely on disk — a crash mid-``put``
        leaves unreferenced garbage for :meth:`gc`, never a readable
        half-run.
        """
        manifest = self._read_manifest()
        seq = int(manifest.get("next_seq", 1))
        fingerprint = dataset_fingerprint(result.dataset)
        run_id = f"run-{seq:06d}-{fingerprint['content'][:12]}"
        created = _utc_now()
        tags = tuple(str(tag) for tag in tags)

        records = []
        for pattern in result.patterns:
            record = {"pattern": pattern_to_dict(pattern)}
            interest = result.interests.get(pattern.itemset)
            if interest is not None:
                record["interest"] = float(interest)
            records.append(json.dumps(record, sort_keys=True))
        patterns_blob = ("\n".join(records) + "\n") if records else ""
        patterns_bytes = patterns_blob.encode("utf-8")

        meta = {
            "magic": _RUN_MAGIC,
            "store_version": STORE_VERSION,
            "serialization": serialization_header(),
            "run_id": run_id,
            "created": created,
            "tags": list(tags),
            "n_patterns": len(result.patterns),
            "patterns_sha256": hashlib.sha256(patterns_bytes).hexdigest(),
            "fingerprint": fingerprint,
            "config": asdict(result.config),
            "summary": asdict(result.summary()),
        }

        self._runs_dir.mkdir(parents=True, exist_ok=True)
        tmp_dir = Path(
            tempfile.mkdtemp(dir=self._runs_dir, prefix=_TMP_PREFIX)
        )
        try:
            (tmp_dir / _PATTERNS).write_bytes(patterns_bytes)
            _atomic_write_json(tmp_dir / _META, meta)
            final_dir = self._runs_dir / run_id
            os.replace(tmp_dir, final_dir)
        except BaseException:
            shutil.rmtree(tmp_dir, ignore_errors=True)
            raise

        info = RunInfo(
            run_id=run_id,
            created=created,
            tags=tags,
            n_patterns=len(result.patterns),
            n_rows=int(fingerprint["n_rows"]),
            group_labels=tuple(fingerprint["group_labels"]),
            content_digest=str(fingerprint["content"]),
        )
        manifest["runs"][run_id] = info.to_dict()
        manifest["next_seq"] = seq + 1
        self._write_manifest(
            {"next_seq": manifest["next_seq"], "runs": manifest["runs"]}
        )
        return run_id

    # -- reading --------------------------------------------------------

    def list_runs(self) -> list[RunInfo]:
        """All visible runs, oldest first (run ids sort by sequence)."""
        manifest = self._read_manifest()
        return [
            RunInfo.from_dict(entry)
            for _, entry in sorted(manifest["runs"].items())
        ]

    def latest(self) -> str | None:
        """Id of the most recently put run, or ``None`` for an empty store."""
        runs = self.list_runs()
        return runs[-1].run_id if runs else None

    def get(self, run_id: str) -> StoredRun:
        """Load a run completely, verifying integrity along the way.

        Raises :class:`UnknownRunError` for an id the manifest does not
        reference and :class:`CorruptRunError` for any on-disk anomaly
        (missing files, checksum mismatch, truncation, foreign or
        version-mismatched content).
        """
        manifest = self._read_manifest()
        entry = manifest["runs"].get(run_id)
        if entry is None:
            raise UnknownRunError(
                f"run {run_id!r} is not in store {self.root}"
            )
        info = RunInfo.from_dict(entry)
        run_dir = self._runs_dir / run_id

        meta_path = run_dir / _META
        try:
            with meta_path.open("r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptRunError(
                f"run {run_id!r}: unreadable {_META} ({exc})"
            ) from exc
        if not isinstance(meta, dict) or meta.get("magic") != _RUN_MAGIC:
            raise CorruptRunError(
                f"run {run_id!r}: {_META} is not a pattern-store run record"
            )
        if meta.get("store_version") != STORE_VERSION:
            raise CorruptRunError(
                f"run {run_id!r} has store version "
                f"{meta.get('store_version')!r}; this build reads "
                f"version {STORE_VERSION}"
            )
        try:
            check_header(
                meta.get("serialization", {}), what=f"run {run_id!r}"
            )
        except SerializationError as exc:
            raise CorruptRunError(str(exc)) from exc

        patterns_path = run_dir / _PATTERNS
        try:
            blob = patterns_path.read_bytes()
        except OSError as exc:
            raise CorruptRunError(
                f"run {run_id!r}: unreadable {_PATTERNS} ({exc})"
            ) from exc
        digest = hashlib.sha256(blob).hexdigest()
        if digest != meta.get("patterns_sha256"):
            raise CorruptRunError(
                f"run {run_id!r}: {_PATTERNS} checksum mismatch "
                f"(file is truncated or altered)"
            )

        patterns: list[ContrastPattern] = []
        interests: dict[Itemset, float] = {}
        for lineno, line in enumerate(blob.decode("utf-8").splitlines(), 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                pattern = pattern_from_dict(record["pattern"])
            except (KeyError, TypeError, ValueError) as exc:
                raise CorruptRunError(
                    f"run {run_id!r}: bad record on line {lineno} "
                    f"of {_PATTERNS}: {exc}"
                ) from exc
            patterns.append(pattern)
            if "interest" in record:
                interests[pattern.itemset] = float(record["interest"])
        if len(patterns) != int(meta.get("n_patterns", -1)):
            raise CorruptRunError(
                f"run {run_id!r}: {_PATTERNS} holds {len(patterns)} "
                f"patterns, meta records {meta.get('n_patterns')}"
            )

        try:
            summary_payload = dict(meta["summary"])
            # JSON has no tuples; restore the dataclass's declared type.
            summary_payload["group_labels"] = tuple(
                summary_payload["group_labels"]
            )
            summary = MiningSummary(**summary_payload)
        except (KeyError, TypeError) as exc:
            raise CorruptRunError(
                f"run {run_id!r}: malformed summary in {_META}: {exc}"
            ) from exc

        return StoredRun(
            run_id=run_id,
            patterns=patterns,
            interests=interests,
            summary=summary,
            config=dict(meta.get("config", {})),
            tags=info.tags,
            created=info.created,
            fingerprint=dict(meta.get("fingerprint", {})),
            library_version=str(
                meta.get("serialization", {}).get("library_version", "")
            ),
        )

    # -- maintenance ----------------------------------------------------

    def remove(self, run_id: str) -> None:
        """Drop a run from the manifest (its files remain until :meth:`gc`)."""
        manifest = self._read_manifest()
        if run_id not in manifest["runs"]:
            raise UnknownRunError(
                f"run {run_id!r} is not in store {self.root}"
            )
        del manifest["runs"][run_id]
        self._write_manifest(
            {"next_seq": manifest["next_seq"], "runs": manifest["runs"]}
        )

    def quarantine(self, run_id: str) -> Path:
        """Move a (corrupt) run's files aside and drop it from the manifest.

        The files go to ``quarantine/<run_id>`` for post-mortem rather
        than being deleted; the run stops being visible immediately.
        Idempotent enough for the serving path: a run already quarantined
        by a racing thread just gets dropped from the manifest.
        """
        manifest = self._read_manifest()
        run_dir = self._runs_dir / run_id
        if run_dir.exists():
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self._quarantine_dir / run_id
            if target.exists():
                shutil.rmtree(run_dir, ignore_errors=True)
            else:
                try:
                    os.replace(run_dir, target)
                except OSError:
                    pass  # racing quarantine; manifest drop still applies
        if run_id in manifest["runs"]:
            del manifest["runs"][run_id]
            self._write_manifest(
                {"next_seq": manifest["next_seq"], "runs": manifest["runs"]}
            )
        return self._quarantine_dir / run_id

    def gc(self) -> list[str]:
        """Delete run directories the manifest no longer references.

        Collects leftovers of crashed ``put`` calls (temporary
        directories) and runs dropped with :meth:`remove`.  Quarantined
        runs are kept — they were moved aside deliberately.  Returns the
        names removed.
        """
        manifest = self._read_manifest()
        referenced = set(manifest["runs"])
        removed: list[str] = []
        for stray in sorted(self.root.glob(f"{_TMP_PREFIX}*")):
            stray.unlink(missing_ok=True)  # crashed manifest rewrites
            removed.append(stray.name)
        if not self._runs_dir.exists():
            return removed
        for entry in sorted(self._runs_dir.iterdir()):
            if entry.name in referenced:
                continue
            if entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)
            else:
                entry.unlink(missing_ok=True)
            removed.append(entry.name)
        return removed
