"""Compiled matcher plans: pattern items lowered to columnar numpy.

The per-request cost of :meth:`PatternIndex.match` is a Python loop over
every pattern and every item — fine for a handful of lookups, hopeless
for production traffic.  A :class:`MatcherPlan` compiles one run's
patterns **once** (at index build / hot-swap time) into flat numpy
structures:

* per categorical attribute: a label → code table for the values any
  pattern mentions, plus aligned ``(item code, pattern index)`` arrays;
* per continuous attribute: aligned ``lo`` / ``hi`` bound arrays with
  their closure flags and the owning pattern index;
* per pattern: its item count.

Because an itemset holds **at most one item per attribute**, the pattern
indexes within one attribute's arrays are unique — a whole ``(B, items)``
satisfaction block scatters into the ``(B, patterns)`` tally with a
single fancy-indexed ``+=``, no conflict resolution needed.  A row batch
is then evaluated against *all* patterns in a handful of array ops: a
pattern matches a row exactly when its satisfied-item tally equals its
item count.

Semantics are pinned (by ``tests/test_matcher_plan.py``) to be
bit-identical to the reference scan :meth:`PatternIndex.match` and to
brute-force :meth:`Itemset.cover`:

* a row missing one of a pattern's attributes does not match it;
* an unseen category label (or any non-string value, booleans included)
  never matches a categorical item;
* interval membership follows the items' own endpoint closure; ``NaN``
  matches nothing;
* a non-numeric value for an attribute any pattern constrains
  numerically is a :class:`MatchError` — raised **deterministically** by
  the up-front validators here (attributes checked in sorted order,
  rows in input order), never mid-scan dependent on pattern order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from ..core.items import CategoricalItem, NumericItem
from .index import MatchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .index import IndexedPattern

__all__ = ["MatcherPlan"]


class _CategoricalBlock:
    """All categorical items of one attribute, across every pattern."""

    __slots__ = ("code_of", "item_codes", "patterns")

    def __init__(self) -> None:
        self.code_of: dict[str, int] = {}
        self.item_codes: Any = []  # list while building, ndarray when frozen
        self.patterns: Any = []

    def add(self, value: str, pattern: int) -> None:
        code = self.code_of.setdefault(value, len(self.code_of))
        self.item_codes.append(code)
        self.patterns.append(pattern)

    def freeze(self) -> None:
        self.item_codes = np.asarray(self.item_codes, dtype=np.int64)
        self.patterns = np.asarray(self.patterns, dtype=np.intp)


class _NumericBlock:
    """All numeric items of one attribute, across every pattern."""

    __slots__ = ("lo", "hi", "lo_closed", "hi_closed", "patterns")

    def __init__(self) -> None:
        self.lo: Any = []
        self.hi: Any = []
        self.lo_closed: Any = []
        self.hi_closed: Any = []
        self.patterns: Any = []

    def add(self, item: NumericItem, pattern: int) -> None:
        self.lo.append(item.interval.lo)
        self.hi.append(item.interval.hi)
        self.lo_closed.append(item.interval.lo_closed)
        self.hi_closed.append(item.interval.hi_closed)
        self.patterns.append(pattern)

    def freeze(self) -> None:
        self.lo = np.asarray(self.lo, dtype=np.float64)
        self.hi = np.asarray(self.hi, dtype=np.float64)
        self.lo_closed = np.asarray(self.lo_closed, dtype=bool)
        self.hi_closed = np.asarray(self.hi_closed, dtype=bool)
        self.patterns = np.asarray(self.patterns, dtype=np.intp)


class MatcherPlan:
    """One run's patterns, compiled for vectorized point/batch lookup."""

    __slots__ = (
        "entries",
        "item_counts",
        "_categorical",
        "_numeric",
        "numeric_attributes",
    )

    def __init__(self, entries: Sequence["IndexedPattern"]) -> None:
        self.entries = tuple(entries)
        n = len(self.entries)
        self.item_counts = np.zeros(n, dtype=np.int64)
        categorical: dict[str, _CategoricalBlock] = {}
        numeric: dict[str, _NumericBlock] = {}
        for position, entry in enumerate(self.entries):
            for item in entry.pattern.itemset:
                self.item_counts[position] += 1
                if isinstance(item, CategoricalItem):
                    block = categorical.get(item.attribute)
                    if block is None:
                        block = categorical[item.attribute] = (
                            _CategoricalBlock()
                        )
                    block.add(item.value, position)
                else:
                    nblock = numeric.get(item.attribute)
                    if nblock is None:
                        nblock = numeric[item.attribute] = _NumericBlock()
                    nblock.add(item, position)
        for block in categorical.values():
            block.freeze()
        for nblock in numeric.values():
            nblock.freeze()
        self._categorical = categorical
        self._numeric = numeric
        self.numeric_attributes: tuple[str, ...] = tuple(sorted(numeric))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def n_items(self) -> int:
        return int(self.item_counts.sum())

    # -- validation -----------------------------------------------------

    def validate_row(self, row: Mapping[str, Any], where: str = "") -> None:
        """Raise :class:`MatchError` for a row no pattern could be
        evaluated against.

        Deterministic on purpose: numerically-constrained attributes are
        checked in sorted order, so the same bad row always produces the
        same error regardless of how the run orders its patterns (the
        old mid-scan check made 4xx-vs-partial-result depend on pattern
        iteration order).
        """
        if not isinstance(row, Mapping):
            raise MatchError(
                f"{where}row must be a mapping, got {type(row).__name__}"
            )
        for attribute in self.numeric_attributes:
            if attribute not in row:
                continue
            value = row[attribute]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise MatchError(
                    f"{where}attribute {attribute!r} is continuous; "
                    f"row value {value!r} is not a number"
                )

    def validate_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Validate a whole batch up front (row index named in the error)."""
        for i, row in enumerate(rows):
            self.validate_row(row, where=f"row {i}: ")

    # -- evaluation -----------------------------------------------------

    def match_mask(self, rows: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """``(B, n_patterns)`` boolean coverage of pre-validated rows.

        Call :meth:`validate_rows` first; this method assumes every value
        of a numerically-constrained attribute is a plain number.
        """
        n_rows = len(rows)
        satisfied = np.zeros((n_rows, len(self.entries)), dtype=np.int64)
        for attribute, block in self._categorical.items():
            code_of = block.code_of
            codes = np.fromiter(
                (
                    code_of.get(value, -1)
                    if isinstance(value := row.get(attribute), str)
                    else -1
                    for row in rows
                ),
                dtype=np.int64,
                count=n_rows,
            )
            # One item per (pattern, attribute) makes the pattern columns
            # unique here, so the fancy-indexed += cannot collide.
            satisfied[:, block.patterns] += (
                codes[:, None] == block.item_codes[None, :]
            )
        for attribute, nblock in self._numeric.items():
            values = np.fromiter(
                (
                    float(value)
                    if isinstance(value := row.get(attribute), (int, float))
                    and not isinstance(value, bool)
                    else np.nan
                    for row in rows
                ),
                dtype=np.float64,
                count=n_rows,
            )[:, None]
            above = np.where(
                nblock.lo_closed, values >= nblock.lo, values > nblock.lo
            )
            below = np.where(
                nblock.hi_closed, values <= nblock.hi, values < nblock.hi
            )
            satisfied[:, nblock.patterns] += above & below
        return satisfied == self.item_counts[None, :]

    def match_batch(
        self, rows: Sequence[Mapping[str, Any]]
    ) -> list[list["IndexedPattern"]]:
        """Per-row matched patterns (run order), for a batch of rows."""
        self.validate_rows(rows)
        mask = self.match_mask(rows)
        entries = self.entries
        return [
            [entries[p] for p in np.nonzero(mask[i])[0]]
            for i in range(len(rows))
        ]

    def match(self, row: Mapping[str, Any]) -> list["IndexedPattern"]:
        """Single-row convenience over :meth:`match_batch`."""
        self.validate_row(row)
        mask = self.match_mask([row])
        return [self.entries[p] for p in np.nonzero(mask[0])[0]]
