"""Stdlib-only HTTP serving of mined patterns.

:class:`PatternServer` is the online half of the system: it loads runs
from a :class:`~repro.serve.store.PatternStore` (or takes them straight
from a miner), keeps one *active* run behind an atomically-swappable
reference, and answers REST calls::

    GET  /healthz                       liveness + active run
    GET  /metrics                       per-endpoint counters, cache stats
    GET  /runs                          visible runs (store + published)
    GET  /runs/<id>                     one run's metadata + summary
    GET  /runs/<id>/patterns?...        declarative query (see Query)
    POST /match        {"row": {...}}   patterns covering a record
    POST /match        {"rows": [...]}  batched: patterns per record

Guarantees the tests pin down:

* **No client-induced 500s.**  Malformed queries and bodies map to 400,
  unknown runs to 404, corrupt runs to 410 (after being quarantined),
  wrong methods to 405 — the catch-all 500 path exists only for genuine
  server bugs and increments an error counter the smoke job asserts is
  zero.
* **Hot swap without downtime or torn reads.**  ``publish_*`` swaps one
  tuple reference; every request snapshots that reference once, so a
  response is always computed against exactly one run version (the
  ``run``/``epoch`` fields in the response name it) even while a
  publisher is swapping mid-flight.
* **Corruption never kills the process.**  A run whose files fail
  integrity checks at load time is quarantined via the store and
  reported to the client; the server keeps serving everything else.

Queries are answered from an LRU cache keyed by (run, epoch, canonical
query string); the epoch in the key means a swap implicitly invalidates
without locking out readers.

Row matching goes through the active index's compiled
:class:`~repro.serve.plan.MatcherPlan` — single rows and batches alike
are evaluated against all patterns with a handful of array ops (the plan
is built at publish time, so a hot swap pays compilation before the
first request).  With ``ServeConfig(workers=N)`` the server runs N
``SO_REUSEPORT`` worker processes instead of one in-process listener;
see :mod:`repro.serve.workers`.
"""

from __future__ import annotations

import json
import socket
import threading
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Mapping, Sequence
from urllib.parse import parse_qsl, urlsplit

from time import perf_counter

from ..core.instrumentation import ServeMetrics
from .index import MatchError, PatternIndex
from .query import Query, QueryError, apply_query, encode_entry
from .store import CorruptRunError, PatternStore, StoreError, UnknownRunError

if TYPE_CHECKING:
    from ..core.miner import MiningResult

__all__ = ["ServeConfig", "PatternServer", "HTTPError"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving layer (mining has its own ``MinerConfig``)."""

    host: str = "127.0.0.1"
    port: int = 8765
    cache_size: int = 256
    """Cached query responses (0 disables the cache)."""
    max_body_bytes: int = 1 << 20
    """Largest accepted request body (413 beyond it)."""
    default_limit: int | None = None
    """Applied to /patterns queries that specify no limit of their own."""
    max_batch_rows: int = 1024
    """Largest accepted ``rows`` batch on ``POST /match`` (400 beyond it)."""
    workers: int = 1
    """Serving processes.  1 keeps the in-process threaded server; N > 1
    runs N ``SO_REUSEPORT`` worker processes over the shared store (falls
    back to the single in-process socket where the platform lacks
    ``SO_REUSEPORT``)."""
    store_poll_interval: float = 0.25
    """How often multi-worker processes poll the store manifest for new
    runs (the coordination-free hot-swap propagation channel)."""

    def __post_init__(self) -> None:
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.max_batch_rows < 1:
            raise ValueError("max_batch_rows must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.store_poll_interval <= 0:
            raise ValueError("store_poll_interval must be > 0")


class HTTPError(Exception):
    """An error response with a status the handler turns into JSON."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class _ActiveRun:
    """The swappable unit: one run version the server answers from."""

    run_id: str
    epoch: int
    index: PatternIndex


class _LRUCache:
    """Tiny thread-safe LRU for rendered response bodies."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> bytes | None:
        with self._lock:
            body = self._entries.get(key)
            if body is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return body

    def put(self, key: tuple, body: bytes) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }


class _RequestHandler(BaseHTTPRequestHandler):
    """HTTP transport over :meth:`PatternServer.handle`.

    Module-level (rather than closed over in ``start``) so worker
    processes can reuse it on their own ``SO_REUSEPORT`` listeners.
    """

    protocol_version = "HTTP/1.1"
    # Headers and body are flushed as separate segments; without
    # TCP_NODELAY the second write can stall ~40ms behind Nagle +
    # delayed ACK, capping keep-alive clients near 25 req/s.
    disable_nagle_algorithm = True

    @property
    def app(self) -> "PatternServer":
        return self.server.app  # type: ignore[attr-defined]

    def _dispatch(self, method: str) -> None:
        app = self.app
        length = self.headers.get("Content-Length")
        body = None
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                n = -1
            if n < 0 or n > app.config.max_body_bytes:
                self._reply(
                    413,
                    app._render(
                        {"error": "request body too large", "status": 413}
                    ),
                )
                return
            body = self.rfile.read(n)
        status, response, _ = app.handle(method, self.path, body)
        self._reply(status, response)

    def _reply(self, status: int, response: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(response)))
        self.end_headers()
        self.wfile.write(response)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, *args) -> None:  # pragma: no cover
        pass  # the metrics endpoint replaces stderr chatter


class _PatternHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying its app, optionally ``SO_REUSEPORT``."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        app: "PatternServer",
        reuse_port: bool = False,
    ) -> None:
        self.app = app
        self._reuse_port = reuse_port
        super().__init__(address, _RequestHandler)

    def server_bind(self) -> None:
        if self._reuse_port:
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        super().server_bind()


class PatternServer:
    """Concurrent REST front over a pattern store and published runs."""

    def __init__(
        self,
        store: PatternStore | None = None,
        config: ServeConfig | None = None,
    ) -> None:
        self.store = store
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self._cache = _LRUCache(self.config.cache_size)
        self._indexes: dict[str, PatternIndex] = {}
        self._published: dict[str, dict[str, Any]] = {}
        self._load_lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self._active: _ActiveRun | None = None
        self._epoch = 0
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._pool = None
        self._mode = "single"
        self._peers = None  # set inside worker processes (metrics merge)
        self._worker_index: int | None = None

    # -- run loading and publication -----------------------------------

    def _index_of(self, run_id: str) -> PatternIndex:
        """The (immutable) index of a run, loading from the store once.

        Corrupt store runs are quarantined on first touch and surface as
        410; ids neither published nor in the store surface as 404.
        """
        index = self._indexes.get(run_id)
        if index is not None:
            return index
        if self.store is None:
            raise HTTPError(404, f"unknown run {run_id!r}")
        with self._load_lock:
            index = self._indexes.get(run_id)
            if index is not None:
                return index
            try:
                stored = self.store.get(run_id)
            except UnknownRunError as exc:
                raise HTTPError(404, str(exc)) from exc
            except CorruptRunError as exc:
                try:
                    self.store.quarantine(run_id)
                except StoreError:
                    pass  # already gone; the 410 still stands
                raise HTTPError(
                    410, f"run {run_id!r} failed integrity checks and "
                    f"was quarantined: {exc}"
                ) from exc
            except StoreError as exc:
                raise HTTPError(410, str(exc)) from exc
            index = PatternIndex(stored.patterns, stored.interests)
            index.plan  # compile the matcher plan before any request sees it
            self._indexes[run_id] = index
            return index

    def _swap_active(
        self, run_id: str, index: PatternIndex, epoch: int | None = None
    ) -> int:
        with self._publish_lock:
            if epoch is None:
                self._epoch += 1
                epoch = self._epoch
            else:
                # Store-derived epoch (multi-worker convergence): workers
                # stamp responses with the run's own store sequence so
                # every process reports the same epoch for the same run
                # without coordination.  Keep the local counter monotonic.
                self._epoch = max(self._epoch, epoch)
            # Single reference assignment: requests snapshot self._active
            # once, so they see either the old or the new run, never a mix.
            self._active = _ActiveRun(run_id, epoch, index)
            return epoch

    def _forbid_pooled_publish(self) -> None:
        if self._pool is not None:
            raise RuntimeError(
                "this server runs worker processes; publish by writing "
                "to the store (workers pick the latest run up themselves)"
            )

    def publish_run(self, run_id: str, epoch: int | None = None) -> int:
        """Make a store run the active one; returns the new epoch."""
        self._forbid_pooled_publish()
        index = self._index_of(run_id)
        return self._swap_active(run_id, index, epoch)

    def publish_patterns(
        self,
        patterns: Sequence,
        interests: Mapping | None = None,
        run_id: str | None = None,
        tags: Sequence[str] = (),
    ) -> int:
        """Publish an in-memory pattern list (no store round trip).

        This is the hot-swap path a refreshing
        :class:`~repro.streaming.StreamingContrastMiner` uses: build the
        index off-thread, then swap it in atomically.
        """
        self._forbid_pooled_publish()
        index = PatternIndex(patterns, interests)
        index.plan  # compile the matcher plan before any request sees it
        with self._publish_lock:
            if run_id is None:
                run_id = f"inline-{self._epoch + 1:06d}"
        self._indexes[run_id] = index
        self._published[run_id] = {
            "run_id": run_id,
            "n_patterns": len(index),
            "tags": list(tags),
            "source": "published",
        }
        return self._swap_active(run_id, index)

    def publish_result(
        self, result: "MiningResult", run_id: str | None = None
    ) -> int:
        """Publish a :class:`MiningResult` directly (no store round trip)."""
        return self.publish_patterns(
            result.patterns, result.interests, run_id=run_id
        )

    @property
    def active_run(self) -> str | None:
        active = self._active
        return active.run_id if active else None

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def mode(self) -> str:
        """Serving mode: ``single``, ``multi-worker``, or
        ``single-socket-fallback`` (no ``SO_REUSEPORT`` on the platform)."""
        return self._mode

    # -- request handling ----------------------------------------------

    def handle(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, bytes, str]:
        """Dispatch one request; returns (status, body, endpoint label).

        Transport-independent on purpose: the HTTP handler, the tests
        and the bench's in-process mode all call this.
        """
        split = urlsplit(path)
        parts = [p for p in split.path.split("/") if p]
        endpoint = "unknown"
        started = perf_counter()
        try:
            handler, endpoint, args = self._route(method, parts)
            params = self._parse_params(split.query)
            status, payload = handler(params, body, *args)
            # Cache-served endpoints hand back pre-rendered bytes so a
            # hit skips the JSON encoder entirely.
            response = (
                payload
                if isinstance(payload, bytes)
                else self._render(payload)
            )
        except HTTPError as exc:
            status = exc.status
            response = self._render({"error": exc.message, "status": status})
        except Exception as exc:  # genuine server bug: counted, not raised
            status = 500
            response = self._render(
                {"error": f"internal error: {exc}", "status": 500}
            )
        self.metrics.observe(
            endpoint, perf_counter() - started, error=status >= 400
        )
        return status, response, endpoint

    def _route(self, method: str, parts: list[str]):
        if parts == ["healthz"]:
            self._require(method, "GET", "/healthz")
            return self._do_healthz, "healthz", ()
        if parts == ["metrics"]:
            self._require(method, "GET", "/metrics")
            return self._do_metrics, "metrics", ()
        if parts == ["runs"]:
            self._require(method, "GET", "/runs")
            return self._do_runs, "runs", ()
        if len(parts) == 2 and parts[0] == "runs":
            self._require(method, "GET", f"/runs/{parts[1]}")
            return self._do_run_meta, "run_meta", (parts[1],)
        if len(parts) == 3 and parts[0] == "runs" and parts[2] == "patterns":
            self._require(method, "GET", f"/runs/{parts[1]}/patterns")
            return self._do_patterns, "patterns", (parts[1],)
        if parts == ["match"]:
            self._require(method, "POST", "/match")
            return self._do_match, "match", ()
        raise HTTPError(404, f"no such endpoint: /{'/'.join(parts)}")

    @staticmethod
    def _require(method: str, expected: str, what: str) -> None:
        if method != expected:
            raise HTTPError(405, f"{what} only supports {expected}")

    @staticmethod
    def _parse_params(query: str) -> dict[str, str]:
        pairs = parse_qsl(query, keep_blank_values=True)
        params: dict[str, str] = {}
        for name, value in pairs:
            if name in params:
                raise HTTPError(
                    400, f"duplicate query parameter {name!r}"
                )
            params[name] = value
        return params

    @staticmethod
    def _render(payload: Any) -> bytes:
        return (
            json.dumps(payload, separators=(",", ":")) + "\n"
        ).encode("utf-8")

    @staticmethod
    def _no_params(params: Mapping[str, str]) -> None:
        if params:
            raise HTTPError(
                400,
                f"unexpected query parameters: {', '.join(sorted(params))}",
            )

    # -- endpoints ------------------------------------------------------

    def _do_healthz(self, params, body) -> tuple[int, dict]:
        self._no_params(params)
        active = self._active
        return 200, {
            "status": "ok",
            "active_run": active.run_id if active else None,
            "epoch": active.epoch if active else 0,
        }

    def _local_metrics_payload(self) -> dict:
        """This process's own counters (one worker's view in pool mode)."""
        payload = {
            "mode": self._mode,
            "endpoints": self.metrics.snapshot(),
            "query_cache": self._cache.stats(),
            "epoch": self._epoch,
            "active_run": self.active_run,
            "loaded_runs": sorted(self._indexes),
        }
        if self._worker_index is not None:
            payload["worker"] = self._worker_index
        return payload

    def _do_metrics(self, params, body) -> tuple[int, dict]:
        self._no_params(params)
        if self._peers is not None:
            # Worker process: merge every sibling's live counters so any
            # worker the kernel picks answers for the whole pool.
            return 200, self._peers.merged(self._local_metrics_payload())
        return 200, self._local_metrics_payload()

    def _do_runs(self, params, body) -> tuple[int, dict]:
        self._no_params(params)
        runs: list[dict[str, Any]] = []
        if self.store is not None:
            try:
                runs.extend(
                    {**info.to_dict(), "source": "store"}
                    for info in self.store.list_runs()
                )
            except StoreError as exc:
                raise HTTPError(410, f"store unavailable: {exc}") from exc
        runs.extend(self._published[run_id] for run_id in sorted(self._published))
        return 200, {"runs": runs, "active_run": self.active_run}

    def _do_run_meta(self, params, body, run_id: str) -> tuple[int, dict]:
        self._no_params(params)
        if run_id in self._published:
            meta = dict(self._published[run_id])
            meta["active"] = run_id == self.active_run
            return 200, meta
        if self.store is None:
            raise HTTPError(404, f"unknown run {run_id!r}")
        try:
            stored = self.store.get(run_id)
        except UnknownRunError as exc:
            raise HTTPError(404, str(exc)) from exc
        except StoreError as exc:
            raise HTTPError(410, str(exc)) from exc
        from dataclasses import asdict

        return 200, {
            "run_id": stored.run_id,
            "created": stored.created,
            "tags": list(stored.tags),
            "n_patterns": len(stored.patterns),
            "library_version": stored.library_version,
            "fingerprint": stored.fingerprint,
            "summary": asdict(stored.summary),
            "active": run_id == self.active_run,
        }

    def _resolve_run(self, run_id: str) -> tuple[str, int, PatternIndex]:
        """(run id, epoch, index) for a request — one consistent snapshot."""
        if run_id == "active":
            active = self._active
            if active is None:
                raise HTTPError(
                    404, "no active run; publish one or name a run id"
                )
            return active.run_id, active.epoch, active.index
        return run_id, self._epoch, self._index_of(run_id)

    def _do_patterns(self, params, body, run_id: str) -> tuple[int, dict]:
        try:
            query = Query.from_params(params)
        except QueryError as exc:
            raise HTTPError(400, str(exc)) from exc
        if query.limit is None and self.config.default_limit is not None:
            from dataclasses import replace

            query = replace(query, limit=self.config.default_limit)
        resolved_id, epoch, index = self._resolve_run(run_id)
        cache_key = ("patterns", resolved_id, epoch, query.cache_key())
        cached = self._cache.get(cache_key)
        if cached is not None:
            return 200, cached
        selected = apply_query(index, query)
        payload = {
            "run": resolved_id,
            "epoch": epoch,
            "query": query.to_params(),
            "count": len(selected),
            "patterns": [encode_entry(entry) for entry in selected],
        }
        rendered = self._render(payload)
        self._cache.put(cache_key, rendered)
        return 200, rendered

    @staticmethod
    def _check_row_values(row: Mapping[str, Any], where: str = "") -> None:
        for name, value in row.items():
            if isinstance(value, bool) or not isinstance(
                value, (str, int, float)
            ):
                raise HTTPError(
                    400,
                    f"{where}row value for {name!r} must be a string "
                    f"or number",
                )

    @staticmethod
    def _row_key(row: Mapping[str, Any]) -> tuple:
        # repr() in the key keeps 1, 1.0 and "1" distinct.
        return tuple(sorted((k, repr(v)) for k, v in row.items()))

    def _do_match(self, params, body) -> tuple[int, dict]:
        self._no_params(params)
        request = self._decode_body(body)
        if ("row" in request) == ("rows" in request):
            raise HTTPError(
                400, 'body must carry exactly one of "row" or "rows"'
            )
        unknown = set(request) - {"row", "rows", "run"}
        if unknown:
            raise HTTPError(
                400, f"unknown body fields: {', '.join(sorted(unknown))}"
            )
        run_ref = request.get("run", "active")
        if not isinstance(run_ref, str):
            raise HTTPError(400, '"run" must be a run id string')

        if "row" in request:
            row = request["row"]
            if not isinstance(row, dict):
                raise HTTPError(400, 'body must carry a "row" object')
            self._check_row_values(row)
            resolved_id, epoch, index = self._resolve_run(run_ref)
            # Per-epoch indexes are immutable, so a row's match response
            # is a pure function of (run, epoch, row) and can be cached
            # like a query.
            cache_key = ("match", resolved_id, epoch, self._row_key(row))
            cached = self._cache.get(cache_key)
            if cached is not None:
                return 200, cached
            try:
                matches = index.match_batch([row])[0]
            except MatchError as exc:
                raise HTTPError(400, str(exc)) from exc
            # Assembled from the index's pre-rendered entry fragments;
            # byte-identical to ``self._render({...})`` of the dict.
            rendered = (
                f'{{"run":{json.dumps(resolved_id)},"epoch":{epoch},'
                f'"count":{len(matches)},'
                f'"matches":{index.rendered_matches(matches)}}}\n'
            ).encode("utf-8")
            self._cache.put(cache_key, rendered)
            return 200, rendered

        rows = request["rows"]
        if not isinstance(rows, list):
            raise HTTPError(400, '"rows" must be an array of row objects')
        if len(rows) > self.config.max_batch_rows:
            raise HTTPError(
                400,
                f"batch of {len(rows)} rows exceeds max_batch_rows="
                f"{self.config.max_batch_rows}",
            )
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                raise HTTPError(400, f"rows[{i}] must be a row object")
            self._check_row_values(row, where=f"rows[{i}]: ")
        resolved_id, epoch, index = self._resolve_run(run_ref)
        cache_key = (
            "match_batch",
            resolved_id,
            epoch,
            tuple(self._row_key(row) for row in rows),
        )
        cached = self._cache.get(cache_key)
        if cached is not None:
            return 200, cached
        try:
            per_row = index.match_batch(rows)
        except MatchError as exc:
            raise HTTPError(400, str(exc)) from exc
        # Dictionary-encoded batch response: each row lists the *ranks*
        # of its matching patterns, and every matched pattern's full wire
        # shape appears exactly once in "patterns" (keyed by rank as a
        # JSON string).  A row matching ~25 patterns would otherwise
        # repeat ~18 KB of identical entries per row; this keeps sustained
        # batch traffic network-bound on rows, not on duplicate JSON.
        matched_ranks = sorted(
            {entry.rank for matches in per_row for entry in matches}
        )
        patterns_obj = "{%s}" % ",".join(
            f'"{rank}":{index.rendered_entry(rank)}'
            for rank in matched_ranks
        )
        results = ",".join(
            '{"count":%d,"matches":[%s]}'
            % (
                len(matches),
                ",".join(str(entry.rank) for entry in matches),
            )
            for matches in per_row
        )
        rendered = (
            f'{{"run":{json.dumps(resolved_id)},"epoch":{epoch},'
            f'"count":{len(rows)},"patterns":{patterns_obj},'
            f'"results":[{results}]}}\n'
        ).encode("utf-8")
        self._cache.put(cache_key, rendered)
        return 200, rendered

    def _decode_body(self, body: bytes | None) -> dict[str, Any]:
        if not body:
            raise HTTPError(400, "request body required")
        if len(body) > self.config.max_body_bytes:
            raise HTTPError(413, "request body too large")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HTTPError(400, "body must be a JSON object")
        return payload

    # -- transport ------------------------------------------------------

    def start(self, _reuse_port: bool = False) -> tuple[str, int]:
        """Bind and serve; returns (host, port).

        Pass ``port=0`` in :class:`ServeConfig` to let the OS pick a free
        port (what the tests and the bench do).  With
        ``ServeConfig(workers=N)`` (N > 1) and a store, this spawns N
        ``SO_REUSEPORT`` worker processes instead of binding in-process;
        where the platform has no ``SO_REUSEPORT`` it falls back to the
        single in-process socket (recorded as ``mode`` in ``/metrics``).
        """
        if self._httpd is not None or self._pool is not None:
            raise RuntimeError("server already started")
        if self.config.workers > 1 and not _reuse_port:
            from .workers import WorkerPool, reuseport_available

            if self.store is None:
                raise RuntimeError(
                    "multi-worker serving needs a PatternStore (workers "
                    "converge on the store's latest run)"
                )
            if reuseport_available():
                self._mode = "multi-worker"
                self._pool = WorkerPool(self.store.root, self.config)
                try:
                    return self._pool.start()
                except BaseException:
                    self._pool = None
                    self._mode = "single"
                    raise
            self._mode = "single-socket-fallback"
        self._httpd = _PatternHTTPServer(
            (self.config.host, self.config.port), self, reuse_port=_reuse_port
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-pattern-server",
            daemon=True,
        )
        self._thread.start()
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def serve_forever(self) -> None:
        """Blocking variant of :meth:`start` (the CLI's ``repro serve``)."""
        self.start()
        try:
            if self._pool is not None:
                self._pool.join()
            else:
                self._thread.join()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
            self._mode = "single"
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "PatternServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
