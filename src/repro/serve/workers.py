"""Multi-process serving: ``SO_REUSEPORT`` workers over one store.

One threaded Python process tops out far below production traffic — the
GIL serialises JSON encoding and matching even with a compiled
:class:`~repro.serve.plan.MatcherPlan`.  :class:`WorkerPool` runs N full
:class:`~repro.serve.server.PatternServer` processes instead, each
binding its **own** listening socket on the same ``(host, port)`` with
``SO_REUSEPORT`` set, so the kernel load-balances accepted connections
across processes with no proxy in front.

Coordination model — deliberately, there is none:

* **Hot swap by store-epoch polling.**  Workers never talk to each
  other or to the parent.  Each polls the store manifest (mtime/size
  stat first, a cheap no-op between publishes) and, on change, loads
  and activates the latest run.  Responses are stamped with the run's
  own store sequence number as ``epoch``, so every worker reports the
  same ``(run, epoch)`` for the same run without agreeing on anything;
  workers converge within one poll interval of a ``store.put``.
* **Single writer stays single.**  Publishing in pool mode *is*
  ``store.put`` — the store's append-only atomic-manifest discipline is
  the only synchronisation, and a corrupt new run simply leaves every
  worker serving the previous one.
* **Metrics merge at read time.**  Each worker also binds a private
  loopback admin socket serving its local counters and registers it in
  a rendezvous directory.  Whichever worker the kernel hands a
  ``GET /metrics`` scrapes its siblings and merges (request/error sums
  are exact; see
  :func:`~repro.core.instrumentation.merge_endpoint_snapshots`), so the
  endpoint behaves as if the pool were one server.

Where the platform has no ``SO_REUSEPORT`` (the only portable way to
share a port across processes without passing file descriptors),
:meth:`PatternServer.start` falls back to the single in-process socket —
fork-free, and recorded as ``"single-socket-fallback"`` in ``/metrics``.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import shutil
import signal
import socket
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .store import PatternStore, StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import PatternServer, ServeConfig

__all__ = ["WorkerPool", "PeerRegistry", "reuseport_available", "run_seq"]

_READY_TIMEOUT_S = 45.0
_PEER_SCRAPE_TIMEOUT_S = 3.0


def reuseport_available() -> bool:
    """True when this platform can share a listening port across
    processes via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def run_seq(run_id: str) -> int | None:
    """The store sequence embedded in a run id (``run-000007-…`` → 7).

    This is the *store epoch* multi-worker responses are stamped with;
    ``None`` for ids that do not follow the store's naming (in-memory
    publishes), where the local epoch counter applies instead.
    """
    parts = run_id.split("-")
    if len(parts) >= 2:
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


# -- worker-side pieces --------------------------------------------------


class _StoreFollower(threading.Thread):
    """Poll the store manifest; activate the latest run on change."""

    def __init__(
        self, server: "PatternServer", store: PatternStore, interval: float
    ) -> None:
        super().__init__(name="repro-store-follower", daemon=True)
        self._server = server
        self._store = store
        self._interval = interval
        self._stop_event = threading.Event()
        self._last_stat: tuple | None = None

    def poll_once(self) -> None:
        try:
            stat = os.stat(self._store._manifest_path)
        except OSError:
            return
        signature = (stat.st_ino, stat.st_mtime_ns, stat.st_size)
        if signature == self._last_stat:
            return
        self._last_stat = signature
        try:
            latest = self._store.latest()
        except StoreError:
            return  # torn read of a mid-rewrite manifest: retry next tick
        if latest is None or latest == self._server.active_run:
            return
        from .server import HTTPError

        try:
            self._server.publish_run(latest, epoch=run_seq(latest))
        except (HTTPError, StoreError):
            # Corrupt or vanished run: keep serving the previous one;
            # the next poll retries whatever the manifest then names.
            self._last_stat = None

    def stop(self) -> None:
        self._stop_event.set()

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            self.poll_once()


class PeerRegistry:
    """Rendezvous-directory view of a pool's workers (for metrics merge)."""

    def __init__(self, rendezvous_dir: str | os.PathLike, index: int) -> None:
        self.root = Path(rendezvous_dir)
        self.index = index

    def _entry_path(self, index: int) -> Path:
        return self.root / f"worker-{index:03d}.json"

    def register(self, admin_host: str, admin_port: int) -> None:
        """Publish this worker's admin address (atomically: the parent
        treats the file's existence as the worker's readiness signal)."""
        payload = {
            "worker": self.index,
            "pid": os.getpid(),
            "admin_host": admin_host,
            "admin_port": admin_port,
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, self._entry_path(self.index))

    def entries(self) -> list[dict[str, Any]]:
        found = []
        for path in sorted(self.root.glob("worker-*.json")):
            try:
                found.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                continue
        return found

    def _scrape(self, entry: dict[str, Any]) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            entry["admin_host"],
            int(entry["admin_port"]),
            timeout=_PEER_SCRAPE_TIMEOUT_S,
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read()
            if response.status != 200:
                raise OSError(f"admin scrape returned {response.status}")
            return json.loads(body)
        finally:
            conn.close()

    def merged(self, local_payload: dict[str, Any]) -> dict[str, Any]:
        """Pool-wide metrics: this worker's live counters + scraped peers."""
        from ..core.instrumentation import merge_endpoint_snapshots

        workers: list[dict[str, Any]] = []
        for entry in self.entries():
            if int(entry.get("worker", -1)) == self.index:
                workers.append(local_payload)
                continue
            try:
                workers.append(self._scrape(entry))
            except (OSError, ValueError):
                workers.append(
                    {"worker": entry.get("worker"), "unreachable": True}
                )
        if not any(w.get("worker") == self.index for w in workers):
            workers.append(local_payload)  # registry file raced/missing
        reachable = [w for w in workers if not w.get("unreachable")]
        cache = {"size": 0, "capacity": 0, "hits": 0, "misses": 0}
        loaded: set[str] = set()
        for worker in reachable:
            for key in cache:
                cache[key] += int(worker.get("query_cache", {}).get(key, 0))
            loaded.update(worker.get("loaded_runs", ()))
        return {
            "mode": "multi-worker",
            "endpoints": merge_endpoint_snapshots(
                w.get("endpoints", {}) for w in reachable
            ),
            "query_cache": cache,
            "epoch": max(
                (int(w.get("epoch", 0)) for w in reachable), default=0
            ),
            "active_run": local_payload.get("active_run"),
            "loaded_runs": sorted(loaded),
            "workers": workers,
        }


def _make_admin_server(server: "PatternServer"):
    """A tiny loopback HTTP server exposing this worker's local metrics."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class AdminHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            body = (
                json.dumps(
                    server._local_metrics_payload(), separators=(",", ":")
                )
                + "\n"
            ).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args) -> None:  # pragma: no cover
            pass

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), AdminHandler)
    httpd.daemon_threads = True
    return httpd


def _worker_main(
    store_root: str,
    config: "ServeConfig",
    worker_index: int,
    port: int,
    rendezvous_dir: str,
) -> None:
    """Entry point of one worker process (top-level: spawn-safe)."""
    from .server import PatternServer

    config = replace(config, port=port, workers=1)
    store = PatternStore(store_root, create=False)
    server = PatternServer(store, config)
    server._mode = "multi-worker"
    server._worker_index = worker_index
    registry = PeerRegistry(rendezvous_dir, worker_index)
    server._peers = registry

    follower = _StoreFollower(server, store, config.store_poll_interval)
    follower.poll_once()  # activate the latest run before taking traffic

    server.start(_reuse_port=True)
    admin = _make_admin_server(server)
    admin_thread = threading.Thread(
        target=admin.serve_forever, name="repro-worker-admin", daemon=True
    )
    admin_thread.start()
    follower.start()
    # Registering is the readiness signal: both sockets are listening and
    # the active run (if any) is loaded.
    registry.register(admin.server_address[0], admin.server_address[1])

    stop_event = threading.Event()

    def _terminate(signum, frame) -> None:  # pragma: no cover - signal path
        stop_event.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    try:
        while not stop_event.wait(0.5):
            pass
    finally:
        follower.stop()
        admin.shutdown()
        admin.server_close()
        server.stop()


# -- parent-side pool ----------------------------------------------------


class WorkerPool:
    """Spawn, supervise and stop N ``SO_REUSEPORT`` worker processes."""

    def __init__(self, store_root: str | os.PathLike, config: "ServeConfig"):
        self.store_root = str(store_root)
        self.config = config
        self._processes: list = []
        self._rendezvous: Path | None = None
        self._address: tuple[str, int] | None = None

    @property
    def workers(self) -> int:
        return self.config.workers

    def start(self) -> tuple[str, int]:
        """Spawn the workers; returns the shared (host, port)."""
        if self._processes:
            raise RuntimeError("worker pool already started")
        if not reuseport_available():  # pragma: no cover - guarded upstream
            raise RuntimeError("SO_REUSEPORT is not available here")
        # Reserve the port: a bound (not listening) placeholder resolves
        # port=0 to a concrete port and keeps it ours until every worker
        # has its own listener; not listening keeps it out of the
        # kernel's reuseport connection distribution.
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            placeholder.bind((self.config.host, self.config.port))
            host, port = placeholder.getsockname()[:2]
            self._rendezvous = Path(
                tempfile.mkdtemp(prefix="repro-serve-pool-")
            )
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._processes = [
                ctx.Process(
                    target=_worker_main,
                    args=(
                        self.store_root,
                        self.config,
                        index,
                        port,
                        str(self._rendezvous),
                    ),
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                for index in range(self.config.workers)
            ]
            for process in self._processes:
                process.start()
            self._await_ready()
            self._address = (host, port)
            return host, port
        except BaseException:
            self.stop()
            raise
        finally:
            placeholder.close()

    def _await_ready(self) -> None:
        assert self._rendezvous is not None
        deadline = time.monotonic() + _READY_TIMEOUT_S
        expected = {
            self._rendezvous / f"worker-{index:03d}.json"
            for index in range(self.config.workers)
        }
        while time.monotonic() < deadline:
            if all(path.exists() for path in expected):
                return
            dead = [p for p in self._processes if p.exitcode is not None]
            if dead:
                raise RuntimeError(
                    f"serve worker(s) exited during startup: "
                    f"{[p.name for p in dead]}"
                )
            time.sleep(0.02)
        raise RuntimeError(
            f"serve workers not ready within {_READY_TIMEOUT_S:.0f}s"
        )

    @property
    def address(self) -> tuple[str, int] | None:
        return self._address

    def pids(self) -> list[int]:
        return [p.pid for p in self._processes if p.pid is not None]

    def alive(self) -> int:
        return sum(1 for p in self._processes if p.is_alive())

    def join(self) -> None:
        """Block until every worker exits (the CLI's foreground mode)."""
        for process in self._processes:
            process.join()

    def stop(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5)
        self._processes = []
        if self._rendezvous is not None:
            shutil.rmtree(self._rendezvous, ignore_errors=True)
            self._rendezvous = None
        self._address = None
