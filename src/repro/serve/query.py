"""Declarative queries over a loaded run.

:class:`Query` is a small, validated value object describing a pattern
selection: attribute/group filters, measure thresholds, a sort order and
a limit.  :func:`apply_query` is the *single* evaluator — the HTTP
server, the CLI and in-process callers all go through it, which is what
makes server responses byte-identical to filtering a
:class:`~repro.core.miner.MiningResult` directly (the parity the golden
tests pin down).

:func:`encode_entry` fixes the JSON wire shape of one selected pattern;
:func:`match_payload` does the same for the point-lookup call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..core.serialize import pattern_to_dict
from .index import SORT_KEYS, IndexedPattern, PatternIndex

__all__ = [
    "QueryError",
    "Query",
    "apply_query",
    "encode_entry",
    "match_payload",
]


class QueryError(ValueError):
    """A query is malformed (unknown field, bad value, unknown sort key)."""


@dataclass(frozen=True)
class Query:
    """One pattern selection.  All filters are conjunctive.

    Attributes
    ----------
    attributes:
        Keep only patterns whose itemset uses *every* listed attribute.
    group:
        Keep only patterns dominated by this group label.
    min_diff / min_pr / min_surprising:
        Lower bounds on support difference, purity ratio, and the
        Surprising Measure (strict thresholds are the paper's ``>``
        convention, but bounds here are inclusive: ``value >= bound``).
    max_p_value:
        Upper bound (inclusive) on the significance p-value.
    max_level:
        Keep only patterns of at most this many attributes.
    sort_by / descending:
        Measure to order by (one of :data:`~repro.serve.index.SORT_KEYS`)
        and the direction; ties keep the run's own top-k order.
    limit:
        Truncate the sorted selection to this many patterns.
    """

    attributes: tuple[str, ...] = ()
    group: str | None = None
    min_diff: float | None = None
    min_pr: float | None = None
    min_surprising: float | None = None
    max_p_value: float | None = None
    max_level: int | None = None
    sort_by: str = "interest"
    descending: bool = True
    limit: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))
        if self.sort_by not in SORT_KEYS:
            raise QueryError(
                f"unknown sort key {self.sort_by!r}; "
                f"expected one of {', '.join(SORT_KEYS)}"
            )
        if self.limit is not None and self.limit < 0:
            raise QueryError("limit must be >= 0")
        if self.max_level is not None and self.max_level < 1:
            raise QueryError("max_level must be >= 1")

    # -- wire formats ---------------------------------------------------

    _FLOAT_PARAMS = ("min_diff", "min_pr", "min_surprising", "max_p_value")
    _INT_PARAMS = ("max_level", "limit")

    @classmethod
    def from_params(cls, params: Mapping[str, str]) -> "Query":
        """Build a query from HTTP query-string parameters.

        Every anomaly — an unknown parameter, an unparsable number, a
        bad sort key or order — raises :class:`QueryError` with a
        message naming the offending parameter, so the server can turn
        it straight into a 400.
        """
        kwargs: dict[str, Any] = {}
        for name, raw in params.items():
            if name == "attributes":
                kwargs["attributes"] = tuple(
                    part for part in raw.split(",") if part
                )
            elif name == "group":
                kwargs["group"] = raw
            elif name in cls._FLOAT_PARAMS:
                try:
                    kwargs[name] = float(raw)
                except ValueError as exc:
                    raise QueryError(
                        f"parameter {name}={raw!r} is not a number"
                    ) from exc
            elif name in cls._INT_PARAMS:
                try:
                    kwargs[name] = int(raw)
                except ValueError as exc:
                    raise QueryError(
                        f"parameter {name}={raw!r} is not an integer"
                    ) from exc
            elif name == "sort":
                kwargs["sort_by"] = raw
            elif name == "order":
                if raw not in ("asc", "desc"):
                    raise QueryError(
                        f"parameter order={raw!r}; expected asc or desc"
                    )
                kwargs["descending"] = raw == "desc"
            else:
                raise QueryError(f"unknown query parameter {name!r}")
        return cls(**kwargs)

    def to_params(self) -> dict[str, str]:
        """The canonical parameter form (inverse of :meth:`from_params`)."""
        params: dict[str, str] = {}
        if self.attributes:
            params["attributes"] = ",".join(self.attributes)
        if self.group is not None:
            params["group"] = self.group
        for name in self._FLOAT_PARAMS:
            value = getattr(self, name)
            if value is not None:
                params[name] = repr(float(value))
        for name in self._INT_PARAMS:
            value = getattr(self, name)
            if value is not None:
                params[name] = str(value)
        if self.sort_by != "interest":
            params["sort"] = self.sort_by
        if not self.descending:
            params["order"] = "asc"
        return params

    def cache_key(self) -> str:
        """Canonical string identity (the server's LRU cache key)."""
        return "&".join(
            f"{name}={value}" for name, value in sorted(self.to_params().items())
        )

    # -- evaluation -----------------------------------------------------

    def accepts(self, entry: IndexedPattern) -> bool:
        pattern = entry.pattern
        if self.attributes:
            present = set(pattern.itemset.attributes)
            if not present.issuperset(self.attributes):
                return False
        if self.group is not None and pattern.dominant_group != self.group:
            return False
        if (
            self.min_diff is not None
            and pattern.support_difference < self.min_diff
        ):
            return False
        if self.min_pr is not None and pattern.purity_ratio < self.min_pr:
            return False
        if (
            self.min_surprising is not None
            and pattern.surprising_measure < self.min_surprising
        ):
            return False
        if (
            self.max_p_value is not None
            and pattern.significance_p_value > self.max_p_value
        ):
            return False
        if self.max_level is not None and pattern.level > self.max_level:
            return False
        return True


def apply_query(index: PatternIndex, query: Query) -> list[IndexedPattern]:
    """Evaluate a query against an index: filter, sort, limit."""
    order = index.order_by(query.sort_by, query.descending)
    selected = [
        index.entries[rank]
        for rank in order
        if query.accepts(index.entries[rank])
    ]
    if query.limit is not None:
        selected = selected[: query.limit]
    return selected


def encode_entry(entry: IndexedPattern) -> dict[str, Any]:
    """JSON wire shape of one selected pattern."""
    return {
        "rank": entry.rank,
        "interest": entry.interest,
        "pattern": pattern_to_dict(entry.pattern),
        "description": str(entry.pattern.itemset),
    }


def match_payload(entries: Sequence[IndexedPattern]) -> list[dict[str, Any]]:
    """JSON wire shape of a point-lookup result (run order preserved)."""
    return [encode_entry(entry) for entry in entries]


def index_for_result(result) -> PatternIndex:
    """Index a :class:`~repro.core.miner.MiningResult` (or StoredRun)."""
    return PatternIndex(result.patterns, result.interests)


__all__.append("index_for_result")
