"""In-memory indexes over one loaded run's patterns.

A :class:`PatternIndex` is the immutable serving-side representation of a
run: the pattern list with interest values, plus the lookup structures
the query engine needs — by attribute, by dominant group, and sorted
orders per measure (built lazily, cached).  Immutability is what makes
the server's hot-swap trivial: publishing a new run swaps one reference;
requests already executing keep their whole index.

The point-lookup :meth:`PatternIndex.match` answers the online inference
question — *which patterns cover this record?* — against the patterns'
own interval/categorical items, without touching the training dataset.
``match`` is the readable reference scan; the serving hot path goes
through :attr:`PatternIndex.plan`, a compiled
:class:`~repro.serve.plan.MatcherPlan` (columnar numpy lowering of the
same items) whose :meth:`~repro.serve.plan.MatcherPlan.match_batch`
evaluates whole row batches against all patterns at once — bit-identical
to the scan, pinned by ``tests/test_matcher_plan.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..core.contrast import ContrastPattern
from ..core.items import CategoricalItem, Itemset, NumericItem

__all__ = ["MatchError", "IndexedPattern", "PatternIndex", "row_from_dataset"]

SORT_KEYS = (
    "interest",
    "support_difference",
    "purity_ratio",
    "surprising",
    "p_value",
    "level",
)
"""Measures a query may sort on (also usable as threshold filters)."""


class MatchError(ValueError):
    """A row cannot be matched (e.g. non-numeric value for an interval)."""


@dataclass(frozen=True)
class IndexedPattern:
    """One pattern with its run-local rank and interest value."""

    rank: int
    """0-based position in the run's own (top-k) ordering."""
    pattern: ContrastPattern
    interest: float

    def sort_value(self, key: str) -> float:
        if key == "interest":
            return self.interest
        if key == "support_difference":
            return self.pattern.support_difference
        if key == "purity_ratio":
            return self.pattern.purity_ratio
        if key == "surprising":
            return self.pattern.surprising_measure
        if key == "p_value":
            return self.pattern.significance_p_value
        if key == "level":
            return float(self.pattern.level)
        raise KeyError(f"unknown sort key {key!r}")


class PatternIndex:
    """Immutable query/lookup structures over one run's patterns."""

    def __init__(
        self,
        patterns: Sequence[ContrastPattern],
        interests: Mapping[Itemset, float] | None = None,
    ) -> None:
        interests = interests or {}
        self.entries: tuple[IndexedPattern, ...] = tuple(
            IndexedPattern(
                rank=i,
                pattern=p,
                # Fall back to the headline measure so a run stored
                # without interest values still sorts sensibly.
                interest=float(
                    interests.get(p.itemset, p.support_difference)
                ),
            )
            for i, p in enumerate(patterns)
        )
        by_attribute: dict[str, list[int]] = {}
        by_group: dict[str, list[int]] = {}
        for entry in self.entries:
            for attr in entry.pattern.itemset.attributes:
                by_attribute.setdefault(attr, []).append(entry.rank)
            by_group.setdefault(entry.pattern.dominant_group, []).append(
                entry.rank
            )
        self.by_attribute: dict[str, tuple[int, ...]] = {
            name: tuple(ranks) for name, ranks in by_attribute.items()
        }
        self.by_group: dict[str, tuple[int, ...]] = {
            name: tuple(ranks) for name, ranks in by_group.items()
        }
        self._orders: dict[tuple[str, bool], tuple[int, ...]] = {}
        self._plan = None
        self._fragments: tuple[str, ...] | None = None

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def plan(self):
        """The compiled :class:`~repro.serve.plan.MatcherPlan`.

        Built once on first use and cached alongside the index — the
        index is immutable, so the plan can never go stale.  The server
        touches this property at publish time so hot-swapped runs pay
        the compilation before the first request, not during it.
        """
        plan = self._plan
        if plan is None:
            from .plan import MatcherPlan

            plan = self._plan = MatcherPlan(self.entries)
        return plan

    def rendered_entry(self, rank: int) -> str:
        """The compact JSON wire shape of one entry, rendered once.

        Entries are immutable, so their encoded form is a constant of
        the index; re-encoding ~25 matched patterns per row was the
        serving layer's dominant cost before this cache (the match
        itself is vectorized and cheap).  Byte-identical to
        ``json.dumps(encode_entry(entry), separators=(",", ":"))``.
        """
        fragments = self._fragments
        if fragments is None:
            from .query import encode_entry

            fragments = self._fragments = tuple(
                json.dumps(encode_entry(entry), separators=(",", ":"))
                for entry in self.entries
            )
        return fragments[rank]

    def rendered_matches(self, entries: Iterable[IndexedPattern]) -> str:
        """Compact JSON array of entry wire shapes (see
        :meth:`rendered_entry`); byte-identical to dumping
        ``match_payload(entries)`` with ``separators=(",", ":")``."""
        return "[%s]" % ",".join(
            self.rendered_entry(entry.rank) for entry in entries
        )

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(sorted(self.by_attribute))

    @property
    def groups(self) -> tuple[str, ...]:
        return tuple(sorted(self.by_group))

    def order_by(self, key: str, descending: bool = True) -> tuple[int, ...]:
        """Ranks sorted by a measure; ties keep the run's own order.

        Orders are computed once per (key, direction) and cached — the
        index is immutable, so the cache can never go stale.
        """
        if key not in SORT_KEYS:
            raise KeyError(f"unknown sort key {key!r}")
        cached = self._orders.get((key, descending))
        if cached is None:
            ranks = sorted(
                range(len(self.entries)),
                key=lambda r: (
                    -self.entries[r].sort_value(key)
                    if descending
                    else self.entries[r].sort_value(key),
                    r,
                ),
            )
            cached = self._orders[(key, descending)] = tuple(ranks)
        return cached

    # -- point lookup ---------------------------------------------------

    def match(self, row: Mapping[str, Any]) -> list[IndexedPattern]:
        """All patterns whose items cover the given record.

        ``row`` maps attribute names to values: category labels (strings)
        for categorical attributes, numbers for continuous ones.  A
        pattern matches when *every* one of its items covers the row; a
        row missing one of the pattern's attributes does not match it
        (coverage cannot be established).  Attributes in the row that no
        pattern mentions are ignored.

        The row is validated once up front (via the plan), so a
        non-numeric value for a numerically-constrained attribute raises
        the same deterministic :class:`MatchError` regardless of pattern
        order — never a partial scan result.
        """
        self.plan.validate_row(row)
        matched: list[IndexedPattern] = []
        for entry in self.entries:
            if self._covers(entry.pattern.itemset, row):
                matched.append(entry)
        return matched

    def match_batch(
        self, rows: Sequence[Mapping[str, Any]]
    ) -> list[list[IndexedPattern]]:
        """Vectorized :meth:`match` over a batch of rows (the hot path).

        Delegates to the compiled plan: every row is evaluated against
        all patterns with a handful of array ops.  Row ``i``'s result is
        bit-identical to ``match(rows[i])``.
        """
        return self.plan.match_batch(rows)

    @staticmethod
    def _covers(itemset: Itemset, row: Mapping[str, Any]) -> bool:
        for item in itemset:
            if item.attribute not in row:
                return False
            value = row[item.attribute]
            if isinstance(item, CategoricalItem):
                if not isinstance(value, str) or value != item.value:
                    return False
            else:
                assert isinstance(item, NumericItem)
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise MatchError(
                        f"attribute {item.attribute!r} is continuous; "
                        f"row value {value!r} is not a number"
                    )
                if not item.interval.contains(float(value)):
                    return False
        return True


def row_from_dataset(dataset, i: int) -> dict[str, Any]:
    """Row ``i`` of a dataset as a :meth:`PatternIndex.match` input.

    Categorical codes are decoded back to their labels; continuous
    values come out as plain floats.
    """
    row: dict[str, Any] = {}
    for attr in dataset.schema:
        value = dataset.column(attr.name)[i]
        if attr.is_categorical:
            row[attr.name] = attr.categories[int(value)]
        else:
            row[attr.name] = float(value)
    return row
