"""Chunk-aware support counting over an out-of-core dataset.

Support counting is embarrassingly additive across row chunks: the
contingency row of Eq. 1 for an itemset over the full table is the
element-wise sum of the rows computed per chunk.  Because every
downstream statistic (chi-square, support difference, PR, the CLT
bounds) is a function of the merged integer count vector, counting per
chunk and summing is *exact* — not an approximation — which is what
makes out-of-core mining byte-identical to in-memory mining.

:class:`ChunkedBackend` wraps a :class:`~repro.dataset.chunked.
ChunkedView` and counts each itemset chunk by chunk:

* per-chunk count vectors are cached in an LRU keyed by
  ``(chunk content digest, itemset)`` — the digest key means appending
  new chunks to the store never invalidates a single cached entry
  (old chunks are immutable and keep their digests);
* with the ``bitmap`` inner strategy, each chunk gets a bits-only
  packed index (per-(attribute, value) bit-vectors plus a group stack,
  ~``n_rows / 8`` bytes per categorical value) built straight from the
  chunk's memory-mapped code files — the chunk's column data is never
  materialised at ``int64`` width for categorical counting;
* itemsets containing numeric items, and the ``mask`` inner strategy,
  count through transient per-chunk :class:`~repro.dataset.table.
  Dataset` views (bounded by the store's chunk LRU).

The SDAD-CS search state speaks packed per-chunk
:class:`~repro.core.cover.Cover` bitsets (DESIGN.md §13): ``cover_of``
returns lazily-thunked per-chunk segments, and ``cover_group_counts``
counts a cover with one packed AND + popcount per chunk against
digest-keyed per-chunk group stacks.  Nothing on this path ever
materialises a full-row boolean mask or the view's ``int64`` group
codes, which is what keeps mining peak RSS at O(chunk).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from ..core.cover import Cover
from ..core.items import CategoricalItem, Itemset
from ..dataset.bitmap import popcount_rows
from ..dataset.chunked import GROUP_FILE, ChunkedView, ChunkMeta
from ..dataset.table import DatasetError
from .base import CountingBackendBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataset.chunked import ChunkedDataset

__all__ = ["ChunkedBackend", "DEFAULT_COUNTS_CACHE"]

#: Default number of (chunk digest, itemset) count vectors kept.  Each
#: entry is one small int64 vector (|groups| elements), so even a large
#: cache is a few MB — it is effectively bounded by candidate churn, not
#: memory.
DEFAULT_COUNTS_CACHE = 65_536


class _ChunkBits:
    """Bits-only packed index of one chunk (no dataset reference).

    Holds per-(attribute, value) coverage bit-vectors and the stacked
    per-group membership bit-vectors, built directly from the chunk's
    memory-mapped code files.  Dropping the dataset reference is the
    point: keeping these resident for every chunk costs ~1 bit per row
    per categorical value — the same budget as the in-memory
    :class:`~repro.counting.bitmap.BitmapBackend`'s index — while the
    chunk's 8-byte-wide columns stay on disk.
    """

    __slots__ = ("n_rows", "item_bits", "group_stack")

    def __init__(self, store: "ChunkedDataset", meta: ChunkMeta) -> None:
        self.n_rows = meta.n_rows
        self.item_bits: dict[tuple[str, str], np.ndarray] = {}
        for name in store.schema.categorical_names:
            attr = store.schema[name]
            raw = store._mmap_file(meta, name)
            for code, label in enumerate(attr.categories):
                self.item_bits[(name, label)] = np.packbits(raw == code)
        codes = store._mmap_file(meta, GROUP_FILE)
        self.group_stack = np.stack(
            [
                np.packbits(codes == g)
                for g in range(len(store.group_labels))
            ]
        )

    def counts(self, itemset: Itemset) -> np.ndarray:
        bits = self.bits(itemset)
        if bits is None:
            return popcount_rows(self.group_stack)
        return popcount_rows(self.group_stack & bits)

    def bits(self, itemset: Itemset) -> np.ndarray | None:
        """Packed coverage of a categorical itemset over this chunk
        (``None`` for the empty itemset: every row)."""
        bits = None
        for item in itemset:
            item_bits = self.item_bits[(item.attribute, item.value)]
            bits = item_bits if bits is None else bits & item_bits
        return bits


class ChunkedBackend(CountingBackendBase):
    """Count supports chunk-by-chunk over a :class:`ChunkedView`.

    Parameters
    ----------
    view:
        The lazy dataset facade to count over (``backend.dataset``).
    inner:
        Per-chunk counting strategy: ``"mask"`` (boolean masks over
        transient chunk views) or ``"bitmap"`` (resident bits-only
        chunk indexes for categorical itemsets).  Both are exact; they
        trade memory for categorical-counting speed exactly like the
        in-memory backends of the same names.
    cache_size:
        Capacity of the (chunk digest, itemset) counts LRU.
    """

    name = "chunked"
    supports_batch = True

    def __init__(
        self,
        view: ChunkedView,
        inner: str = "mask",
        cache_size: int | None = None,
    ) -> None:
        if not isinstance(view, ChunkedView):
            raise TypeError(
                "ChunkedBackend counts over a ChunkedView "
                "(use ChunkedDataset.view())"
            )
        if inner not in ("mask", "bitmap"):
            raise ValueError(
                f"unknown inner counting strategy {inner!r}; "
                "expected 'mask' or 'bitmap'"
            )
        if cache_size is not None and cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        super().__init__(view)
        self.inner = inner
        self.name = f"chunked+{inner}"
        self.cache_size = cache_size or DEFAULT_COUNTS_CACHE
        self._counts_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._chunk_bits: dict[str, _ChunkBits] = {}
        self._group_stacks: dict[str, np.ndarray] = {}
        self._chunk_sizes = tuple(
            meta.n_rows for meta in view.chunk_metas()
        )

    # ------------------------------------------------------------------
    # Per-chunk counting
    # ------------------------------------------------------------------

    def _bits_for(self, meta: ChunkMeta) -> _ChunkBits:
        bits = self._chunk_bits.get(meta.digest)
        if bits is None:
            bits = _ChunkBits(self.dataset.chunk_store, meta)
            self._chunk_bits[meta.digest] = bits
        return bits

    def _chunk_counts(
        self, meta: ChunkMeta, index: int, itemset: Itemset,
        categorical_only: bool,
    ) -> np.ndarray:
        if self.inner == "bitmap" and categorical_only:
            return self._bits_for(meta).counts(itemset)
        chunk = self.dataset.chunk_store.chunk_dataset(index)
        return chunk.group_counts(itemset.cover(chunk)).astype(np.int64)

    # ------------------------------------------------------------------
    # CountingBackend interface
    # ------------------------------------------------------------------

    def group_counts(self, itemset: Itemset) -> np.ndarray:
        self.count_calls += 1
        view: ChunkedView = self.dataset
        total = np.zeros(view.n_groups, dtype=np.int64)
        categorical_only = all(
            isinstance(item, CategoricalItem) for item in itemset
        )
        for meta, index in zip(view.chunk_metas(), view.chunk_indices):
            key = (meta.digest, itemset)
            cached = self._counts_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._counts_cache.move_to_end(key)
                total += cached
                continue
            self.cache_misses += 1
            counts = self._chunk_counts(meta, index, itemset,
                                        categorical_only)
            self._counts_cache[key] = counts
            if len(self._counts_cache) > self.cache_size:
                self._counts_cache.popitem(last=False)
            total += counts
        return total

    def group_counts_batch(self, itemsets) -> np.ndarray:
        """Batch counts with one pass over the chunks.

        Iterating chunk-outer / itemset-inner keeps each chunk's
        memory-mapped columns (or bits-only index) hot while the whole
        batch is counted against it, instead of touching every chunk once
        per candidate.  The ``(chunk digest, itemset)`` LRU is shared with
        the scalar path, so warm entries hit regardless of which path
        filled them.
        """
        items = list(itemsets)
        self.batch_calls += 1
        self.batched_candidates += len(items)
        self.count_calls += len(items)
        view: ChunkedView = self.dataset
        out = np.zeros((len(items), view.n_groups), dtype=np.int64)
        if not items:
            return out
        categorical_only = [
            all(isinstance(item, CategoricalItem) for item in itemset)
            for itemset in items
        ]
        for meta, index in zip(view.chunk_metas(), view.chunk_indices):
            for i, itemset in enumerate(items):
                key = (meta.digest, itemset)
                cached = self._counts_cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    self._counts_cache.move_to_end(key)
                    out[i] += cached
                    continue
                self.cache_misses += 1
                counts = self._chunk_counts(meta, index, itemset,
                                            categorical_only[i])
                self._counts_cache[key] = counts
                if len(self._counts_cache) > self.cache_size:
                    self._counts_cache.popitem(last=False)
                out[i] += counts
        return out

    def cover(self, itemset: Itemset) -> np.ndarray:
        view: ChunkedView = self.dataset
        parts = [itemset.cover(chunk) for chunk in view.iter_chunks()]
        if not parts:
            return np.zeros(0, dtype=bool)
        return np.concatenate(parts)

    def mask_group_counts(self, mask: np.ndarray) -> np.ndarray:
        self.count_calls += 1
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self.dataset.n_rows,):
            raise DatasetError("mask must be a boolean array over rows")
        # Legacy dense-mask entry point: count through the packed path
        # so the view's group codes never need to materialise.
        return Cover.from_dense(mask, self._chunk_sizes).group_counts(
            [
                self._group_stack_for(meta)
                for meta in self.dataset.chunk_metas()
            ]
        )

    # ------------------------------------------------------------------
    # Packed-cover surface: chunk-native, never densifies a full mask
    # ------------------------------------------------------------------

    @property
    def chunk_sizes(self) -> tuple[int, ...]:
        return self._chunk_sizes

    def _group_stack_for(self, meta: ChunkMeta) -> np.ndarray:
        """Packed per-group membership stack of one chunk.

        Keyed by the chunk's content digest (append-stable, like the
        counts LRU); reuses the bits-only chunk index's stack when the
        ``bitmap`` inner strategy already built one.  Residency cost is
        ``n_groups * n_rows / 8`` bits across all chunks — the same
        budget the in-memory bitmap backend pays once.
        """
        stack = self._group_stacks.get(meta.digest)
        if stack is None:
            bits = self._chunk_bits.get(meta.digest)
            if bits is not None:
                stack = bits.group_stack
            else:
                codes = self.dataset.chunk_store._mmap_file(
                    meta, GROUP_FILE
                )
                stack = np.stack(
                    [
                        np.packbits(codes == g)
                        for g in range(self.dataset.n_groups)
                    ]
                )
            self._group_stacks[meta.digest] = stack
        return stack

    def cover_of(self, itemset: Itemset) -> Cover:
        """Lazy per-chunk packed coverage of an itemset.

        Each segment is a thunk: no chunk is read until the search
        actually intersects or counts the cover.  With the ``bitmap``
        inner strategy a categorical itemset's segment is an AND of
        resident item bit-vectors; otherwise the chunk's coverage is
        computed transiently and packed immediately — O(chunk) peak,
        never a full-row mask.
        """
        view: ChunkedView = self.dataset
        store = view.chunk_store
        categorical_only = all(
            isinstance(item, CategoricalItem) for item in itemset
        )
        segments = []
        for meta, index in zip(view.chunk_metas(), view.chunk_indices):
            if self.inner == "bitmap" and categorical_only:

                def segment(meta=meta, n=meta.n_rows):
                    bits = self._bits_for(meta).bits(itemset)
                    if bits is None:
                        return Cover.full((n,)).segment(0)
                    return bits

            else:

                def segment(index=index):
                    chunk = store.chunk_dataset(index)
                    return np.packbits(itemset.cover(chunk))

            segments.append(segment)
        return Cover(segments, self._chunk_sizes)

    def full_cover(self) -> Cover:
        return Cover.full(self._chunk_sizes)

    def cover_group_counts(self, cover: Cover) -> np.ndarray:
        """Per-group counts of a packed cover, chunk by chunk.

        One packed AND + popcount per chunk against the digest-keyed
        group stacks — equal to the dense ``bincount`` while touching
        only ``n_rows / 8`` bytes per chunk.
        """
        self.count_calls += 1
        if cover.chunk_sizes != self._chunk_sizes:
            raise DatasetError(
                "cover is not chunk-aligned with the view"
            )
        return cover.group_counts(
            [
                self._group_stack_for(meta)
                for meta in self.dataset.chunk_metas()
            ]
        )

    # ------------------------------------------------------------------

    def cache_info(self) -> dict:
        """Introspection for tests and benches."""
        return {
            "entries": len(self._counts_cache),
            "capacity": self.cache_size,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "chunk_indexes": len(self._chunk_bits),
            "index_bytes": sum(
                sum(b.nbytes for b in bits.item_bits.values())
                + bits.group_stack.nbytes
                for bits in self._chunk_bits.values()
            ),
        }
