"""The counting-backend protocol.

Every miner in this package reduces to one operation: given an itemset (or
an arbitrary boolean row mask), produce the per-group covered counts — the
contingency row of Eq. 1.  A :class:`CountingBackend` encapsulates *how*
that row is computed, so the search layers (`core.search`, `core.sdad`,
`parallel.scheduler`) stay agnostic of the representation:

* :class:`~repro.counting.mask.MaskBackend` — boolean masks over numpy
  columns, the historical reference path;
* :class:`~repro.counting.bitmap.BitmapBackend` — packed bit-vectors with
  per-group popcounts (SciCSM-style, related work [29]) and an LRU cache
  of categorical-context coverage vectors.

Backends also self-instrument: every counting call and every context-cache
hit/miss is tallied and published into :class:`~repro.core.instrumentation.
MiningStats` so the ablation benches can attribute wall-clock wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.instrumentation import MiningStats
    from ..core.items import Itemset
    from ..dataset.table import Dataset

__all__ = ["BackendCounters", "CountingBackend", "CountingBackendBase"]


@dataclass(frozen=True)
class BackendCounters:
    """Snapshot of a backend's instrumentation counters.

    Snapshots support subtraction so a caller can attribute counts to one
    slice of work (the parallel workers bracket each task this way).
    """

    count_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def __sub__(self, other: "BackendCounters") -> "BackendCounters":
        return BackendCounters(
            count_calls=self.count_calls - other.count_calls,
            cache_hits=self.cache_hits - other.cache_hits,
            cache_misses=self.cache_misses - other.cache_misses,
        )

    def __add__(self, other: "BackendCounters") -> "BackendCounters":
        return BackendCounters(
            count_calls=self.count_calls + other.count_calls,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
        )


@runtime_checkable
class CountingBackend(Protocol):
    """What the search layers require of a support-counting strategy."""

    name: str
    dataset: "Dataset"

    def group_counts(self, itemset: "Itemset") -> np.ndarray:
        """Per-group covered counts of an itemset (Eq. 1 numerators)."""
        ...

    def cover(self, itemset: "Itemset") -> np.ndarray:
        """Boolean coverage mask of an itemset over the dataset rows."""
        ...

    def mask_group_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-group counts inside an arbitrary boolean row mask."""
        ...

    def counters(self) -> BackendCounters:
        """Current instrumentation snapshot."""
        ...

    def publish(self, stats: "MiningStats") -> None:
        """Fold counters accumulated since the last publish into stats."""
        ...


class CountingBackendBase:
    """Counter plumbing shared by the concrete backends."""

    name: str = "abstract"

    def __init__(self, dataset: "Dataset") -> None:
        self.dataset = dataset
        self.count_calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._published = BackendCounters()

    def counters(self) -> BackendCounters:
        return BackendCounters(
            count_calls=self.count_calls,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
        )

    def publish(self, stats: "MiningStats") -> None:
        """Fold the delta since the previous publish into ``stats``.

        Delta semantics let a long-lived backend (e.g. the worker-global
        one in the parallel scheduler) publish into a fresh stats object
        per task without double counting.
        """
        current = self.counters()
        delta = current - self._published
        self._published = current
        stats.counting_backend = self.name
        stats.count_calls += delta.count_calls
        stats.cache_hits += delta.cache_hits
        stats.cache_misses += delta.cache_misses
