"""The counting-backend protocol — the single documented counting ABC.

Every miner in this package reduces to one operation: given an itemset (or
an arbitrary boolean row mask), produce the per-group covered counts — the
contingency row of Eq. 1.  A :class:`CountingBackend` encapsulates *how*
that row is computed, so the search layers (`core.search`, `core.sdad`,
`parallel.scheduler`) stay agnostic of the representation:

* :class:`~repro.counting.mask.MaskBackend` — boolean masks over numpy
  columns, the historical reference path;
* :class:`~repro.counting.bitmap.BitmapBackend` — packed bit-vectors with
  per-group popcounts (SciCSM-style, related work [29]) and an LRU cache
  of categorical-context coverage vectors;
* :class:`~repro.counting.chunked.ChunkedBackend` — per-chunk counts over
  an out-of-core :class:`~repro.dataset.chunked.ChunkedView`, summed.

The protocol has two counting granularities:

``group_counts(itemset)``
    one candidate → one ``(n_groups,)`` int64 row (scalar path);
``group_counts_batch(itemsets)``
    N candidates → one ``(N, n_groups)`` int64 matrix (batch path).

The search state itself (SDAD-CS spaces) speaks packed per-chunk
:class:`~repro.core.cover.Cover` bitsets, so every backend also exposes
``chunk_sizes`` / ``cover_of`` / ``full_cover`` / ``cover_group_counts``;
``cover_group_counts`` is the packed twin of ``mask_group_counts`` (same
result, same single ``count_calls`` tally), and the chunked backend
counts covers chunk by chunk without ever densifying a full-row mask.

Every backend accepts batches: :class:`CountingBackendBase` provides a
per-candidate fallback that stacks ``group_counts`` rows, and backends
that can do better (bitmap: one packed-AND + popcount sweep; chunked:
chunk-outer iteration with the digest-keyed cache intact) override it.
The class attribute :attr:`CountingBackendBase.supports_batch` advertises
whether the override exists; callers never need to check it for
correctness — only to predict performance.  Candidates routed through the
fallback are tallied in ``batch_fallbacks``.

Backends also self-instrument: every counting call (a batch of N counts
as N calls, so scalar and batch drivers report comparable totals), every
context-cache hit/miss, and every batch invocation is tallied and
published into :class:`~repro.core.instrumentation.MiningStats` so the
ablation benches can attribute wall-clock wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.cover import Cover

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.instrumentation import MiningStats
    from ..core.items import Itemset
    from ..dataset.table import Dataset

__all__ = ["BackendCounters", "CountingBackend", "CountingBackendBase"]


@dataclass(frozen=True)
class BackendCounters:
    """Snapshot of a backend's instrumentation counters.

    Snapshots support subtraction so a caller can attribute counts to one
    slice of work (the parallel workers bracket each task this way).
    """

    count_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batch_calls: int = 0
    batched_candidates: int = 0
    batch_fallbacks: int = 0

    def __sub__(self, other: "BackendCounters") -> "BackendCounters":
        return BackendCounters(
            count_calls=self.count_calls - other.count_calls,
            cache_hits=self.cache_hits - other.cache_hits,
            cache_misses=self.cache_misses - other.cache_misses,
            batch_calls=self.batch_calls - other.batch_calls,
            batched_candidates=self.batched_candidates - other.batched_candidates,
            batch_fallbacks=self.batch_fallbacks - other.batch_fallbacks,
        )

    def __add__(self, other: "BackendCounters") -> "BackendCounters":
        return BackendCounters(
            count_calls=self.count_calls + other.count_calls,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            batch_calls=self.batch_calls + other.batch_calls,
            batched_candidates=self.batched_candidates + other.batched_candidates,
            batch_fallbacks=self.batch_fallbacks + other.batch_fallbacks,
        )


@runtime_checkable
class CountingBackend(Protocol):
    """What the search layers require of a support-counting strategy."""

    name: str
    dataset: "Dataset"
    supports_batch: bool

    def group_counts(self, itemset: "Itemset") -> np.ndarray:
        """Per-group covered counts of an itemset (Eq. 1 numerators)."""
        ...

    def group_counts_batch(
        self, itemsets: Sequence["Itemset"] | Iterable["Itemset"]
    ) -> np.ndarray:
        """Per-group counts of N itemsets as one ``(N, n_groups)`` matrix.

        Row ``i`` equals ``group_counts(itemsets[i])`` exactly.
        """
        ...

    def cover(self, itemset: "Itemset") -> np.ndarray:
        """Boolean coverage mask of an itemset over the dataset rows."""
        ...

    def mask_group_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-group counts inside an arbitrary boolean row mask."""
        ...

    @property
    def chunk_sizes(self) -> tuple[int, ...]:
        """Per-chunk row counts of the backing dataset (``(n_rows,)``
        when dense) — the alignment every :class:`Cover` handed to this
        backend must share."""
        ...

    def cover_of(self, itemset: "Itemset") -> Cover:
        """Packed per-chunk coverage of an itemset (the search-state
        representation; see :mod:`repro.core.cover`)."""
        ...

    def full_cover(self) -> Cover:
        """Packed coverage of every row (the empty context)."""
        ...

    def cover_group_counts(self, cover: Cover) -> np.ndarray:
        """Per-group counts inside a packed cover.

        Equal to ``mask_group_counts(cover.to_dense())`` and tallied
        identically (one ``count_calls``); backends count on packed
        words directly where they can.
        """
        ...

    def counters(self) -> BackendCounters:
        """Current instrumentation snapshot."""
        ...

    def publish(self, stats: "MiningStats") -> None:
        """Fold counters accumulated since the last publish into stats."""
        ...


class CountingBackendBase:
    """Counter plumbing and the batch fallback shared by concrete backends."""

    name: str = "abstract"
    supports_batch: bool = False
    """True when ``group_counts_batch`` is a native stacked implementation
    rather than the per-candidate fallback below."""

    def __init__(self, dataset: "Dataset") -> None:
        self.dataset = dataset
        self.count_calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batch_calls = 0
        self.batched_candidates = 0
        self.batch_fallbacks = 0
        self._published = BackendCounters()

    def group_counts(self, itemset: "Itemset") -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def group_counts_batch(
        self, itemsets: Sequence["Itemset"] | Iterable["Itemset"]
    ) -> np.ndarray:
        """Default per-candidate fallback: stack scalar ``group_counts`` rows.

        Guarantees ``out[i] == group_counts(itemsets[i])`` for any backend.
        Each candidate routed through here is tallied as a
        ``batch_fallbacks`` so summaries show when the fast path is absent.
        """
        items = list(itemsets)
        self.batch_calls += 1
        self.batched_candidates += len(items)
        self.batch_fallbacks += len(items)
        if not items:
            return np.zeros((0, self.dataset.n_groups), dtype=np.int64)
        rows = [
            np.asarray(self.group_counts(itemset), dtype=np.int64)
            for itemset in items
        ]
        return np.stack(rows)

    # ------------------------------------------------------------------
    # Packed-cover surface (Cover-native search state, DESIGN.md §13)
    # ------------------------------------------------------------------

    @property
    def chunk_sizes(self) -> tuple[int, ...]:
        """Per-chunk row counts of the backing dataset.

        Dense in-memory datasets are one chunk; chunk-aware backends
        override (or inherit this duck-typed probe) to report the view's
        chunk layout so covers stay segment-aligned with it.
        """
        metas = getattr(self.dataset, "chunk_metas", None)
        if metas is None:
            return (self.dataset.n_rows,)
        return tuple(m.n_rows for m in metas())

    def cover_of(self, itemset: "Itemset") -> Cover:
        """Packed coverage of an itemset.

        Reference fallback: densify via :meth:`cover` and pack along the
        chunk boundaries.  Backends with packed or per-chunk indexes
        override to avoid the dense intermediate.
        """
        return Cover.from_dense(self.cover(itemset), self.chunk_sizes)

    def full_cover(self) -> Cover:
        """Packed coverage of every row (the empty context)."""
        return Cover.full(self.chunk_sizes)

    def cover_group_counts(self, cover: Cover) -> np.ndarray:
        """Per-group counts inside a packed cover.

        Reference fallback: densify and ``bincount`` — the historical
        ``mask_group_counts`` semantics, including its single
        ``count_calls`` tally.  Packed backends override with AND +
        popcount counting.
        """
        self.count_calls += 1
        return self.dataset.group_counts(cover.to_dense())

    def counters(self) -> BackendCounters:
        return BackendCounters(
            count_calls=self.count_calls,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            batch_calls=self.batch_calls,
            batched_candidates=self.batched_candidates,
            batch_fallbacks=self.batch_fallbacks,
        )

    def publish(self, stats: "MiningStats") -> None:
        """Fold the delta since the previous publish into ``stats``.

        Delta semantics let a long-lived backend (e.g. the worker-global
        one in the parallel scheduler) publish into a fresh stats object
        per task without double counting.
        """
        current = self.counters()
        delta = current - self._published
        self._published = current
        stats.counting_backend = self.name
        stats.count_calls += delta.count_calls
        stats.cache_hits += delta.cache_hits
        stats.cache_misses += delta.cache_misses
        stats.batch_calls += delta.batch_calls
        stats.batched_candidates += delta.batched_candidates
        stats.batch_fallbacks += delta.batch_fallbacks
