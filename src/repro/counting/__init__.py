"""Pluggable support-counting backends.

The miners delegate all support counting — itemset contingency rows and
mask-restricted group counts — to a :class:`~repro.counting.base.
CountingBackend`.  Two implementations ship:

``mask``
    :class:`~repro.counting.mask.MaskBackend` — boolean masks over numpy
    columns; the historical reference path and the default.
``bitmap``
    :class:`~repro.counting.bitmap.BitmapBackend` — packed bit-vectors with
    per-group popcounts and an LRU cache of categorical-context coverage
    vectors; the fast path for categorical-heavy workloads.

Select one via ``MinerConfig(counting_backend="bitmap")`` or the CLI's
``--backend`` flag.
"""

from __future__ import annotations

from .base import BackendCounters, CountingBackend, CountingBackendBase
from .bitmap import BitmapBackend
from .mask import MaskBackend

__all__ = [
    "BackendCounters",
    "CountingBackend",
    "CountingBackendBase",
    "MaskBackend",
    "BitmapBackend",
    "BACKENDS",
    "available_backends",
    "backend_from_config",
    "make_backend",
]

BACKENDS: dict[str, type] = {
    MaskBackend.name: MaskBackend,
    BitmapBackend.name: BitmapBackend,
}


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


def make_backend(
    name: str, dataset, *, cache_size: int | None = None
) -> CountingBackend:
    """Instantiate a registered backend for a dataset.

    ``name`` and ``dataset`` are the identity of the backend and stay
    positional; every option is keyword-only (this signature is the
    formal API — see DESIGN.md §12).
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown counting backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    if cache_size is None:
        return cls(dataset)
    return cls(dataset, cache_size=cache_size)


def backend_from_config(config, dataset) -> CountingBackend:
    """Instantiate the backend a :class:`~repro.core.config.MinerConfig`
    asks for, honouring ``backend_cache_size`` and dispatching lazy
    out-of-core datasets to the chunk-aware backend.

    This is the single construction point the search layers use
    (``SearchEngine``, the parallel worker initialiser, the serial
    fallback), so every execution path counts through the same backend
    for the same (config, dataset) pair.
    """
    # imported lazily: the chunked layer is optional machinery most
    # in-memory runs never touch
    from ..dataset.chunked import ChunkedView

    if isinstance(dataset, ChunkedView):
        from .chunked import ChunkedBackend

        return ChunkedBackend(
            dataset,
            inner=config.counting_backend,
            cache_size=config.backend_cache_size,
        )
    return make_backend(
        config.counting_backend, dataset,
        cache_size=config.backend_cache_size,
    )
