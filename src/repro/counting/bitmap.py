"""Packed-bitmap counting backend (SciCSM-style hot path).

Counting strategy:

* every ``(attribute, value)`` pair of the categorical attributes gets a
  packed bit-vector (built once, via :class:`~repro.dataset.bitmap.
  BitmapIndex`);
* a purely categorical itemset's coverage is the AND of its item vectors,
  and its contingency row is one AND + popcount per group — ``|groups| + 1``
  vectorised word operations over ``n_rows / 8`` bytes instead of
  ``|items| + 1`` boolean passes over full-width columns;
* the coverage vectors of categorical *contexts* are LRU-memoized, so a
  context counted at search level ``n`` makes each of its level ``n + 1``
  extensions a single AND away — the level-wise candidate generation of
  the search (and the SDAD-CS context enumeration) hits this cache almost
  every time;
* itemsets containing numeric items fall back to a hybrid: the categorical
  prefix comes from the (cached) bitmap, numeric intervals are applied as
  boolean masks, and the final count packs the mask and popcounts it
  against the per-group bit-vectors — still several times cheaper than
  ``bincount`` over int64 group codes.

All counts are exact popcounts, so results are byte-identical to
:class:`~repro.counting.mask.MaskBackend` (asserted by the parity tests in
``tests/test_counting.py``).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..core.cover import Cover
from ..core.items import CategoricalItem, Itemset
from ..dataset.bitmap import BitmapIndex, popcount_rows
from ..dataset.table import DatasetError
from .base import CountingBackendBase

__all__ = ["BitmapBackend"]

#: default number of context coverage vectors kept in the LRU cache; at
#: ``n_rows / 8`` bytes per entry this stays a few dozen MB even for
#: million-row datasets.
DEFAULT_CACHE_SIZE = 8192


#: cap on the transient ``(slab, n_groups, n_words)`` uint8 buffer used by
#: the batch popcount sweep, in bytes (~4 MB keeps it cache-friendly).
_BATCH_SLAB_BYTES = 4 * 1024 * 1024


class BitmapBackend(CountingBackendBase):
    """Count supports with packed bit-vectors and per-group popcounts."""

    name = "bitmap"
    supports_batch = True

    def __init__(self, dataset, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        super().__init__(dataset)
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.cache_size = cache_size
        self._index = BitmapIndex(dataset, dataset.schema.categorical_names)
        # (n_groups, n_words) stack: one fused ufunc call counts all groups
        self._group_stack = np.stack(self._index.group_bitmaps)
        self._cache: "OrderedDict[Itemset, np.ndarray]" = OrderedDict()

    # ------------------------------------------------------------------
    # Packed coverage of categorical itemsets (the cached hot path)
    # ------------------------------------------------------------------

    def _bits(self, itemset: Itemset) -> np.ndarray:
        """Packed coverage of a purely categorical itemset.

        Single items read straight from the index (the index *is* their
        cache); longer contexts recurse on the canonical prefix so a
        level-``n`` vector is reused by every level-``n+1`` extension.
        """
        items = itemset.items
        if not items:
            return self._index.full_bits
        if len(items) == 1:
            return self._index.item_bitmap(items[0])
        cached = self._cache.get(itemset)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(itemset)
            return cached
        self.cache_misses += 1
        prefix = Itemset(items[:-1])
        bits = self._bits(prefix) & self._index.item_bitmap(items[-1])
        self._cache[itemset] = bits
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return bits

    def _split(
        self, itemset: Itemset
    ) -> tuple[Itemset, tuple]:
        """Partition an itemset into (categorical part, other items)."""
        cat = [i for i in itemset if isinstance(i, CategoricalItem)]
        rest = tuple(i for i in itemset if not isinstance(i, CategoricalItem))
        if len(cat) == len(itemset.items):
            return itemset, rest
        return Itemset(cat), rest

    def _counts_of_bits(self, bits: np.ndarray) -> np.ndarray:
        return popcount_rows(self._group_stack & bits)

    # ------------------------------------------------------------------
    # CountingBackend interface
    # ------------------------------------------------------------------

    def cover(self, itemset: Itemset) -> np.ndarray:
        categorical, rest = self._split(itemset)
        bits = self._bits(categorical)
        mask = np.unpackbits(bits, count=self.dataset.n_rows).view(np.bool_)
        for item in rest:
            mask = mask & item.cover(self.dataset)
        return mask

    def cover_of(self, itemset: Itemset) -> Cover:
        """Packed coverage straight from the bitmap index.

        The categorical prefix goes through :meth:`_bits` exactly once —
        the same single LRU probe the dense :meth:`cover` path performs,
        so cache accounting is unchanged — and purely categorical
        itemsets (every SDAD-CS context) never densify at all.
        """
        categorical, rest = self._split(itemset)
        bits = self._bits(categorical)
        if rest:
            mask = np.unpackbits(
                bits, count=self.dataset.n_rows
            ).view(np.bool_)
            for item in rest:
                mask = mask & item.cover(self.dataset)
            bits = np.packbits(mask)
        return Cover([bits], (self.dataset.n_rows,))

    def full_cover(self) -> Cover:
        return Cover([self._index.full_bits], (self.dataset.n_rows,))

    def group_counts(self, itemset: Itemset) -> np.ndarray:
        self.count_calls += 1
        categorical, rest = self._split(itemset)
        if not rest:
            return self._counts_of_bits(self._bits(categorical))
        return self._count_mask(self.cover(itemset))

    def group_counts_batch(self, itemsets) -> np.ndarray:
        """Stacked counts: one packed-AND + popcount sweep over the batch.

        Purely categorical itemsets (the level-wise hot path) are counted
        together: their packed coverage vectors are stacked into an
        ``(N, n_words)`` matrix and ANDed against the per-group stack in
        slabs, so the whole batch costs a handful of fused ufunc calls.
        Itemsets with numeric items take the scalar hybrid path and are
        tallied as fallbacks.
        """
        items = list(itemsets)
        self.batch_calls += 1
        self.batched_candidates += len(items)
        self.count_calls += len(items)
        n_groups = self.dataset.n_groups
        out = np.zeros((len(items), n_groups), dtype=np.int64)
        packed_rows: list[np.ndarray] = []
        packed_pos: list[int] = []
        for i, itemset in enumerate(items):
            categorical, rest = self._split(itemset)
            if rest:
                self.batch_fallbacks += 1
                out[i] = self._count_mask(self.cover(itemset))
            else:
                packed_rows.append(self._bits(categorical))
                packed_pos.append(i)
        if packed_rows:
            stacked = np.stack(packed_rows)
            pos = np.asarray(packed_pos, dtype=np.intp)
            n_words = stacked.shape[1]
            slab = max(1, _BATCH_SLAB_BYTES // max(1, n_groups * n_words))
            for start in range(0, stacked.shape[0], slab):
                chunk = stacked[start : start + slab]
                anded = chunk[:, None, :] & self._group_stack[None, :, :]
                counts = popcount_rows(
                    anded.reshape(-1, n_words)
                ).reshape(chunk.shape[0], n_groups)
                out[pos[start : start + slab]] = counts
        return out

    def _count_mask(self, mask: np.ndarray) -> np.ndarray:
        return self._counts_of_bits(np.packbits(mask))

    def mask_group_counts(self, mask: np.ndarray) -> np.ndarray:
        self.count_calls += 1
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape != (self.dataset.n_rows,):
            raise DatasetError("mask must be a boolean array over rows")
        return self._count_mask(mask)

    def cover_group_counts(self, cover: Cover) -> np.ndarray:
        """Count a packed cover without unpacking: one fused AND +
        popcount against the per-group stack.

        This is the cover-AND hotspot in packed form — the dense path
        paid an ``n_rows`` boolean pack here on every space count.
        """
        self.count_calls += 1
        if cover.chunk_sizes != (self.dataset.n_rows,):
            # Foreign chunking (not produced by this backend): realign.
            return self._counts_of_bits(np.packbits(cover.to_dense()))
        return self._counts_of_bits(cover.segment(0))

    # ------------------------------------------------------------------

    def cache_info(self) -> dict:
        """Introspection for tests and benches."""
        return {
            "entries": len(self._cache),
            "capacity": self.cache_size,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "index_bytes": self._index.memory_bytes(),
        }
