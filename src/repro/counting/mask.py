"""Boolean-mask counting backend (the historical reference path).

This extracts exactly the counting logic the search layers used inline
before backends existed: itemset coverage is the AND of per-item boolean
masks over the raw columns, and per-group counting is a ``bincount`` of the
group codes inside the mask.  It is the byte-identical baseline every other
backend must match.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .base import CountingBackendBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.items import Itemset

__all__ = ["MaskBackend"]


class MaskBackend(CountingBackendBase):
    """Count supports with fresh boolean masks per itemset."""

    name = "mask"

    def cover(self, itemset: "Itemset") -> np.ndarray:
        return itemset.cover(self.dataset)

    def group_counts(self, itemset: "Itemset") -> np.ndarray:
        self.count_calls += 1
        return self.dataset.group_counts(itemset.cover(self.dataset))

    def mask_group_counts(self, mask: np.ndarray) -> np.ndarray:
        self.count_calls += 1
        return self.dataset.group_counts(mask)
