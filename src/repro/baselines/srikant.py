"""Srikant & Agrawal (1996) equi-depth partitioning baseline.

The quantitative-association-rule discretization discussed in Related Work:
partition each continuous attribute into ``n`` equal-frequency base
partitions, then merge adjacent partitions whose combined support stays
under ``max_support`` (so that ranges grow until they are frequent enough
to matter, the partial-completeness construction).  The paper highlights
its two weaknesses — choosing ``n`` and the inability to track multivariate
interactions — which our ablation benches exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dataset.table import Dataset
from .discretizers import Binning, DiscretizedView, equal_frequency_cuts

__all__ = ["srikant_binning", "srikant_discretize"]


def srikant_binning(
    dataset: Dataset,
    attribute: str,
    n_partitions: int = 10,
    max_support: float = 0.15,
) -> Binning:
    """Equi-depth partitions merged up to a support ceiling.

    Adjacent partitions are merged left-to-right while the merged range's
    fraction of rows stays at or below ``max_support``.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    values = dataset.column(attribute)
    n = values.size
    if n == 0:
        return Binning(attribute, (), 0.0, 0.0)
    lo, hi = float(values.min()), float(values.max())
    cuts = list(equal_frequency_cuts(values, n_partitions))
    if not cuts:
        return Binning(attribute, (), lo, hi)

    binning = Binning(attribute, tuple(cuts), lo, hi)
    ids = binning.assign(values)
    sizes = np.bincount(ids, minlength=len(cuts) + 1).astype(float) / n

    kept: list[float] = []
    run = sizes[0]
    for i, cut in enumerate(cuts):
        nxt = sizes[i + 1]
        if run + nxt <= max_support:
            run += nxt  # merge: drop this cut
        else:
            kept.append(cut)
            run = nxt
    return Binning(attribute, tuple(kept), lo, hi)


def srikant_discretize(
    dataset: Dataset,
    attributes: Sequence[str] | None = None,
    n_partitions: int = 10,
    max_support: float = 0.15,
) -> DiscretizedView:
    """Apply Srikant-Agrawal binning to the continuous attributes."""
    names = (
        tuple(attributes)
        if attributes is not None
        else dataset.schema.continuous_names
    )
    binnings = {
        name: srikant_binning(dataset, name, n_partitions, max_support)
        for name in names
    }
    return DiscretizedView(dataset, binnings)
