"""MVD — Multivariate Discretization (Bay, 2001) baseline.

MVD starts from fine equal-frequency *basic intervals* (~100 instances
each, the setting used in the paper's experiments) and merges adjacent
intervals bottom-up while they are **multivariately indistinguishable**:
two adjacent intervals stay separate only if the joint distribution of the
*other* attributes (including the group attribute) differs significantly
between them.

This is the key difference from class-based discretizers: MVD reacts to
*any* distributional change — which is why, on Simulated Dataset 1, it
splits where the attributes' correlation structure changes and can miss the
boundary that actually separates the groups (Section 5.1).

Implementation notes (DESIGN.md substitution notes): contexts are the
group attribute, every categorical attribute, and every *other* continuous
attribute coarsened at its median.  Two adjacent intervals are similar when
no context attribute's distribution differs at the Bonferroni-adjusted
level; merging proceeds lowest-evidence-first until fixpoint, as in Bay's
bottom-up formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.stats import chi_square_independence
from ..dataset.table import Dataset
from .discretizers import Binning, DiscretizedView, equal_frequency_cuts

__all__ = ["mvd_binning", "mvd_discretize"]


def _context_matrix(
    dataset: Dataset, target: str
) -> tuple[np.ndarray, list[int]]:
    """Stack the context attributes as integer code columns.

    Returns the (n_rows, n_contexts) code matrix and the cardinality of
    each context column.
    """
    columns: list[np.ndarray] = [np.asarray(dataset.group_codes)]
    cards: list[int] = [dataset.n_groups]
    for attr in dataset.schema:
        if attr.name == target:
            continue
        if attr.is_categorical:
            columns.append(np.asarray(dataset.column(attr.name)))
            cards.append(attr.cardinality)
        else:
            values = dataset.column(attr.name)
            median = float(np.median(values)) if values.size else 0.0
            columns.append((values > median).astype(np.int64))
            cards.append(2)
    return np.column_stack(columns), cards


def _difference_evidence(
    in_a: np.ndarray,
    in_b: np.ndarray,
    context: np.ndarray,
    cards: Sequence[int],
    alpha: float,
) -> tuple[bool, float]:
    """Do two intervals differ on any context attribute?

    Returns ``(different, max_statistic)``; the statistic is used to pick
    the least-different pair to merge first.
    """
    adjusted = alpha / max(1, len(cards))
    different = False
    strongest = 0.0
    for j, card in enumerate(cards):
        col = context[:, j]
        table = np.vstack(
            [
                np.bincount(col[in_a], minlength=card),
                np.bincount(col[in_b], minlength=card),
            ]
        )
        result = chi_square_independence(table)
        strongest = max(strongest, result.statistic)
        if result.p_value < adjusted:
            different = True
    return different, strongest


def mvd_binning(
    dataset: Dataset,
    attribute: str,
    basic_bin_size: int = 100,
    alpha: float = 0.05,
) -> Binning:
    """Discretize one attribute with MVD.

    Parameters
    ----------
    basic_bin_size:
        Target instances per initial equal-frequency basic interval (the
        paper uses 100, following Bay).
    alpha:
        Significance level for the per-context chi-square tests
        (Bonferroni-split across contexts).
    """
    values = dataset.column(attribute)
    n = values.size
    if n == 0:
        return Binning(attribute, (), 0.0, 0.0)
    n_basic = max(1, n // max(1, basic_bin_size))
    cuts = list(equal_frequency_cuts(values, n_basic))
    lo, hi = float(values.min()), float(values.max())
    if not cuts:
        return Binning(attribute, (), lo, hi)

    context, cards = _context_matrix(dataset, attribute)

    # per-interval row masks, maintained incrementally across merges
    binning = Binning(attribute, tuple(cuts), lo, hi)
    bin_ids = binning.assign(values)
    masks: list[np.ndarray] = [
        bin_ids == i for i in range(len(cuts) + 1)
    ]

    def test(i: int) -> tuple[bool, float]:
        return _difference_evidence(
            masks[i], masks[i + 1], context, cards, alpha
        )

    # merge adjacent intervals bottom-up, least-different pair first;
    # after a merge only the tests touching the merged interval change.
    pair_results: list[tuple[bool, float]] = [
        test(i) for i in range(len(cuts))
    ]
    while cuts:
        candidates = [
            (stat, i)
            for i, (different, stat) in enumerate(pair_results)
            if not different
        ]
        if not candidates:
            break
        candidates.sort()
        _, i = candidates[0]
        masks[i] = masks[i] | masks[i + 1]
        del masks[i + 1]
        del cuts[i]
        del pair_results[i]
        if i > 0:
            pair_results[i - 1] = test(i - 1)
        if i < len(cuts):
            pair_results[i] = test(i)
    return Binning(attribute, tuple(cuts), lo, hi)


def mvd_discretize(
    dataset: Dataset,
    attributes: Sequence[str] | None = None,
    basic_bin_size: int = 100,
    alpha: float = 0.05,
) -> DiscretizedView:
    """Apply MVD to every (or the given) continuous attribute."""
    names = (
        tuple(attributes)
        if attributes is not None
        else dataset.schema.continuous_names
    )
    binnings = {
        name: mvd_binning(dataset, name, basic_bin_size, alpha)
        for name in names
    }
    return DiscretizedView(dataset, binnings)
