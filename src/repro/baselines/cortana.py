"""Cortana-style beam-search subgroup discovery baseline.

Re-implements the configuration the paper runs in the Cortana software
suite (Section 5, Experimental Setup): WRAcc quality measure on a nominal
target, beam search with width 100, the ``intervals`` strategy for numeric
attributes, minimum coverage 2, at most ``k`` subgroups — executed once per
group as the target and the results unioned into one contrast list.

The ``intervals`` numeric strategy follows Mampaey et al. (ICDM 2012, the
algorithm behind Cortana's interval option): each numeric attribute's range
is cut into ``n_bins`` equal-height base bins and every contiguous run of
base bins (every interval ``(edge_i, edge_j]``) is a candidate condition.
This is global, level-wise binning — the contrast the paper draws against
SDAD-CS's locally adaptive splits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.contrast import ContrastPattern, evaluate_itemset
from ..core.instrumentation import MiningStats, Stopwatch
from ..core.items import CategoricalItem, Interval, Itemset, NumericItem
from ..dataset.table import Dataset
from .discretizers import equal_frequency_cuts

__all__ = ["CortanaConfig", "CortanaResult", "cortana", "wracc_for_target"]


@dataclass(frozen=True)
class CortanaConfig:
    """Settings mirroring the paper's Cortana runs."""

    beam_width: int = 100
    depth: int = 2
    k: int = 100
    n_bins: int = 6
    min_coverage: int = 2
    min_quality: float = 0.01  # the paper's minimum WRAcc of 0.01


@dataclass
class CortanaResult:
    patterns: list[ContrastPattern]
    stats: MiningStats

    def top(self, n: int | None = None) -> list[ContrastPattern]:
        return self.patterns if n is None else self.patterns[:n]


def wracc_for_target(
    pattern: ContrastPattern, target_index: int
) -> float:
    """WRAcc of ``pattern -> group[target_index]``."""
    total = sum(pattern.group_sizes)
    covered = pattern.total_count
    if total == 0 or covered == 0:
        return 0.0
    p_cond = covered / total
    p_target = pattern.group_sizes[target_index] / total
    p_joint = pattern.counts[target_index] / covered
    return p_cond * (p_joint - p_target)


def _numeric_conditions(
    dataset: Dataset, name: str, n_bins: int
) -> list[NumericItem]:
    """All intervals over the equal-height base bins (Cortana's
    ``intervals`` option), including the half-open extremes."""
    values = dataset.column(name)
    cuts = equal_frequency_cuts(values, n_bins)
    if not cuts:
        return []
    edges = [-np.inf, *cuts, np.inf]
    items = []
    for i, j in itertools.combinations(range(len(edges)), 2):
        if i == 0 and j == len(edges) - 1:
            continue  # the whole range constrains nothing
        items.append(
            NumericItem(
                name,
                Interval(edges[i], edges[j], lo_closed=False, hi_closed=True)
                if np.isfinite(edges[j])
                else Interval(edges[i], edges[j], False, False),
            )
        )
    return items


def _conditions(dataset: Dataset, config: CortanaConfig) -> list:
    out: list = []
    for attr in dataset.schema:
        if attr.is_categorical:
            out.extend(
                CategoricalItem(attr.name, value)
                for value in attr.categories
            )
        else:
            out.extend(
                _numeric_conditions(dataset, attr.name, config.n_bins)
            )
    return out


def _search_for_target(
    dataset: Dataset,
    target_index: int,
    config: CortanaConfig,
    stats: MiningStats,
) -> list[tuple[float, ContrastPattern]]:
    conditions = _conditions(dataset, config)
    results: dict[Itemset, tuple[float, ContrastPattern]] = {}
    beam: list[tuple[float, Itemset]] = [(0.0, Itemset())]

    for _ in range(config.depth):
        candidates: dict[Itemset, float] = {}
        scored: dict[Itemset, ContrastPattern] = {}
        for __, base in beam:
            for condition in conditions:
                if base.item_for(condition.attribute) is not None:
                    continue
                itemset = base.with_item(condition)
                if itemset in candidates:
                    continue
                stats.partitions_evaluated += 1
                pattern = evaluate_itemset(itemset, dataset, len(itemset))
                if pattern.total_count < config.min_coverage:
                    continue
                quality = wracc_for_target(pattern, target_index)
                candidates[itemset] = quality
                scored[itemset] = pattern
        if not candidates:
            break
        ranked = sorted(candidates.items(), key=lambda kv: -kv[1])
        beam = [
            (quality, itemset)
            for itemset, quality in ranked[: config.beam_width]
        ]
        for itemset, quality in ranked:
            if quality >= config.min_quality:
                existing = results.get(itemset)
                if existing is None or quality > existing[0]:
                    results[itemset] = (quality, scored[itemset])

    ranked = sorted(results.values(), key=lambda qp: -qp[0])
    return ranked[: config.k]


def cortana(
    dataset: Dataset, config: CortanaConfig | None = None
) -> CortanaResult:
    """Run the paper's Cortana configuration.

    The subgroup search runs once per group (each group as the nominal
    target, as the paper describes) and the subgroups found are unioned
    into a single contrast list ranked by support difference.
    """
    config = config or CortanaConfig()
    stats = MiningStats()
    merged: dict[Itemset, ContrastPattern] = {}
    with Stopwatch(stats):
        for target_index in range(dataset.n_groups):
            for __, pattern in _search_for_target(
                dataset, target_index, config, stats
            ):
                merged.setdefault(pattern.itemset, pattern)
    patterns = sorted(
        merged.values(), key=lambda p: -p.support_difference
    )[: config.k]
    return CortanaResult(patterns, stats)
