"""Fayyad & Irani (1993) entropy/MDLP discretization baseline.

The classic supervised discretizer the paper compares against ("Entropy"
column of Table 4): each continuous attribute is split recursively at the
boundary minimising class entropy, with the Minimum Description Length
Principle criterion deciding when to stop.  The group attribute plays the
role of the class.

It is *global* (one binning for the whole dataset) and *univariate* (each
attribute discretized independently), so it cannot express local
multivariate interactions — the paper shows it finds nothing on Simulated
Dataset 2 (the "X" shape).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..dataset.table import Dataset
from .discretizers import Binning, DiscretizedView

__all__ = ["entropy", "information_gain", "mdlp_criterion", "fayyad_binning",
           "fayyad_discretize"]


def entropy(class_counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a class-count vector."""
    counts = np.asarray(class_counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        return 0.0
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())


def _class_counts(classes: np.ndarray, n_classes: int) -> np.ndarray:
    return np.bincount(classes, minlength=n_classes)


def information_gain(
    classes_left: np.ndarray,
    classes_right: np.ndarray,
    n_classes: int,
) -> float:
    """Entropy reduction of a binary split."""
    left = _class_counts(classes_left, n_classes)
    right = _class_counts(classes_right, n_classes)
    total = left + right
    n = total.sum()
    if n == 0:
        return 0.0
    weighted = (
        left.sum() / n * entropy(left) + right.sum() / n * entropy(right)
    )
    return entropy(total) - weighted


def mdlp_criterion(
    classes_left: np.ndarray,
    classes_right: np.ndarray,
    n_classes: int,
) -> bool:
    """Fayyad & Irani's MDLP stopping rule: accept the split only if the
    information gain exceeds ``(log2(N-1) + log2(3^k - 2) - [k*E(S) -
    k1*E(S1) - k2*E(S2)]) / N``."""
    n = len(classes_left) + len(classes_right)
    if n < 2:
        return False
    gain = information_gain(classes_left, classes_right, n_classes)
    all_classes = np.concatenate([classes_left, classes_right])
    k = len(np.unique(all_classes))
    k1 = len(np.unique(classes_left)) if len(classes_left) else 0
    k2 = len(np.unique(classes_right)) if len(classes_right) else 0
    ent = entropy(_class_counts(all_classes, n_classes))
    ent1 = entropy(_class_counts(classes_left, n_classes))
    ent2 = entropy(_class_counts(classes_right, n_classes))
    delta = math.log2(max(3**k - 2, 1)) - (k * ent - k1 * ent1 - k2 * ent2)
    threshold = (math.log2(n - 1) + delta) / n
    return gain > threshold


def _best_boundary(
    values: np.ndarray, classes: np.ndarray, n_classes: int
) -> tuple[float, int] | None:
    """Best class-boundary cut by information gain.

    Fayyad's theorem: the optimal cut lies between adjacent examples of
    different classes, so only those boundaries are evaluated.
    """
    order = np.argsort(values, kind="stable")
    v = values[order]
    c = classes[order]
    boundaries = np.nonzero(np.diff(v) > 0)[0]
    if boundaries.size == 0:
        return None

    n = len(v)
    # cumulative class counts along the sorted order -> O(1) gain per cut
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), c] = 1.0
    cum = np.cumsum(onehot, axis=0)
    total = cum[-1]

    left = cum[boundaries]  # counts with index <= boundary
    right = total - left
    n_left = left.sum(axis=1)
    n_right = right.sum(axis=1)

    def _entropy_rows(counts, sizes):
        with np.errstate(divide="ignore", invalid="ignore"):
            probs = np.divide(
                counts,
                sizes[:, None],
                out=np.zeros_like(counts),
                where=sizes[:, None] > 0,
            )
            logp = np.zeros_like(probs)
            np.log2(probs, out=logp, where=probs > 0)
        return -(probs * logp).sum(axis=1)

    parent = entropy(total)
    gains = parent - (
        n_left / n * _entropy_rows(left, n_left)
        + n_right / n * _entropy_rows(right, n_right)
    )
    best = int(np.argmax(gains))
    idx = int(boundaries[best])
    cut = (v[idx] + v[idx + 1]) / 2.0
    return float(cut), idx


def _recurse(
    values: np.ndarray,
    classes: np.ndarray,
    n_classes: int,
    cuts: list[float],
    depth: int,
    max_depth: int,
) -> None:
    if depth >= max_depth or len(values) < 4:
        return
    found = _best_boundary(values, classes, n_classes)
    if found is None:
        return
    cut, _ = found
    left = values <= cut
    if not mdlp_criterion(classes[left], classes[~left], n_classes):
        return
    cuts.append(cut)
    _recurse(values[left], classes[left], n_classes, cuts, depth + 1, max_depth)
    _recurse(
        values[~left], classes[~left], n_classes, cuts, depth + 1, max_depth
    )


def fayyad_binning(
    dataset: Dataset, attribute: str, max_depth: int = 16
) -> Binning:
    """MDLP binning of one attribute against the group attribute."""
    values = dataset.column(attribute)
    classes = np.asarray(dataset.group_codes)
    cuts: list[float] = []
    if values.size:
        _recurse(values, classes, dataset.n_groups, cuts, 0, max_depth)
    lo = float(values.min()) if values.size else 0.0
    hi = float(values.max()) if values.size else 0.0
    return Binning(attribute, tuple(sorted(set(cuts))), lo, hi)


def fayyad_discretize(
    dataset: Dataset,
    attributes: Sequence[str] | None = None,
    max_depth: int = 16,
) -> DiscretizedView:
    """Discretize every (or the given) continuous attribute with MDLP."""
    names = (
        tuple(attributes)
        if attributes is not None
        else dataset.schema.continuous_names
    )
    binnings = {
        name: fayyad_binning(dataset, name, max_depth) for name in names
    }
    return DiscretizedView(dataset, binnings)
