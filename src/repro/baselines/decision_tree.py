"""CART-style decision tree baseline (paper Section 1 motivation).

The introduction argues that decision trees, while interpretable, are the
wrong tool for *pattern detection*: a single greedy global model commits
to one split hierarchy, so (a) it finds one explanation rather than all
contrasts, and (b) greedy gain can be blind to multivariate interactions
(the XOR example — no single split improves purity, so a greedy tree may
never discover structure that SDAD-CS's joint space search finds).

This module implements a small Gini-impurity CART over mixed data and an
extractor that converts root-to-leaf paths into
:class:`~repro.core.contrast.ContrastPattern` objects, so tree "patterns"
can be compared directly against mined contrast sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.contrast import ContrastPattern, evaluate_itemset
from ..core.items import CategoricalItem, Interval, Itemset, NumericItem
from ..dataset.table import Dataset

__all__ = ["TreeConfig", "TreeNode", "DecisionTree", "tree_patterns"]


@dataclass(frozen=True)
class TreeConfig:
    max_depth: int = 4
    min_samples_split: int = 20
    min_samples_leaf: int = 5
    min_gain: float = 1e-4


@dataclass
class TreeNode:
    """A node of the fitted tree."""

    counts: np.ndarray
    depth: int
    # split description (internal nodes only)
    attribute: str | None = None
    threshold: float | None = None  # numeric split: value <= threshold
    category: int | None = None  # categorical split: code == category
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def prediction(self) -> int:
        return int(np.argmax(self.counts))

    @property
    def n_samples(self) -> int:
        return int(self.counts.sum())


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p**2).sum())


class DecisionTree:
    """Greedy CART on a :class:`Dataset`, class = group attribute."""

    def __init__(self, config: TreeConfig | None = None) -> None:
        self.config = config or TreeConfig()
        self.root: TreeNode | None = None
        self._dataset: Dataset | None = None

    # ------------------------------------------------------------------

    def fit(self, dataset: Dataset) -> "DecisionTree":
        self._dataset = dataset
        mask = np.ones(dataset.n_rows, dtype=bool)
        self.root = self._grow(dataset, mask, depth=0)
        return self

    def _grow(
        self, dataset: Dataset, mask: np.ndarray, depth: int
    ) -> TreeNode:
        counts = dataset.group_counts(mask)
        node = TreeNode(counts=counts, depth=depth)
        n = int(counts.sum())
        if (
            depth >= self.config.max_depth
            or n < self.config.min_samples_split
            or _gini(counts) == 0.0
        ):
            return node

        best = self._best_split(dataset, mask, counts)
        if best is None:
            return node
        gain, attribute, threshold, category, left_mask = best
        if gain < self.config.min_gain:
            return node

        node.attribute = attribute
        node.threshold = threshold
        node.category = category
        node.left = self._grow(dataset, mask & left_mask, depth + 1)
        node.right = self._grow(dataset, mask & ~left_mask, depth + 1)
        return node

    def _best_split(self, dataset, mask, counts):
        parent_gini = _gini(counts)
        n = int(counts.sum())
        best = None
        best_gain = -1.0
        group_codes = np.asarray(dataset.group_codes)
        for attr in dataset.schema:
            column = dataset.column(attr.name)
            if attr.is_continuous:
                values = column[mask]
                classes = group_codes[mask]
                split = self._best_numeric(values, classes,
                                           dataset.n_groups)
                if split is None:
                    continue
                gain, threshold = split
                if gain > best_gain:
                    best_gain = gain
                    best = (
                        gain,
                        attr.name,
                        threshold,
                        None,
                        column <= threshold,
                    )
            else:
                for code in range(attr.cardinality):
                    left_mask = column == code
                    inside = mask & left_mask
                    n_left = int(inside.sum())
                    n_right = n - n_left
                    if (
                        n_left < self.config.min_samples_leaf
                        or n_right < self.config.min_samples_leaf
                    ):
                        continue
                    left_counts = dataset.group_counts(inside)
                    right_counts = counts - left_counts
                    gain = parent_gini - (
                        n_left / n * _gini(left_counts)
                        + n_right / n * _gini(right_counts)
                    )
                    if gain > best_gain:
                        best_gain = gain
                        best = (gain, attr.name, None, code, left_mask)
        return best

    def _best_numeric(self, values, classes, n_groups):
        if values.size < 2 * self.config.min_samples_leaf:
            return None
        order = np.argsort(values, kind="stable")
        v = values[order]
        c = classes[order]
        boundaries = np.nonzero(np.diff(v) > 0)[0]
        if boundaries.size == 0:
            return None
        n = len(v)
        onehot = np.zeros((n, n_groups))
        onehot[np.arange(n), c] = 1.0
        cum = np.cumsum(onehot, axis=0)
        total = cum[-1]
        left = cum[boundaries]
        right = total - left
        n_left = left.sum(axis=1)
        n_right = right.sum(axis=1)
        valid = (n_left >= self.config.min_samples_leaf) & (
            n_right >= self.config.min_samples_leaf
        )
        if not valid.any():
            return None

        def gini_rows(counts, sizes):
            with np.errstate(divide="ignore", invalid="ignore"):
                p = np.divide(
                    counts,
                    sizes[:, None],
                    out=np.zeros_like(counts),
                    where=sizes[:, None] > 0,
                )
            return 1.0 - (p**2).sum(axis=1)

        weighted = n_left / n * gini_rows(left, n_left) + (
            n_right / n
        ) * gini_rows(right, n_right)
        weighted[~valid] = math.inf
        best = int(np.argmin(weighted))
        gain = _gini(total.astype(np.int64)) - float(weighted[best])
        idx = int(boundaries[best])
        threshold = float((v[idx] + v[idx + 1]) / 2.0)
        return gain, threshold

    # ------------------------------------------------------------------

    def predict(self, dataset: Dataset) -> np.ndarray:
        """Predicted group code per row."""
        if self.root is None:
            raise RuntimeError("tree not fitted")
        out = np.empty(dataset.n_rows, dtype=np.int64)
        self._predict_into(self.root, dataset,
                           np.ones(dataset.n_rows, dtype=bool), out)
        return out

    def _predict_into(self, node, dataset, mask, out) -> None:
        if node.is_leaf:
            out[mask] = node.prediction
            return
        column = dataset.column(node.attribute)
        if node.threshold is not None:
            left_mask = column <= node.threshold
        else:
            left_mask = column == node.category
        self._predict_into(node.left, dataset, mask & left_mask, out)
        self._predict_into(node.right, dataset, mask & ~left_mask, out)

    def accuracy(self, dataset: Dataset) -> float:
        predictions = self.predict(dataset)
        return float(
            (predictions == np.asarray(dataset.group_codes)).mean()
        )

    def depth(self) -> int:
        def walk(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def n_leaves(self) -> int:
        def walk(node):
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root) if self.root else 0


def tree_patterns(
    tree: DecisionTree, dataset: Dataset
) -> list[ContrastPattern]:
    """Convert the tree's root-to-leaf paths into contrast patterns.

    Each leaf's path is a conjunction of conditions — the tree's version
    of an itemset.  Because the tree is one greedy hierarchy, the set of
    paths is a *partition* of the data, not the set of all contrasts; the
    comparison bench quantifies what that misses.
    """
    if tree.root is None:
        raise RuntimeError("tree not fitted")
    patterns: list[ContrastPattern] = []

    def conditions_to_itemset(conditions) -> Itemset:
        # combine repeated numeric conditions on one attribute
        lo: dict[str, float] = {}
        hi: dict[str, float] = {}
        cats: dict[str, CategoricalItem] = {}
        for attribute, kind, value in conditions:
            if kind == "le":
                hi[attribute] = min(hi.get(attribute, math.inf), value)
            elif kind == "gt":
                lo[attribute] = max(lo.get(attribute, -math.inf), value)
            else:  # categorical equality
                cats[attribute] = CategoricalItem(attribute, value)
        items: list = list(cats.values())
        for attribute in set(lo) | set(hi):
            items.append(
                NumericItem(
                    attribute,
                    Interval(
                        lo.get(attribute, -math.inf),
                        hi.get(attribute, math.inf),
                        lo_closed=False,
                        hi_closed=attribute in hi,
                    ),
                )
            )
        return Itemset(items)

    def walk(node, conditions):
        if node.is_leaf:
            itemset = conditions_to_itemset(conditions)
            if len(itemset):
                patterns.append(evaluate_itemset(itemset, dataset))
            return
        attr = dataset.attribute(node.attribute)
        if node.threshold is not None:
            walk(node.left, conditions + [(node.attribute, "le",
                                           node.threshold)])
            walk(node.right, conditions + [(node.attribute, "gt",
                                            node.threshold)])
        else:
            label = attr.label_of(node.category)
            walk(node.left, conditions + [(node.attribute, "eq", label)])
            # the negative branch has no itemset representation
            # (attribute != value); recurse without a condition so deeper
            # positive conditions still surface
            walk(node.right, conditions)

    walk(tree.root, [])
    return patterns
