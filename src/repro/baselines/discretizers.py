"""Shared plumbing for global (pre-binning) discretizers.

The baseline pipeline the paper compares against is: discretize every
continuous attribute *globally* (Fayyad-Irani entropy, MVD, or equi-depth),
replace each continuous column with its bin id, and run a categorical
contrast-set miner (STUCCO) on the result.  The bins never adapt to the
attribute subset being explored — precisely the limitation SDAD-CS's
supervised/dynamic/adaptive binning removes.

:class:`Binning` captures the cut points for one attribute;
:class:`DiscretizedView` materialises the binned dataset and converts mined
categorical patterns back into interval patterns on the original data so
that all miners report comparable :class:`ContrastPattern` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.contrast import ContrastPattern, evaluate_itemset
from ..core.items import CategoricalItem, Interval, Itemset, NumericItem
from ..dataset.schema import Attribute, Schema
from ..dataset.table import Dataset

__all__ = ["Binning", "DiscretizedView", "equal_frequency_cuts"]


@dataclass(frozen=True)
class Binning:
    """Interior cut points of one attribute, sorted ascending.

    ``k`` cuts produce ``k + 1`` bins; the outer bounds come from the
    attribute's observed range.  Bin ``i`` is ``(cut[i-1], cut[i]]`` with
    the first bin closed on the left at the observed minimum.
    """

    attribute: str
    cuts: tuple[float, ...]
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError(
                f"binning of {self.attribute!r} saw missing values; "
                "drop them first (Dataset.drop_missing_rows)"
            )
        if list(self.cuts) != sorted(set(self.cuts)):
            raise ValueError("cuts must be strictly increasing")
        for cut in self.cuts:
            if not self.lo <= cut <= self.hi:
                raise ValueError(
                    f"cut {cut} outside observed range [{self.lo}, {self.hi}]"
                )

    @property
    def n_bins(self) -> int:
        return len(self.cuts) + 1

    def intervals(self) -> list[Interval]:
        edges = [self.lo, *self.cuts, self.hi]
        out = []
        for i in range(len(edges) - 1):
            out.append(
                Interval(
                    edges[i], edges[i + 1], lo_closed=(i == 0), hi_closed=True
                )
            )
        return out

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Bin index per value (values equal to a cut go left, like the
        right-closed intervals)."""
        return np.searchsorted(np.asarray(self.cuts), values, side="left")

    def labels(self) -> list[str]:
        return [str(iv) for iv in self.intervals()]


def equal_frequency_cuts(
    values: np.ndarray, n_bins: int
) -> tuple[float, ...]:
    """Interior cut points of an equal-frequency binning.

    Duplicate quantiles (heavy ties) are collapsed, so the result can have
    fewer than ``n_bins - 1`` cuts.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    values = np.asarray(values, dtype=float)
    if values.size == 0 or n_bins == 1:
        return ()
    qs = np.linspace(0, 1, n_bins + 1)[1:-1]
    cuts = np.quantile(values, qs)
    lo, hi = float(values.min()), float(values.max())
    unique = sorted({float(c) for c in cuts if lo < c < hi})
    return tuple(unique)


class DiscretizedView:
    """A dataset with its continuous attributes replaced by global bins."""

    def __init__(
        self, original: Dataset, binnings: Mapping[str, Binning]
    ) -> None:
        self.original = original
        self.binnings = dict(binnings)
        for name in self.binnings:
            if not original.attribute(name).is_continuous:
                raise ValueError(f"{name!r} is not continuous")
        self.dataset = self._materialise()

    def _materialise(self) -> Dataset:
        attributes: list[Attribute] = []
        columns: dict[str, np.ndarray] = {}
        for attr in self.original.schema:
            binning = self.binnings.get(attr.name)
            if binning is None:
                attributes.append(attr)
                columns[attr.name] = self.original.column(attr.name)
            elif np.isnan(self.original.column(attr.name)).any():
                raise ValueError(
                    f"column {attr.name!r} contains missing values; "
                    "drop them first (Dataset.drop_missing_rows) — "
                    "global binning has no bin for NaN"
                )
            else:
                labels = binning.labels()
                attributes.append(
                    Attribute.categorical(attr.name, labels)
                )
                columns[attr.name] = binning.assign(
                    self.original.column(attr.name)
                ).astype(np.int64)
        return Dataset(
            Schema.of(attributes),
            columns,
            self.original.group_codes.copy(),
            self.original.group_labels,
            self.original.group_name,
        )

    # ------------------------------------------------------------------

    def restore_pattern(self, pattern: ContrastPattern) -> ContrastPattern:
        """Convert a pattern mined on the binned dataset back to interval
        items evaluated on the original data."""
        items = []
        for item in pattern.itemset:
            binning = self.binnings.get(item.attribute)
            if binning is None:
                items.append(item)
                continue
            if not isinstance(item, CategoricalItem):
                raise ValueError(
                    f"binned attribute {item.attribute!r} should carry "
                    "categorical items"
                )
            attr = self.dataset.attribute(item.attribute)
            interval = binning.intervals()[attr.code_of(item.value)]
            items.append(NumericItem(item.attribute, interval))
        return evaluate_itemset(
            Itemset(items), self.original, level=pattern.level
        )

    def restore_patterns(
        self, patterns: Sequence[ContrastPattern]
    ) -> list[ContrastPattern]:
        return [self.restore_pattern(p) for p in patterns]
