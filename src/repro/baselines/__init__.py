"""Baseline algorithms the paper compares against.

* :func:`~repro.baselines.stucco.stucco` — categorical contrast sets
  (Bay & Pazzani 2001); the mining engine behind every discretize-first
  pipeline.
* :func:`~repro.baselines.mvd.mvd_discretize` — Bay's multivariate
  discretization (2001).
* :func:`~repro.baselines.fayyad.fayyad_discretize` — Fayyad & Irani
  entropy/MDLP (1993).
* :func:`~repro.baselines.cortana.cortana` — beam-search subgroup
  discovery with interval bins and WRAcc (the paper's Cortana settings).
* :func:`~repro.baselines.srikant.srikant_discretize` — Srikant & Agrawal
  equi-depth partitioning (1996), used in ablations.
* :class:`~repro.baselines.decision_tree.DecisionTree` — CART, the
  interpretable-but-greedy comparison the introduction motivates.
"""

from .cortana import CortanaConfig, CortanaResult, cortana
from .decision_tree import DecisionTree, TreeConfig, TreeNode, tree_patterns
from .discretizers import Binning, DiscretizedView, equal_frequency_cuts
from .fayyad import fayyad_binning, fayyad_discretize
from .mvd import mvd_binning, mvd_discretize
from .opus import OpusConfig, OpusResult, OpusRule, opus
from .srikant import srikant_binning, srikant_discretize
from .stucco import StuccoConfig, StuccoResult, stucco

__all__ = [
    "CortanaConfig",
    "CortanaResult",
    "cortana",
    "DecisionTree",
    "TreeConfig",
    "TreeNode",
    "tree_patterns",
    "Binning",
    "DiscretizedView",
    "equal_frequency_cuts",
    "fayyad_binning",
    "fayyad_discretize",
    "mvd_binning",
    "mvd_discretize",
    "OpusConfig",
    "OpusResult",
    "OpusRule",
    "opus",
    "srikant_binning",
    "srikant_discretize",
    "StuccoConfig",
    "StuccoResult",
    "stucco",
]
